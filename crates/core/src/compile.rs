//! The single-pass Wasm → x86-64 SFI compiler.
//!
//! The compiler is a baseline-JIT-style single pass over each function body,
//! keeping the Wasm operand stack in registers with lazy, symbolic address
//! expressions. Laziness is what lets the strategies differ exactly the way
//! Figure 1 of the paper shows:
//!
//! - an `i32.add`/`i32.shl` chain over locals is folded into an *address
//!   shape* (`base + index*scale + disp`) without emitting code;
//! - at the consuming load/store, [`Strategy::Native`] folds the whole shape
//!   into one addressing mode, [`Strategy::Segue`] folds it into one
//!   `gs:`-prefixed, address-size-overridden access, and
//!   [`Strategy::GuardRegion`] must materialize it with a 32-bit `lea`
//!   because the reserved heap-base register occupies the addressing slot;
//! - an `i32.wrap_i64` marks its register "truncation pending": Segue
//!   resolves it for free via the address-size override, the baseline pays a
//!   `mov r32, r32`.

use std::collections::BTreeMap;

use sfi_wasm::{Func, Module, Op, ValType};
use sfi_x86::emu::Image;
use sfi_x86::inst::{AluOp, ShiftAmount, ShiftOp};
use sfi_x86::{Cond, Gpr, Inst, Label, Mem, Program, Provenance, Scale, Width};

use crate::config::{regs, CompilerConfig, FuncStats, OptLevel, Strategy};
use crate::opt::{self, LiveRange, OptStats};

/// Host-call ids for the compiler's built-in runtime helpers (the ids above
/// the module's import space).
pub mod hostcall {
    /// `memory.grow`: one arg (delta pages), returns old size or -1.
    pub const MEMORY_GROW: u32 = 0xFFFF_0000;
    /// `memory.copy`: args (dst, src, len).
    pub const MEMORY_COPY: u32 = 0xFFFF_0001;
    /// `memory.fill`: args (dst, val, len).
    pub const MEMORY_FILL: u32 = 0xFFFF_0002;
}

/// A compilation failure.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CompileError {
    /// The module failed validation first.
    Validation(sfi_wasm::ValidationError),
    /// The function nests deeper / uses more stack than the compiler
    /// supports.
    TooComplex {
        /// Function name.
        func: String,
        /// Explanation.
        what: String,
    },
    /// Encoding the generated program failed (a compiler bug).
    Encode(String),
}

impl core::fmt::Display for CompileError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CompileError::Validation(e) => write!(f, "validation failed: {e}"),
            CompileError::TooComplex { func, what } => write!(f, "function {func}: {what}"),
            CompileError::Encode(e) => write!(f, "encoding failed: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<sfi_wasm::ValidationError> for CompileError {
    fn from(e: sfi_wasm::ValidationError) -> Self {
        CompileError::Validation(e)
    }
}

/// The output of [`compile`].
#[derive(Debug, Clone)]
pub struct CompiledModule {
    /// The encoded program (all functions concatenated).
    pub image: Image,
    /// Entry instruction index per function in the index space
    /// (`usize::MAX` for imports, which are host calls).
    pub func_entries: Vec<usize>,
    /// Exported function name → function index.
    pub exports: BTreeMap<String, u32>,
    /// The indirect-call table image: 8 bytes per entry,
    /// `[sig_id: u32][entry_inst: u32]`, to be installed at
    /// `config.regions.table_base`.
    pub table_bytes: Vec<u8>,
    /// Initial global values, to be installed at `globals_base`.
    pub globals_init: Vec<u64>,
    /// Data segments `(heap_offset, bytes)`.
    pub data: Vec<(u32, Vec<u8>)>,
    /// Initial memory pages.
    pub mem_min_pages: u32,
    /// Maximum memory pages (defaults to the initial size: fixed memory).
    pub mem_max_pages: u32,
    /// Number of imported functions.
    pub num_imports: u32,
    /// Debug names of the imports, in index order.
    pub import_names: Vec<String>,
    /// Parameter counts of the imports, in index order.
    pub import_arg_counts: Vec<u32>,
    /// Whether each function in the index space returns a value.
    pub func_has_result: Vec<bool>,
    /// Per-defined-function statistics.
    pub func_stats: Vec<FuncStats>,
    /// What the optimizing tier did (all zeros under
    /// [`OptLevel::Baseline`]).
    pub opt_stats: OptStats,
    /// The configuration used.
    pub config: CompilerConfig,
}

impl CompiledModule {
    /// Total code size in bytes.
    pub fn code_size(&self) -> usize {
        self.image.code_size()
    }

    /// Total instructions.
    pub fn inst_count(&self) -> usize {
        self.image.program().len()
    }

    /// Entry instruction index of an export.
    pub fn export_entry(&self, name: &str) -> Option<usize> {
        let idx = *self.exports.get(name)?;
        let e = *self.func_entries.get(idx as usize)?;
        (e != usize::MAX).then_some(e)
    }
}

/// Compiles a validated module under `config`.
pub fn compile(module: &Module, config: &CompilerConfig) -> Result<CompiledModule, CompileError> {
    sfi_wasm::validate(module)?;

    let mut program = Program::new();
    let num_imports = module.imports.len() as u32;
    let mut func_entries = vec![usize::MAX; module.func_space_len() as usize];
    let mut func_labels: Vec<Option<Label>> = vec![None; module.func_space_len() as usize];
    for (i, slot) in func_labels.iter_mut().enumerate() {
        if i >= num_imports as usize {
            *slot = Some(program.fresh_label());
        }
    }

    // Canonical signature ids for call_indirect checking.
    let mut sig_ids: BTreeMap<(Vec<ValType>, Option<ValType>), u32> = BTreeMap::new();
    let mut sig_of = |params: &[ValType], result: Option<ValType>| -> u32 {
        let next = sig_ids.len() as u32;
        *sig_ids.entry((params.to_vec(), result)).or_insert(next)
    };

    let mut func_stats = Vec::with_capacity(module.funcs.len());
    for (i, func) in module.funcs.iter().enumerate() {
        let fidx = num_imports as usize + i;
        let entry_label = func_labels[fidx].expect("defined funcs have labels");
        program.bind(entry_label);
        func_entries[fidx] = program.len();
        let exported = module.exports.values().any(|&e| e == fidx as u32);
        let mut fc = FuncCompiler::new(module, func, config, &func_labels, &mut sig_of);
        let stats = fc.compile(&mut program, exported)?;
        func_stats.push(stats);
    }

    // The optimizing tier runs over the finished program, before
    // vectorization, so that the vectorizer sees the fused/cleaned code.
    // Baseline output is byte-identical to a build without the tier.
    let opt_stats = if config.opt_level == OptLevel::Optimized {
        opt::optimize(&mut program)
    } else {
        OptStats::default()
    };

    if config.vectorize {
        crate::vectorize::vectorize(&mut program, config.strategy);
    }

    // Label-stable removal leaves `nop` slots behind; retag them so the
    // profiler attributes their (small) cost to the rewriting passes
    // rather than to whatever the slot used to hold. Baseline output
    // contains no `nop`s, so this is a no-op there.
    for i in 0..program.len() {
        if matches!(program.insts()[i], Inst::Nop) {
            program.set_prov(i, Provenance::OptInserted);
        }
    }

    // Spectre hardening runs last, over the final instruction stream, so
    // fences/masks cover vectorized and optimized code alike. Insertion
    // shifts instruction indices; labels stay bound to their instructions,
    // so function entries are recomputed from the entry labels afterwards.
    if opt::mitigate::run(&mut program, config) > 0 {
        for (fidx, label) in func_labels.iter().enumerate() {
            if let Some(l) = label {
                if func_entries[fidx] != usize::MAX {
                    func_entries[fidx] = program.resolve(*l).expect("entry labels are bound");
                }
            }
        }
    }

    // Build the table image.
    let mut table_bytes = Vec::with_capacity(module.table.len() * 8);
    for &fidx in &module.table {
        let (p, r) = module.signature(fidx).expect("validated");
        let sig = sig_of(p, r);
        let entry = func_entries[fidx as usize];
        table_bytes.extend_from_slice(&sig.to_le_bytes());
        table_bytes.extend_from_slice(&(entry as u32).to_le_bytes());
    }

    // Re-encode with stats filled from final program.
    let image = Image::load(program).map_err(|e| CompileError::Encode(e.to_string()))?;
    // Attribute encoded byte counts back to functions.
    for (i, stats) in func_stats.iter_mut().enumerate() {
        let start = func_entries[num_imports as usize + i];
        let end = func_entries
            .get(num_imports as usize + i + 1)
            .copied()
            .filter(|&e| e != usize::MAX)
            .unwrap_or(image.program().len());
        stats.insts = end - start;
        stats.bytes = (image.encoded().offsets[end.min(image.program().len())]
            - image.encoded().offsets[start]) as usize;
    }

    Ok(CompiledModule {
        image,
        func_entries,
        exports: module.exports.clone(),
        table_bytes,
        globals_init: module.globals.iter().map(|g| g.init).collect(),
        data: module.data.clone(),
        mem_min_pages: module.mem_min_pages,
        mem_max_pages: module.mem_max_pages.unwrap_or(module.mem_min_pages),
        num_imports,
        import_names: module.imports.iter().map(|i| i.name.clone()).collect(),
        import_arg_counts: module.imports.iter().map(|i| i.params.len() as u32).collect(),
        func_has_result: (0..module.func_space_len())
            .map(|i| module.signature(i).is_some_and(|(_, r)| r.is_some()))
            .collect(),
        func_stats,
        opt_stats,
        config: config.clone(),
    })
}

// ---------------------------------------------------------------------------
// Per-function compilation
// ---------------------------------------------------------------------------

/// One component of a lazy address shape: `local << shift`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Part {
    local: u32,
    shift: u8,
}

/// A lazy i32 expression over locals: `Σ parts + disp` (mod 2³²).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Shape {
    parts: [Option<Part>; 2],
    disp: i32,
}

impl Shape {
    fn local(l: u32) -> Shape {
        Shape { parts: [Some(Part { local: l, shift: 0 }), None], disp: 0 }
    }

    fn npart(&self) -> usize {
        self.parts.iter().filter(|p| p.is_some()).count()
    }

    fn references(&self, l: u32) -> bool {
        self.parts.iter().flatten().any(|p| p.local == l)
    }

    fn add(a: Shape, b: Shape) -> Option<Shape> {
        if a.npart() + b.npart() > 2 {
            return None;
        }
        // At most one scaled part (x86 has one index slot).
        let scaled =
            a.parts.iter().flatten().filter(|p| p.shift > 0).count()
                + b.parts.iter().flatten().filter(|p| p.shift > 0).count();
        if scaled > 1 {
            return None;
        }
        let mut parts = [None, None];
        for (n, p) in a.parts.iter().chain(b.parts.iter()).flatten().enumerate() {
            parts[n] = Some(*p);
        }
        Some(Shape { parts, disp: a.disp.wrapping_add(b.disp) })
    }

    fn shl(self, k: u8) -> Option<Shape> {
        if k > 3 || self.npart() > 1 {
            return None;
        }
        let part = match self.parts[0] {
            Some(p) if p.shift + k <= 3 => Part { local: p.local, shift: p.shift + k },
            Some(_) => return None,
            None => return Some(Shape { parts: [None, None], disp: self.disp.wrapping_shl(k.into()) }),
        };
        Some(Shape { parts: [Some(part), None], disp: self.disp.wrapping_shl(k.into()) })
    }
}

/// A Wasm operand-stack slot at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    /// Value in an owned operand-pool register (zero-extended if i32).
    Reg(Gpr),
    /// Value in an owned register whose upper 32 bits are garbage
    /// (`i32.wrap_i64` result) — truncation is still pending.
    Trunc(Gpr),
    /// Compile-time constant.
    Imm(i64),
    /// Lazy address shape over locals.
    Addr(Shape),
    /// Spilled to the frame home for operand-stack depth `depth`.
    Spilled {
        depth: u32,
    },
}

/// Where a local lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LocalLoc {
    Reg(Gpr),
    Frame(u32),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CtrlKind {
    Block,
    Loop,
    If,
    Else,
}

#[derive(Debug, Clone, Copy)]
struct CtrlFrame {
    kind: CtrlKind,
    end_label: Label,
    loop_label: Option<Label>,
    else_label: Option<Label>,
    stack_height: usize,
}

/// Estimates a dynamic use count per local: each static `local.get/set/tee`
/// counts `8^depth` where `depth` is the loop-nesting depth (capped so the
/// weight cannot overflow). The optimizing tier's register allocator uses
/// these as spill weights.
fn local_weights(func: &Func) -> Vec<u64> {
    let mut weights = vec![0u64; func.local_count() as usize];
    let mut kinds: Vec<bool> = Vec::new(); // true = loop frame
    let mut loop_depth = 0u32;
    for op in &func.body {
        match op {
            Op::Block | Op::If => kinds.push(false),
            Op::Loop => {
                kinds.push(true);
                loop_depth += 1;
            }
            Op::End => {
                if let Some(was_loop) = kinds.pop() {
                    if was_loop {
                        loop_depth -= 1;
                    }
                }
            }
            Op::LocalGet(i) | Op::LocalSet(i) | Op::LocalTee(i) => {
                if let Some(w) = weights.get_mut(*i as usize) {
                    *w = w.saturating_add(1u64 << (3 * loop_depth.min(6)));
                }
            }
            _ => {}
        }
    }
    weights
}

struct FuncCompiler<'a> {
    module: &'a Module,
    func: &'a Func,
    config: &'a CompilerConfig,
    func_labels: &'a [Option<Label>],
    sig_of: &'a mut dyn FnMut(&[ValType], Option<ValType>) -> u32,

    locals: Vec<LocalLoc>,
    reg_locals: Vec<Gpr>,
    n_frame_locals: u32,
    stack: Vec<Slot>,
    free_regs: Vec<Gpr>,
    /// The registers that belong to the operand pool *for this function*:
    /// the optimizing tier may steal operand registers for hot locals, and
    /// a stolen register must never be returned to `free_regs`.
    operand_regs: Vec<Gpr>,
    ctrl: Vec<CtrlFrame>,
    epilogue: Label,
    trap: Label,
    stats: FuncStats,
    /// Nesting depth of skipped (unreachable) code; 0 = live.
    dead_depth: u32,
}

impl<'a> FuncCompiler<'a> {
    fn new(
        module: &'a Module,
        func: &'a Func,
        config: &'a CompilerConfig,
        func_labels: &'a [Option<Label>],
        sig_of: &'a mut dyn FnMut(&[ValType], Option<ValType>) -> u32,
    ) -> FuncCompiler<'a> {
        // Assign locals to registers from the local pool; the heap-base
        // register is only available when the strategy does not reserve it,
        // and LFI builds additionally set aside %r14.
        let local_pool: Vec<Gpr> = regs::LOCAL_POOL
            .iter()
            .copied()
            .filter(|&r| !(config.strategy.reserves_heap_gpr() && r == regs::HEAP_BASE))
            .filter(|&r| !(config.lfi_reserved_regs && r == Gpr::R14))
            .collect();
        let operand_pool: Vec<Gpr> = regs::OPERAND_POOL
            .iter()
            .copied()
            .filter(|&r| !(config.lfi_reserved_regs && r == Gpr::R10))
            .collect();

        let total = func.local_count() as usize;
        let mut locals = Vec::with_capacity(total);
        let mut reg_locals = Vec::new();
        let mut n_frame = 0u32;
        let mut free_regs = operand_pool.clone();

        if config.opt_level == OptLevel::Optimized {
            // Optimizing tier: weight-driven allocation. Loop-nested locals
            // get registers first, and when the local pool runs out the
            // allocator borrows registers from the tail of the operand
            // pool — the transient operand pressure rarely exceeds three
            // registers, so up to `len - 4` can be lent to hot locals.
            // Borrowed registers are part of `reg_locals` and therefore
            // caller-saved around calls by the existing push/pop protocol.
            let weights = local_weights(func);
            let lend = total
                .saturating_sub(local_pool.len())
                .min(operand_pool.len().saturating_sub(4));
            let mut candidates = local_pool.clone();
            candidates.extend(operand_pool.iter().rev().take(lend));
            let ranges: Vec<LiveRange> = (0..total)
                .map(|i| LiveRange {
                    vreg: i,
                    start: 0,
                    end: func.body.len(),
                    weight: weights[i],
                })
                .collect();
            let assignment = opt::linear_scan(&ranges, candidates.len());
            for slot in assignment.iter().take(total) {
                match slot {
                    Some(k) => {
                        let r = candidates[*k];
                        reg_locals.push(r);
                        locals.push(LocalLoc::Reg(r));
                        free_regs.retain(|&f| f != r);
                    }
                    None => {
                        locals.push(LocalLoc::Frame(n_frame));
                        n_frame += 1;
                    }
                }
            }
        } else {
            // Baseline tier: first-come-first-served, byte-identical to the
            // pre-tiering compiler.
            let mut pool = local_pool;
            pool.reverse(); // pop() yields R12 first
            for _ in 0..total {
                match pool.pop() {
                    Some(r) => {
                        reg_locals.push(r);
                        locals.push(LocalLoc::Reg(r));
                    }
                    None => {
                        locals.push(LocalLoc::Frame(n_frame));
                        n_frame += 1;
                    }
                }
            }
        }
        let operand_regs = free_regs.clone();
        FuncCompiler {
            module,
            func,
            config,
            func_labels,
            sig_of,
            locals,
            reg_locals,
            n_frame_locals: n_frame,
            stack: Vec::new(),
            free_regs,
            operand_regs,
            ctrl: Vec::new(),
            epilogue: Label(u32::MAX),
            trap: Label(u32::MAX),
            stats: FuncStats::default(),
            dead_depth: 0,
        }
    }

    fn max_operand_depth(&self) -> Result<u32, CompileError> {
        // Quick prepass: track stack height like the validator (heights
        // only; the module is already validated).
        let mut h: i64 = 0;
        let mut max = 0i64;
        for op in &self.func.body {
            h += stack_delta(self.module, op);
            max = max.max(h);
        }
        if max > 64 {
            return Err(CompileError::TooComplex {
                func: self.func.name.clone(),
                what: format!("operand stack depth {max} exceeds 64"),
            });
        }
        Ok(max.max(0) as u32 + 2)
    }

    fn frame_bytes(&self, max_depth: u32) -> i32 {
        ((self.n_frame_locals + max_depth) * 8) as i32
    }

    /// Frame offset (from rbp, negative) of frame-local slot `i`.
    fn frame_local_off(&self, i: u32) -> i32 {
        -8 * (i as i32 + 1)
    }

    /// Frame offset of the operand-spill home for stack depth `d`.
    fn spill_off(&self, d: u32) -> i32 {
        -8 * ((self.n_frame_locals + d) as i32 + 1)
    }

    fn compile(&mut self, p: &mut Program, exported: bool) -> Result<FuncStats, CompileError> {
        let max_depth = self.max_operand_depth()?;
        self.epilogue = p.fresh_label();
        self.trap = p.fresh_label();

        // ---- prologue ----
        // §4.1's Wasm2c design: module-entry functions load the heap base
        // from the runtime header and set the segment register themselves;
        // internal calls skip straight past this.
        if exported
            && self.config.segment_entry_protocol
            && (self.config.strategy.segue_loads() || self.config.strategy.segue_stores())
        {
            p.push(Inst::Load {
                dst: Gpr::Rax,
                mem: Mem::abs(self.config.regions.header_base as i32 + 8),
                width: Width::Q,
            });
            p.push(Inst::WrGsBase { src: Gpr::Rax });
            self.stats.sfi_overhead_insts += 2;
            p.tag_last(2, Provenance::TransitionGlue);
        }
        p.push(Inst::Push { reg: regs::FRAME });
        p.push(Inst::MovRR { dst: regs::FRAME, src: Gpr::Rsp, width: Width::Q });
        p.push(Inst::AluRI {
            op: AluOp::Sub,
            dst: Gpr::Rsp,
            imm: self.frame_bytes(max_depth),
            width: Width::Q,
        });
        if self.config.stack_check {
            p.push(Inst::AluRI {
                op: AluOp::Cmp,
                dst: Gpr::Rsp,
                imm: self.config.regions.stack_limit as i32,
                width: Width::Q,
            });
            p.push(Inst::Jcc { cond: Cond::B, target: self.trap });
            self.stats.sfi_overhead_insts += 2;
            p.tag_last(2, Provenance::BoundsGuard);
        }
        // Load parameters: pushed left-to-right by the caller, so param i is
        // at [rbp + 8 + 8*(argc-1-i)] (above the saved rbp).
        let argc = self.func.params.len() as u32;
        for i in 0..argc {
            let src = Mem::base_disp(regs::FRAME, 8 + 8 * (argc - 1 - i) as i32);
            match self.locals[i as usize] {
                LocalLoc::Reg(r) => {
                    p.push(Inst::Load { dst: r, mem: src, width: Width::Q });
                }
                LocalLoc::Frame(slot) => {
                    p.push(Inst::Load { dst: Gpr::Rax, mem: src, width: Width::Q });
                    p.push(Inst::Store {
                        src: Gpr::Rax,
                        mem: Mem::base_disp(regs::FRAME, self.frame_local_off(slot)),
                        width: Width::Q,
                    });
                }
            }
        }
        // Zero-initialize declared locals.
        for i in argc..self.func.local_count() {
            match self.locals[i as usize] {
                LocalLoc::Reg(r) => {
                    p.push(Inst::AluRR { op: AluOp::Xor, dst: r, src: r, width: Width::D });
                }
                LocalLoc::Frame(slot) => {
                    p.push(Inst::StoreImm {
                        imm: 0,
                        mem: Mem::base_disp(regs::FRAME, self.frame_local_off(slot)),
                        width: Width::Q,
                    });
                }
            }
        }

        // ---- body ----
        let body = self.func.body.clone();
        for (pc, op) in body.iter().enumerate() {
            self.op(p, op, pc == body.len() - 1)?;
        }

        // ---- epilogue ----
        p.bind(self.epilogue);
        p.push(Inst::MovRR { dst: Gpr::Rsp, src: regs::FRAME, width: Width::Q });
        p.push(Inst::Pop { reg: regs::FRAME });
        if argc > 0 {
            // Callee removes its arguments from the machine stack.
            p.push(Inst::AluRI {
                op: AluOp::Add,
                dst: Gpr::Rsp,
                imm: 8 * argc as i32,
                width: Width::Q,
            });
        }
        p.push(Inst::Ret);
        p.bind(self.trap);
        p.push(Inst::Ud2);
        // The trap landing pad exists for the guards that branch to it.
        p.tag_last(1, Provenance::BoundsGuard);

        Ok(self.stats)
    }

    // ---- slot helpers ----

    fn alloc_reg(&mut self, p: &mut Program) -> Gpr {
        if let Some(r) = self.free_regs.pop() {
            return r;
        }
        // Spill the deepest in-register stack slot to its frame home.
        for d in 0..self.stack.len() {
            match self.stack[d] {
                Slot::Reg(r) | Slot::Trunc(r) => {
                    // Pending truncations resolve before the value leaves
                    // its register (spill homes always hold clean values).
                    if matches!(self.stack[d], Slot::Trunc(_)) {
                        p.push(Inst::MovRR { dst: r, src: r, width: Width::D });
                        self.stats.sfi_overhead_insts += 1;
                        p.tag_last(1, Provenance::Truncation);
                    }
                    p.push(Inst::Store {
                        src: r,
                        mem: Mem::base_disp(regs::FRAME, self.spill_off(d as u32)),
                        width: Width::Q,
                    });
                    self.stack[d] = Slot::Spilled { depth: d as u32 };
                    return r;
                }
                _ => {}
            }
        }
        unreachable!("operand pool exhausted with nothing to spill");
    }

    fn free_reg(&mut self, r: Gpr) {
        debug_assert!(!self.free_regs.contains(&r));
        if self.operand_regs.contains(&r) {
            self.free_regs.push(r);
        }
    }

    fn free_slot(&mut self, s: Slot) {
        if let Slot::Reg(r) | Slot::Trunc(r) = s {
            self.free_reg(r);
        }
    }

    /// Pops a slot.
    fn pop_slot(&mut self) -> Slot {
        self.stack.pop().expect("validated operand stack")
    }

    /// The register holding local `l`, loading frame locals into `scratch`.
    fn local_reg(&self, p: &mut Program, l: u32, scratch: Gpr) -> Gpr {
        match self.locals[l as usize] {
            LocalLoc::Reg(r) => r,
            LocalLoc::Frame(slot) => {
                p.push(Inst::Load {
                    dst: scratch,
                    mem: Mem::base_disp(regs::FRAME, self.frame_local_off(slot)),
                    width: Width::Q,
                });
                scratch
            }
        }
    }

    /// Materializes a slot into an *owned* operand register (safe to
    /// mutate). i32 values come out zero-extended.
    fn materialize_owned(&mut self, p: &mut Program, s: Slot) -> Gpr {
        match s {
            Slot::Reg(r) => r,
            Slot::Trunc(r) => {
                // Resolve the pending truncation.
                p.push(Inst::MovRR { dst: r, src: r, width: Width::D });
                self.stats.sfi_overhead_insts += 1;
                p.tag_last(1, Provenance::Truncation);
                r
            }
            Slot::Imm(v) => {
                let r = self.alloc_reg(p);
                p.push(Inst::MovRI {
                    dst: r,
                    imm: v,
                    width: if i32::try_from(v).is_ok() && v >= 0 { Width::D } else { Width::Q },
                });
                r
            }
            Slot::Addr(shape) => {
                let r = self.alloc_reg(p);
                self.emit_shape(p, shape, r);
                r
            }
            Slot::Spilled { depth } => {
                let r = self.alloc_reg(p);
                p.push(Inst::Load {
                    dst: r,
                    mem: Mem::base_disp(regs::FRAME, self.spill_off(depth)),
                    width: Width::Q,
                });
                r
            }
        }
    }

    /// Materializes a shape into `dst` (a 32-bit, zero-extended result).
    fn emit_shape(&mut self, p: &mut Program, shape: Shape, dst: Gpr) {
        match (shape.parts[0], shape.parts[1]) {
            (None, _) => {
                p.push(Inst::MovRI { dst, imm: i64::from(shape.disp as u32), width: Width::D });
            }
            (Some(a), None) if a.shift == 0 && shape.disp == 0 => {
                let src = self.local_reg(p, a.local, dst);
                if src != dst {
                    p.push(Inst::MovRR { dst, src, width: Width::Q });
                }
            }
            (Some(a), None) => {
                let ra = self.local_reg(p, a.local, Gpr::Rax);
                let mem = if a.shift == 0 {
                    Mem::base_disp(ra, shape.disp)
                } else {
                    Mem::isd(ra, shift_scale(a.shift), shape.disp)
                };
                // 32-bit lea: wraps mod 2³² and zero-extends.
                p.push(Inst::Lea { dst, mem, width: Width::D });
            }
            (Some(a), Some(b)) => {
                // Put the unscaled part in the base slot.
                let (base, index) = if a.shift == 0 { (a, b) } else { (b, a) };
                let rb = self.local_reg(p, base.local, Gpr::Rax);
                let ri = self.local_reg(p, index.local, Gpr::Rdx);
                p.push(Inst::Lea {
                    dst,
                    mem: Mem::bisd(rb, ri, shift_scale(index.shift), shape.disp),
                    width: Width::D,
                });
            }
        }
    }

    /// A register holding the zero-extended 32-bit value of `s`, possibly
    /// borrowing a local's register (read-only!). Returns `(reg, owned)`.
    fn zx_reg(&mut self, p: &mut Program, s: Slot) -> (Gpr, bool) {
        match s {
            Slot::Addr(shape) if shape.npart() == 1 && shape.disp == 0 => {
                let part = shape.parts[0].expect("npart == 1");
                if part.shift == 0 {
                    if let LocalLoc::Reg(r) = self.locals[part.local as usize] {
                        return (r, false);
                    }
                }
                let r = self.materialize_owned(p, s);
                (r, true)
            }
            other => (self.materialize_owned(p, other), true),
        }
    }

    /// Materializes every stack slot whose lazy shape references local `l`
    /// (called before the local is mutated).
    fn flush_local_refs(&mut self, p: &mut Program, l: u32) {
        for i in 0..self.stack.len() {
            if let Slot::Addr(shape) = self.stack[i] {
                if shape.references(l) {
                    let r = self.alloc_reg(p);
                    self.emit_shape(p, shape, r);
                    self.stack[i] = Slot::Reg(r);
                }
            }
        }
    }

    fn push_reg(&mut self, r: Gpr) {
        self.stack.push(Slot::Reg(r));
    }

    // ---- memory-access lowering (the heart of Segue) ----

    /// Lowers the address slot of a heap access of `width` at static wasm
    /// offset `off` for the access kind (`is_store`). Returns the memory
    /// operand plus the owned register to free afterwards, if any.
    fn heap_mem(
        &mut self,
        p: &mut Program,
        addr: Slot,
        off: u32,
        width: Width,
        is_store: bool,
    ) -> (Mem, Option<Gpr>) {
        let strat = self.config.strategy;
        let segue = if is_store { strat.segue_stores() } else { strat.segue_loads() };
        let off_i = off as i32; // offsets in our corpus stay well below 2³¹

        // Explicit bounds check / masking need a materialized index first.
        if strat.bounds_checks() || strat.masks() {
            let (r, owned) = self.zx_reg(p, addr);
            let r = if strat.masks() || !owned {
                // Masking mutates; borrowed local regs must be copied.
                if strat.masks() {
                    let dst = if owned {
                        r
                    } else {
                        let d = self.alloc_reg(p);
                        p.push(Inst::MovRR { dst: d, src: r, width: Width::Q });
                        self.stats.sfi_overhead_insts += 1;
                        p.tag_last(1, Provenance::BoundsGuard);
                        d
                    };
                    debug_assert!(self.config.layout.mem_size.is_power_of_two());
                    p.push(Inst::AluRI {
                        op: AluOp::And,
                        dst,
                        imm: (self.config.layout.mem_size - 1) as i32,
                        width: Width::D,
                    });
                    self.stats.sfi_overhead_insts += 1;
                    p.tag_last(1, Provenance::BoundsGuard);
                    dst
                } else {
                    r
                }
            } else {
                r
            };
            if strat.bounds_checks() {
                let limit = self.config.layout.mem_size as i64 - i64::from(off) - width.bytes() as i64;
                if limit < 0 {
                    p.push(Inst::Jmp { target: self.trap });
                    p.tag_last(1, Provenance::BoundsGuard);
                } else {
                    p.push(Inst::AluRI { op: AluOp::Cmp, dst: r, imm: limit as i32, width: Width::Q });
                    p.push(Inst::Jcc { cond: Cond::A, target: self.trap });
                    p.tag_last(2, Provenance::BoundsGuard);
                }
                self.stats.sfi_overhead_insts += 2;
            }
            let owned_out = (owned || strat.masks()).then_some(r);
            let mem = if segue {
                Mem::base_disp(r, off_i).with_seg(sfi_x86::Seg::Gs)
            } else {
                Mem::bisd(regs::HEAP_BASE, r, Scale::S1, off_i)
            };
            return (mem, owned_out);
        }

        match strat {
            Strategy::Native => {
                let base = self.config.layout.heap_base as i32;
                match addr {
                    Slot::Imm(v) => (Mem::abs(base + v as i32 + off_i), None),
                    Slot::Addr(shape) => {
                        // Fold the whole shape into one addressing mode,
                        // loading frame locals into scratch as needed.
                        match (shape.parts[0], shape.parts[1]) {
                            (None, _) => (Mem::abs(base + shape.disp + off_i), None),
                            (Some(a), None) => {
                                let ra = self.local_reg(p, a.local, Gpr::Rax);
                                let disp = base + shape.disp + off_i;
                                let mem = if a.shift == 0 {
                                    Mem::base_disp(ra, disp)
                                } else {
                                    Mem::isd(ra, shift_scale(a.shift), disp)
                                };
                                (mem, None)
                            }
                            (Some(a), Some(b)) => {
                                let (bp, ip) = if a.shift == 0 { (a, b) } else { (b, a) };
                                let rb = self.local_reg(p, bp.local, Gpr::Rax);
                                let ri = self.local_reg(p, ip.local, Gpr::Rdx);
                                (
                                    Mem::bisd(rb, ri, shift_scale(ip.shift), base + shape.disp + off_i),
                                    None,
                                )
                            }
                        }
                    }
                    Slot::Reg(r) | Slot::Trunc(r) => {
                        // Native pointers are 64-bit clean by construction;
                        // a pending truncation resolves to a plain use.
                        (Mem::base_disp(r, base + off_i), Some(r))
                    }
                    Slot::Spilled { depth } => {
                        let r = self.alloc_reg(p);
                        p.push(Inst::Load {
                            dst: r,
                            mem: Mem::base_disp(regs::FRAME, self.spill_off(depth)),
                            width: Width::Q,
                        });
                        (Mem::base_disp(r, base + off_i), Some(r))
                    }
                }
            }
            _ if segue => {
                // Segue: gs-relative addressing; the address-size override
                // provides free 32-bit truncation for complex shapes.
                match addr {
                    Slot::Reg(r) => (Mem::base_disp(r, off_i).with_seg(sfi_x86::Seg::Gs), Some(r)),
                    Slot::Trunc(r) => {
                        if off == 0 {
                            // Figure 1c pattern 1: truncation via addr32.
                            (
                                Mem::base(r).with_seg(sfi_x86::Seg::Gs).with_addr32(),
                                Some(r),
                            )
                        } else {
                            p.push(Inst::MovRR { dst: r, src: r, width: Width::D });
                            self.stats.sfi_overhead_insts += 1;
                            p.tag_last(1, Provenance::Truncation);
                            (Mem::base_disp(r, off_i).with_seg(sfi_x86::Seg::Gs), Some(r))
                        }
                    }
                    Slot::Imm(v) => {
                        let r = self.alloc_reg(p);
                        p.push(Inst::MovRI { dst: r, imm: v, width: Width::D });
                        (Mem::base_disp(r, off_i).with_seg(sfi_x86::Seg::Gs), Some(r))
                    }
                    Slot::Addr(shape) => {
                        if shape.npart() == 1
                            && shape.parts[0].expect("npart").shift == 0
                            && shape.disp == 0
                        {
                            let part = shape.parts[0].expect("npart");
                            let (r, owned) = match self.locals[part.local as usize] {
                                LocalLoc::Reg(r) => (r, false),
                                LocalLoc::Frame(_) => {
                                    let r = self.alloc_reg(p);
                                    self.emit_shape(p, shape, r);
                                    (r, true)
                                }
                            };
                            (
                                Mem::base_disp(r, off_i).with_seg(sfi_x86::Seg::Gs),
                                owned.then_some(r),
                            )
                        } else if off == 0 {
                            // Figure 1c pattern 2: fold the whole shape with
                            // the address-size override.
                            match (shape.parts[0], shape.parts[1]) {
                                (None, _) => {
                                    let r = self.alloc_reg(p);
                                    p.push(Inst::MovRI {
                                        dst: r,
                                        imm: i64::from(shape.disp as u32),
                                        width: Width::D,
                                    });
                                    (Mem::base(r).with_seg(sfi_x86::Seg::Gs), Some(r))
                                }
                                (Some(a), None) => {
                                    let ra = self.local_reg(p, a.local, Gpr::Rax);
                                    let mem = if a.shift == 0 {
                                        Mem::base_disp(ra, shape.disp)
                                    } else {
                                        Mem::isd(ra, shift_scale(a.shift), shape.disp)
                                    };
                                    (mem.with_seg(sfi_x86::Seg::Gs).with_addr32(), None)
                                }
                                (Some(a), Some(b)) => {
                                    let (bp, ip) = if a.shift == 0 { (a, b) } else { (b, a) };
                                    let rb = self.local_reg(p, bp.local, Gpr::Rax);
                                    let ri = self.local_reg(p, ip.local, Gpr::Rdx);
                                    (
                                        Mem::bisd(rb, ri, shift_scale(ip.shift), shape.disp)
                                            .with_seg(sfi_x86::Seg::Gs)
                                            .with_addr32(),
                                        None,
                                    )
                                }
                            }
                        } else {
                            // Complex shape + nonzero wasm offset: one lea,
                            // then a 64-bit gs access (offset lands in the
                            // guard if it overflows).
                            let r = self.alloc_reg(p);
                            self.emit_shape(p, shape, r);
                            self.stats.sfi_overhead_insts += 1;
                            p.tag_last(1, Provenance::SegueAddressing);
                            (Mem::base_disp(r, off_i).with_seg(sfi_x86::Seg::Gs), Some(r))
                        }
                    }
                    Slot::Spilled { depth } => {
                        let r = self.alloc_reg(p);
                        p.push(Inst::Load {
                            dst: r,
                            mem: Mem::base_disp(regs::FRAME, self.spill_off(depth)),
                            width: Width::Q,
                        });
                        (Mem::base_disp(r, off_i).with_seg(sfi_x86::Seg::Gs), Some(r))
                    }
                }
            }
            _ => {
                // GuardRegion baseline (and the store side of SegueLoads):
                // the reserved register occupies the base slot, so any
                // nontrivial shape costs an explicit 32-bit materialization.
                let (r, owned) = self.zx_reg(p, addr);
                if let Slot::Addr(shape) = addr {
                    if shape.npart() > 1 || shape.disp != 0 || shape.parts[0].is_some_and(|pt| pt.shift > 0)
                    {
                        self.stats.sfi_overhead_insts += 1; // the lea
                        p.tag_last(1, Provenance::SegueAddressing);
                    }
                }
                if matches!(addr, Slot::Trunc(_)) {
                    // zx_reg emitted the truncation and counted it.
                }
                (
                    Mem::bisd(regs::HEAP_BASE, r, Scale::S1, off_i),
                    owned.then_some(r),
                )
            }
        }
    }

    fn heap_load(&mut self, p: &mut Program, off: u32, width: Width, sext: bool) {
        let addr = self.pop_slot();
        let (mem, owned) = self.heap_mem(p, addr, off, width, false);
        if let Some(r) = owned {
            self.free_reg(r);
        }
        let dst = self.alloc_reg(p);
        if sext {
            p.push(Inst::LoadSx { dst, mem, width });
            // Wasm sign-extends to i32: mask the upper bits back off.
            if width != Width::D && width != Width::Q {
                p.push(Inst::MovRR { dst, src: dst, width: Width::D });
            }
        } else if width == Width::B || width == Width::W {
            // movzx: narrow unsigned loads must zero-extend, not merge.
            p.push(Inst::LoadZx { dst, mem, width });
        } else {
            p.push(Inst::Load { dst, mem, width });
        }
        self.stats.heap_loads += 1;
        self.push_reg(dst);
    }

    fn heap_store(&mut self, p: &mut Program, off: u32, width: Width) {
        let val = self.pop_slot();
        let addr = self.pop_slot();
        // Imm values can store directly.
        if let Slot::Imm(v) = val {
            if i32::try_from(v).is_ok() {
                let (mem, owned) = self.heap_mem(p, addr, off, width, true);
                p.push(Inst::StoreImm { imm: v as i32, mem, width });
                self.stats.heap_stores += 1;
                if let Some(r) = owned {
                    self.free_reg(r);
                }
                return;
            }
        }
        let vr = self.materialize_owned(p, val);
        let (mem, owned) = self.heap_mem(p, addr, off, width, true);
        p.push(Inst::Store { src: vr, mem, width });
        self.stats.heap_stores += 1;
        self.free_reg(vr);
        if let Some(r) = owned {
            self.free_reg(r);
        }
    }

    // ---- the op dispatcher ----

    #[allow(clippy::too_many_lines)]
    fn op(&mut self, p: &mut Program, op: &Op, is_last: bool) -> Result<(), CompileError> {
        // Skip unreachable code (after unconditional branches) until the
        // enclosing frame closes.
        if self.dead_depth > 0 {
            match op {
                Op::Block | Op::Loop | Op::If => self.dead_depth += 1,
                Op::End => {
                    self.dead_depth -= 1;
                    if self.dead_depth == 0 {
                        self.close_frame(p, is_last);
                    }
                }
                Op::Else if self.dead_depth == 1 => {
                    self.dead_depth = 0;
                    self.begin_else(p);
                }
                _ => {}
            }
            return Ok(());
        }

        match op {
            Op::Nop => {}
            Op::Unreachable => {
                p.push(Inst::Ud2);
                self.mark_dead();
            }
            Op::Drop => {
                let s = self.pop_slot();
                self.free_slot(s);
            }
            Op::Select => {
                let c = self.pop_slot();
                let b = self.pop_slot();
                let a = self.pop_slot();
                let ra = self.materialize_owned(p, a);
                let rb = self.materialize_owned(p, b);
                let rc = self.materialize_owned(p, c);
                p.push(Inst::TestRR { a: rc, b: rc, width: Width::D });
                // c == 0 → take b.
                p.push(Inst::Cmov { cond: Cond::E, dst: ra, src: rb, width: Width::Q });
                self.free_reg(rb);
                self.free_reg(rc);
                self.push_reg(ra);
            }

            Op::I32Const(v) => self.stack.push(Slot::Imm(i64::from(*v as u32))),
            Op::I64Const(v) => self.stack.push(Slot::Imm(*v)),

            Op::LocalGet(l) => {
                let ty = self.func.local_type(*l).expect("validated");
                if ty == ValType::I32 {
                    self.stack.push(Slot::Addr(Shape::local(*l)));
                } else {
                    let r = self.alloc_reg(p);
                    let src = self.local_reg(p, *l, r);
                    if src != r {
                        p.push(Inst::MovRR { dst: r, src, width: Width::Q });
                    }
                    self.push_reg(r);
                }
            }
            Op::LocalSet(l) => {
                self.flush_local_refs(p, *l);
                let s = self.pop_slot();
                self.store_local(p, *l, s);
            }
            Op::LocalTee(l) => {
                self.flush_local_refs(p, *l);
                let s = self.pop_slot();
                let r = self.materialize_owned(p, s);
                // Copy into the local without surrendering ownership of r
                // (it stays on the operand stack).
                let ty = self.func.local_type(*l).expect("validated");
                let width = if ty == ValType::I32 { Width::D } else { Width::Q };
                match self.locals[*l as usize] {
                    LocalLoc::Reg(dst) => {
                        p.push(Inst::MovRR { dst, src: r, width });
                    }
                    LocalLoc::Frame(slot) => {
                        p.push(Inst::Store {
                            src: r,
                            mem: Mem::base_disp(regs::FRAME, self.frame_local_off(slot)),
                            width: Width::Q,
                        });
                    }
                }
                self.push_reg(r);
            }
            Op::GlobalGet(g) => {
                let r = self.alloc_reg(p);
                p.push(Inst::Load {
                    dst: r,
                    mem: Mem::abs(self.config.regions.globals_base as i32 + 8 * *g as i32),
                    width: Width::Q,
                });
                self.push_reg(r);
            }
            Op::GlobalSet(g) => {
                let s = self.pop_slot();
                let r = self.materialize_owned(p, s);
                p.push(Inst::Store {
                    src: r,
                    mem: Mem::abs(self.config.regions.globals_base as i32 + 8 * *g as i32),
                    width: Width::Q,
                });
                self.free_reg(r);
            }

            // ---- i32/i64 arithmetic ----
            Op::I32Add => self.binop(p, AluOp::Add, Width::D, true),
            Op::I32Sub => self.binop(p, AluOp::Sub, Width::D, false),
            Op::I32And => self.binop(p, AluOp::And, Width::D, false),
            Op::I32Or => self.binop(p, AluOp::Or, Width::D, false),
            Op::I32Xor => self.binop(p, AluOp::Xor, Width::D, false),
            Op::I64Add => self.binop(p, AluOp::Add, Width::Q, false),
            Op::I64Sub => self.binop(p, AluOp::Sub, Width::Q, false),
            Op::I64And => self.binop(p, AluOp::And, Width::Q, false),
            Op::I64Or => self.binop(p, AluOp::Or, Width::Q, false),
            Op::I64Xor => self.binop(p, AluOp::Xor, Width::Q, false),

            Op::I32Mul => self.mul(p, Width::D),
            Op::I64Mul => self.mul(p, Width::Q),

            Op::I32Shl => self.shift_or_fold(p, ShiftOp::Shl, Width::D),
            Op::I32ShrU => self.shift(p, ShiftOp::Shr, Width::D),
            Op::I32ShrS => self.shift(p, ShiftOp::Sar, Width::D),
            Op::I32Rotl => self.shift(p, ShiftOp::Rol, Width::D),
            Op::I32Rotr => self.shift(p, ShiftOp::Ror, Width::D),
            Op::I64Shl => self.shift(p, ShiftOp::Shl, Width::Q),
            Op::I64ShrU => self.shift(p, ShiftOp::Shr, Width::Q),
            Op::I64ShrS => self.shift(p, ShiftOp::Sar, Width::Q),

            Op::I32DivU => self.div(p, Width::D, false, false),
            Op::I32DivS => self.div(p, Width::D, true, false),
            Op::I32RemU => self.div(p, Width::D, false, true),
            Op::I32RemS => self.div(p, Width::D, true, true),
            Op::I64DivU => self.div(p, Width::Q, false, false),
            Op::I64DivS => self.div(p, Width::Q, true, false),
            Op::I64RemU => self.div(p, Width::Q, false, true),
            Op::I64RemS => self.div(p, Width::Q, true, true),

            // ---- comparisons ----
            Op::I32Eqz => self.eqz(p, Width::D),
            Op::I64Eqz => self.eqz(p, Width::Q),
            Op::I32Eq => self.cmp(p, Cond::E, Width::D),
            Op::I32Ne => self.cmp(p, Cond::Ne, Width::D),
            Op::I32LtS => self.cmp(p, Cond::L, Width::D),
            Op::I32LtU => self.cmp(p, Cond::B, Width::D),
            Op::I32GtS => self.cmp(p, Cond::G, Width::D),
            Op::I32GtU => self.cmp(p, Cond::A, Width::D),
            Op::I32LeS => self.cmp(p, Cond::Le, Width::D),
            Op::I32LeU => self.cmp(p, Cond::Be, Width::D),
            Op::I32GeS => self.cmp(p, Cond::Ge, Width::D),
            Op::I32GeU => self.cmp(p, Cond::Ae, Width::D),
            Op::I64Eq => self.cmp(p, Cond::E, Width::Q),
            Op::I64Ne => self.cmp(p, Cond::Ne, Width::Q),
            Op::I64LtS => self.cmp(p, Cond::L, Width::Q),
            Op::I64LtU => self.cmp(p, Cond::B, Width::Q),
            Op::I64GtS => self.cmp(p, Cond::G, Width::Q),
            Op::I64GtU => self.cmp(p, Cond::A, Width::Q),
            Op::I64LeS => self.cmp(p, Cond::Le, Width::Q),
            Op::I64LeU => self.cmp(p, Cond::Be, Width::Q),
            Op::I64GeS => self.cmp(p, Cond::Ge, Width::Q),
            Op::I64GeU => self.cmp(p, Cond::Ae, Width::Q),

            // ---- conversions ----
            Op::I32WrapI64 => {
                let s = self.pop_slot();
                match s {
                    // The truncation is deferred: Segue will often get it
                    // for free via the address-size override.
                    Slot::Reg(r) => self.stack.push(Slot::Trunc(r)),
                    Slot::Imm(v) => self.stack.push(Slot::Imm(i64::from(v as u32))),
                    other => {
                        let r = self.materialize_owned(p, other);
                        self.stack.push(Slot::Trunc(r));
                    }
                }
            }
            Op::I64ExtendI32U => {
                let s = self.pop_slot();
                // i32 slots are already zero-extended once materialized.
                let r = self.materialize_owned(p, s);
                self.push_reg(r);
            }
            Op::I64ExtendI32S => {
                let s = self.pop_slot();
                let r = self.materialize_owned(p, s);
                p.push(Inst::Movsx { dst: r, src: r, from: Width::D });
                self.push_reg(r);
            }

            // ---- memory ----
            Op::I32Load { offset } => self.heap_load(p, *offset, Width::D, false),
            Op::I64Load { offset } => self.heap_load(p, *offset, Width::Q, false),
            Op::I32Load8U { offset } => self.heap_load(p, *offset, Width::B, false),
            Op::I32Load8S { offset } => self.heap_load(p, *offset, Width::B, true),
            Op::I32Load16U { offset } => self.heap_load(p, *offset, Width::W, false),
            Op::I32Load16S { offset } => self.heap_load(p, *offset, Width::W, true),
            Op::I32Store { offset } => self.heap_store(p, *offset, Width::D),
            Op::I64Store { offset } => self.heap_store(p, *offset, Width::Q),
            Op::I32Store8 { offset } => self.heap_store(p, *offset, Width::B),
            Op::I32Store16 { offset } => self.heap_store(p, *offset, Width::W),

            Op::MemorySize => {
                let r = self.alloc_reg(p);
                p.push(Inst::Load {
                    dst: r,
                    mem: Mem::abs(self.config.regions.header_base as i32),
                    width: Width::D,
                });
                self.push_reg(r);
            }
            Op::MemoryGrow => self.host_call(p, hostcall::MEMORY_GROW, 1, true),
            Op::MemoryCopy => self.host_call(p, hostcall::MEMORY_COPY, 3, false),
            Op::MemoryFill => self.host_call(p, hostcall::MEMORY_FILL, 3, false),

            // ---- control flow ----
            Op::Block => {
                self.spill_below(p, 0);
                let end_label = p.fresh_label();
                self.ctrl.push(CtrlFrame {
                    kind: CtrlKind::Block,
                    end_label,
                    loop_label: None,
                    else_label: None,
                    stack_height: self.stack.len(),
                });
            }
            Op::Loop => {
                self.spill_below(p, 0);
                let end_label = p.fresh_label();
                let loop_label = p.here();
                self.ctrl.push(CtrlFrame {
                    kind: CtrlKind::Loop,
                    end_label,
                    loop_label: Some(loop_label),
                    else_label: None,
                    stack_height: self.stack.len(),
                });
            }
            Op::If => {
                let c = self.pop_slot();
                self.spill_below(p, 0);
                let (rc, owned) = self.zx_reg(p, c);
                p.push(Inst::TestRR { a: rc, b: rc, width: Width::D });
                if owned {
                    self.free_reg(rc);
                }
                let end_label = p.fresh_label();
                let else_label = p.fresh_label();
                p.push(Inst::Jcc { cond: Cond::E, target: else_label });
                self.ctrl.push(CtrlFrame {
                    kind: CtrlKind::If,
                    end_label,
                    loop_label: None,
                    else_label: Some(else_label),
                    stack_height: self.stack.len(),
                });
            }
            Op::Else => self.begin_else(p),
            Op::End => self.close_frame(p, is_last),

            Op::Br(d) => {
                let target = self.branch_target(*d);
                p.push(Inst::Jmp { target });
                self.mark_dead();
            }
            Op::BrIf(d) => {
                // Below-frame-height slots were spilled at block entry, so
                // the branch target's compile-time state already matches.
                let c = self.pop_slot();
                let (rc, owned) = self.zx_reg(p, c);
                p.push(Inst::TestRR { a: rc, b: rc, width: Width::D });
                if owned {
                    self.free_reg(rc);
                }
                let target = self.branch_target(*d);
                p.push(Inst::Jcc { cond: Cond::Ne, target });
            }
            Op::BrTable { targets, default } => {
                let s = self.pop_slot();
                let (r, owned) = self.zx_reg(p, s);
                for (i, t) in targets.iter().enumerate() {
                    p.push(Inst::AluRI { op: AluOp::Cmp, dst: r, imm: i as i32, width: Width::D });
                    let target = self.branch_target(*t);
                    p.push(Inst::Jcc { cond: Cond::E, target });
                }
                let target = self.branch_target(*default);
                p.push(Inst::Jmp { target });
                if owned {
                    self.free_reg(r);
                }
                self.mark_dead();
            }
            Op::Return => {
                if self.func.result.is_some() {
                    let s = self.pop_slot();
                    let r = self.materialize_owned(p, s);
                    p.push(Inst::MovRR { dst: regs::RET, src: r, width: Width::Q });
                    self.free_reg(r);
                }
                p.push(Inst::Jmp { target: self.epilogue });
                self.mark_dead();
            }
            Op::Call(idx) => self.wasm_call(p, *idx)?,
            Op::CallIndirect { type_func } => self.call_indirect(p, *type_func)?,
        }
        Ok(())
    }

    fn mark_dead(&mut self) {
        // Discard slots above the enclosing frame's height (the values a
        // branch discards); slots below stay for the merge point.
        let keep = self.ctrl.last().map_or(0, |f| f.stack_height);
        while self.stack.len() > keep {
            let s = self.stack.pop().expect("len checked");
            self.free_slot(s);
        }
        self.dead_depth = 1;
    }

    fn begin_else(&mut self, p: &mut Program) {
        let frame = self.ctrl.last_mut().expect("validated");
        debug_assert_eq!(frame.kind, CtrlKind::If);
        let end = frame.end_label;
        let else_label = frame.else_label.take().expect("If has else_label");
        frame.kind = CtrlKind::Else;
        p.push(Inst::Jmp { target: end });
        p.bind(else_label);
    }

    fn close_frame(&mut self, p: &mut Program, is_last: bool) {
        if is_last {
            // Function-level End.
            if self.func.result.is_some() && self.dead_depth == 0 {
                if let Some(s) = self.stack.pop() {
                    let r = self.materialize_owned(p, s);
                    p.push(Inst::MovRR { dst: regs::RET, src: r, width: Width::Q });
                    self.free_reg(r);
                }
            }
            self.dead_depth = 0;
            return;
        }
        let frame = self.ctrl.pop().expect("validated");
        if let Some(else_label) = frame.else_label {
            p.bind(else_label); // if without else
        }
        p.bind(frame.end_label);
        let _ = frame.loop_label; // loops simply fall through at end
    }

    fn branch_target(&self, d: u32) -> Label {
        if (d as usize) >= self.ctrl.len() {
            return self.epilogue;
        }
        let frame = &self.ctrl[self.ctrl.len() - 1 - d as usize];
        match frame.kind {
            CtrlKind::Loop => frame.loop_label.expect("loops have loop labels"),
            _ => frame.end_label,
        }
    }

    fn store_local(&mut self, p: &mut Program, l: u32, s: Slot) {
        let ty = self.func.local_type(l).expect("validated");
        let width = if ty == ValType::I32 { Width::D } else { Width::Q };
        match (self.locals[l as usize], s) {
            (LocalLoc::Reg(dst), Slot::Imm(v)) => {
                p.push(Inst::MovRI { dst, imm: v, width: if v >= 0 && width == Width::D { Width::D } else { Width::Q } });
            }
            (LocalLoc::Reg(dst), other) => {
                let r = self.materialize_owned(p, other);
                // i32 writes use D width so the local stays zero-extended.
                p.push(Inst::MovRR { dst, src: r, width });
                self.free_reg(r);
            }
            (LocalLoc::Frame(slot), Slot::Imm(v)) if i32::try_from(v).is_ok() => {
                p.push(Inst::StoreImm {
                    imm: v as i32,
                    mem: Mem::base_disp(regs::FRAME, self.frame_local_off(slot)),
                    width: Width::Q,
                });
            }
            (LocalLoc::Frame(slot), other) => {
                let r = self.materialize_owned(p, other);
                if width == Width::D && matches!(other, Slot::Trunc(_)) {
                    // materialize_owned already truncated.
                }
                p.push(Inst::Store {
                    src: r,
                    mem: Mem::base_disp(regs::FRAME, self.frame_local_off(slot)),
                    width: Width::Q,
                });
                self.free_reg(r);
            }
        }
    }

    fn binop(&mut self, p: &mut Program, op: AluOp, width: Width, foldable: bool) {
        let b = self.pop_slot();
        let a = self.pop_slot();
        // Lazy folding for i32.add over shapes/immediates.
        if foldable && width == Width::D {
            let shape_of = |s: &Slot| -> Option<Shape> {
                match s {
                    Slot::Addr(sh) => Some(*sh),
                    Slot::Imm(v) => Some(Shape { parts: [None, None], disp: *v as i32 }),
                    _ => None,
                }
            };
            if let (Some(sa), Some(sb)) = (shape_of(&a), shape_of(&b)) {
                if let Some(c) = Shape::add(sa, sb) {
                    self.stack.push(Slot::Addr(c));
                    return;
                }
            }
        }
        let ra = self.materialize_owned(p, a);
        match b {
            Slot::Imm(v) if i32::try_from(v).is_ok() => {
                p.push(Inst::AluRI { op, dst: ra, imm: v as i32, width });
            }
            other => {
                let (rb, owned) = self.operand_reg(p, other, width);
                p.push(Inst::AluRR { op, dst: ra, src: rb, width });
                if owned {
                    self.free_reg(rb);
                }
            }
        }
        self.push_reg(ra);
    }

    /// A register whose low `width` bits hold the value of `s`, possibly
    /// borrowing a local register read-only. For D-width consumers, pending
    /// truncations are already fine (upper bits ignored).
    fn operand_reg(&mut self, p: &mut Program, s: Slot, width: Width) -> (Gpr, bool) {
        match s {
            Slot::Reg(r) => (r, true),
            Slot::Trunc(r) if width == Width::D => (r, true),
            Slot::Addr(shape)
                if width == Width::D
                    && shape.npart() == 1
                    && shape.disp == 0
                    && shape.parts[0].expect("npart").shift == 0 =>
            {
                let l = shape.parts[0].expect("npart").local;
                match self.locals[l as usize] {
                    LocalLoc::Reg(r) => (r, false),
                    LocalLoc::Frame(_) => {
                        let r = self.materialize_owned(p, s);
                        (r, true)
                    }
                }
            }
            other => (self.materialize_owned(p, other), true),
        }
    }

    fn mul(&mut self, p: &mut Program, width: Width) {
        let b = self.pop_slot();
        let a = self.pop_slot();
        // i32.mul by a power-of-two constant folds into the shape.
        if width == Width::D {
            if let (Slot::Addr(sh), Slot::Imm(v)) = (&a, &b) {
                if let Some(k) = pow2_shift(*v) {
                    if let Some(s2) = sh.shl(k) {
                        self.stack.push(Slot::Addr(s2));
                        return;
                    }
                }
            }
        }
        let ra = self.materialize_owned(p, a);
        match b {
            Slot::Imm(v) if i32::try_from(v).is_ok() => {
                p.push(Inst::ImulRRI { dst: ra, src: ra, imm: v as i32, width });
            }
            other => {
                let (rb, owned) = self.operand_reg(p, other, width);
                p.push(Inst::Imul { dst: ra, src: rb, width });
                if owned {
                    self.free_reg(rb);
                }
            }
        }
        self.push_reg(ra);
    }

    fn shift_or_fold(&mut self, p: &mut Program, op: ShiftOp, width: Width) {
        // i32.shl by a small constant folds into the shape.
        let b = self.pop_slot();
        let a = self.pop_slot();
        if let (Slot::Addr(sh), Slot::Imm(v)) = (&a, &b) {
            if (0..=3).contains(v) {
                if let Some(s2) = sh.shl(*v as u8) {
                    self.stack.push(Slot::Addr(s2));
                    return;
                }
            }
        }
        self.stack.push(a);
        self.stack.push(b);
        self.shift(p, op, width);
    }

    fn shift(&mut self, p: &mut Program, op: ShiftOp, width: Width) {
        let b = self.pop_slot();
        let a = self.pop_slot();
        let ra = self.materialize_owned(p, a);
        match b {
            Slot::Imm(v) => {
                let mask = if width == Width::D { 31 } else { 63 };
                p.push(Inst::Shift {
                    op,
                    dst: ra,
                    amount: ShiftAmount::Imm((v & mask) as u8),
                    width,
                });
            }
            other => {
                let (rb, owned) = self.operand_reg(p, other, width);
                p.push(Inst::MovRR { dst: Gpr::Rcx, src: rb, width: Width::Q });
                p.push(Inst::Shift { op, dst: ra, amount: ShiftAmount::Cl, width });
                if owned {
                    self.free_reg(rb);
                }
            }
        }
        self.push_reg(ra);
    }

    fn div(&mut self, p: &mut Program, width: Width, signed: bool, rem: bool) {
        let b = self.pop_slot();
        let a = self.pop_slot();
        let (rb, owned_b) = self.operand_reg(p, b, width);
        let ra = self.materialize_owned(p, a);
        p.push(Inst::MovRR { dst: Gpr::Rax, src: ra, width: Width::Q });

        if signed && rem {
            // Wasm: INT_MIN rem -1 == 0, but idiv would trap. Emit the
            // divisor == -1 special case the production engines emit.
            let special = p.fresh_label();
            let done = p.fresh_label();
            p.push(Inst::AluRI { op: AluOp::Cmp, dst: rb, imm: -1, width });
            p.push(Inst::Jcc { cond: Cond::E, target: special });
            p.push(Inst::Cdq { width });
            p.push(Inst::Div { src: rb, width, signed: true });
            p.push(Inst::MovRR { dst: ra, src: Gpr::Rdx, width: Width::Q });
            p.push(Inst::Jmp { target: done });
            p.bind(special);
            p.push(Inst::MovRI { dst: ra, imm: 0, width: Width::Q });
            p.bind(done);
        } else {
            if signed {
                p.push(Inst::Cdq { width });
            } else {
                p.push(Inst::AluRR { op: AluOp::Xor, dst: Gpr::Rdx, src: Gpr::Rdx, width: Width::D });
            }
            p.push(Inst::Div { src: rb, width, signed });
            let res = if rem { Gpr::Rdx } else { Gpr::Rax };
            p.push(Inst::MovRR { dst: ra, src: res, width: if width == Width::D { Width::D } else { Width::Q } });
        }
        if owned_b {
            self.free_reg(rb);
        }
        self.push_reg(ra);
    }

    fn eqz(&mut self, p: &mut Program, width: Width) {
        let s = self.pop_slot();
        let (r, owned) = self.operand_reg(p, s, width);
        p.push(Inst::TestRR { a: r, b: r, width });
        if owned {
            self.free_reg(r);
        }
        let dst = self.alloc_reg(p);
        p.push(Inst::Setcc { cond: Cond::E, dst });
        self.push_reg(dst);
    }

    fn cmp(&mut self, p: &mut Program, cond: Cond, width: Width) {
        let b = self.pop_slot();
        let a = self.pop_slot();
        let (ra, owned_a) = self.operand_reg(p, a, width);
        match b {
            Slot::Imm(v) if i32::try_from(v).is_ok() => {
                p.push(Inst::AluRI { op: AluOp::Cmp, dst: ra, imm: v as i32, width });
            }
            other => {
                let (rb, owned_b) = self.operand_reg(p, other, width);
                p.push(Inst::AluRR { op: AluOp::Cmp, dst: ra, src: rb, width });
                if owned_b {
                    self.free_reg(rb);
                }
            }
        }
        if owned_a {
            self.free_reg(ra);
        }
        let dst = self.alloc_reg(p);
        p.push(Inst::Setcc { cond, dst });
        self.push_reg(dst);
    }

    /// Spills every live (non-argument) operand slot to its frame home and
    /// returns the saved state; used around calls.
    fn spill_below(&mut self, p: &mut Program, keep_top: usize) {
        let n = self.stack.len() - keep_top;
        for d in 0..n {
            match self.stack[d] {
                Slot::Reg(r) | Slot::Trunc(r) => {
                    // Trunc: resolve before spilling so the reload is clean.
                    if matches!(self.stack[d], Slot::Trunc(_)) {
                        p.push(Inst::MovRR { dst: r, src: r, width: Width::D });
                    }
                    p.push(Inst::Store {
                        src: r,
                        mem: Mem::base_disp(regs::FRAME, self.spill_off(d as u32)),
                        width: Width::Q,
                    });
                    self.free_reg(r);
                    self.stack[d] = Slot::Spilled { depth: d as u32 };
                }
                Slot::Addr(shape) => {
                    let r = self.alloc_reg(p);
                    self.emit_shape(p, shape, r);
                    p.push(Inst::Store {
                        src: r,
                        mem: Mem::base_disp(regs::FRAME, self.spill_off(d as u32)),
                        width: Width::Q,
                    });
                    self.free_reg(r);
                    self.stack[d] = Slot::Spilled { depth: d as u32 };
                }
                Slot::Imm(_) | Slot::Spilled { .. } => {}
            }
        }
    }

    /// Pushes the top `argc` slots to the machine stack (in bottom-first
    /// order) and removes them from the operand stack.
    fn push_args(&mut self, p: &mut Program, argc: usize) {
        let base = self.stack.len() - argc;
        for i in 0..argc {
            let s = self.stack[base + i];
            let r = self.materialize_owned(p, s);
            p.push(Inst::Push { reg: r });
            self.free_reg(r);
        }
        self.stack.truncate(base);
    }

    fn wasm_call(&mut self, p: &mut Program, idx: u32) -> Result<(), CompileError> {
        let (params, result) = self.module.signature(idx).expect("validated");
        let argc = params.len();
        let has_result = result.is_some();
        if self.module.is_import(idx) {
            self.spill_below(p, argc);
            self.push_args(p, argc);
            p.push(Inst::CallHost { func: idx });
            p.tag_last(1, Provenance::TransitionGlue);
            if argc > 0 {
                p.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Rsp, imm: 8 * argc as i32, width: Width::Q });
                p.tag_last(1, Provenance::TransitionGlue);
            }
        } else {
            self.spill_below(p, argc);
            // Caller-saved locals.
            let saved = self.reg_locals.clone();
            for &r in &saved {
                p.push(Inst::Push { reg: r });
            }
            self.push_args(p, argc);
            let target = self.func_labels[idx as usize].expect("defined");
            p.push(Inst::Call { target });
            for &r in saved.iter().rev() {
                p.push(Inst::Pop { reg: r });
            }
        }
        if has_result {
            let r = self.alloc_reg(p);
            p.push(Inst::MovRR { dst: r, src: regs::RET, width: Width::Q });
            self.push_reg(r);
        }
        Ok(())
    }

    fn call_indirect(&mut self, p: &mut Program, type_func: u32) -> Result<(), CompileError> {
        let (params, result) = self.module.signature(type_func).expect("validated");
        let argc = params.len();
        let has_result = result.is_some();
        let expected_sig = (self.sig_of)(params, result) as i32;
        let table_len = self.module.table.len() as i32;
        let table_base = self.config.regions.table_base as i32;

        // Pop the table index (it sits above the args).
        let idx_slot = self.pop_slot();
        let (ri, owned) = self.zx_reg(p, idx_slot);

        self.spill_below(p, argc);
        let saved = self.reg_locals.clone();
        for &r in &saved {
            p.push(Inst::Push { reg: r });
        }
        self.push_args(p, argc);

        // Bounds + signature checks — Wasm's control-flow discipline. Native
        // code calls through a bare function pointer and pays none of this
        // (part of the residual overhead Segue cannot remove).
        if self.config.strategy != Strategy::Native {
            p.push(Inst::AluRI { op: AluOp::Cmp, dst: ri, imm: table_len, width: Width::D });
            p.push(Inst::Jcc { cond: Cond::Ae, target: self.trap });
            p.push(Inst::Load {
                dst: Gpr::Rax,
                mem: Mem::isd(ri, Scale::S8, table_base),
                width: Width::D,
            });
            p.push(Inst::AluRI { op: AluOp::Cmp, dst: Gpr::Rax, imm: expected_sig, width: Width::D });
            p.push(Inst::Jcc { cond: Cond::Ne, target: self.trap });
            self.stats.sfi_overhead_insts += 4;
            p.tag_last(5, Provenance::BoundsGuard);
        }
        p.push(Inst::Load {
            dst: Gpr::Rdx,
            mem: Mem::isd(ri, Scale::S8, table_base + 4),
            width: Width::D,
        });
        if owned {
            self.free_reg(ri);
        }
        p.push(Inst::CallReg { reg: Gpr::Rdx });

        for &r in saved.iter().rev() {
            p.push(Inst::Pop { reg: r });
        }
        if has_result {
            let r = self.alloc_reg(p);
            p.push(Inst::MovRR { dst: r, src: regs::RET, width: Width::Q });
            self.push_reg(r);
        }
        Ok(())
    }

    /// Built-in host call (memory.grow/copy/fill).
    fn host_call(&mut self, p: &mut Program, id: u32, argc: usize, has_result: bool) {
        self.spill_below(p, argc);
        self.push_args(p, argc);
        p.push(Inst::CallHost { func: id });
        p.tag_last(1, Provenance::TransitionGlue);
        if argc > 0 {
            p.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Rsp, imm: 8 * argc as i32, width: Width::Q });
            p.tag_last(1, Provenance::TransitionGlue);
        }
        if has_result {
            let r = self.alloc_reg(p);
            p.push(Inst::MovRR { dst: r, src: regs::RET, width: Width::Q });
            self.push_reg(r);
        }
    }
}

fn shift_scale(shift: u8) -> Scale {
    match shift {
        0 => Scale::S1,
        1 => Scale::S2,
        2 => Scale::S4,
        3 => Scale::S8,
        _ => unreachable!("shifts above 3 never enter shapes"),
    }
}

fn pow2_shift(v: i64) -> Option<u8> {
    match v {
        1 => Some(0),
        2 => Some(1),
        4 => Some(2),
        8 => Some(3),
        _ => None,
    }
}

/// Net operand-stack effect of an op (for the depth prepass).
fn stack_delta(module: &Module, op: &Op) -> i64 {
    use Op::*;
    match op {
        I32Const(_) | I64Const(_) | LocalGet(_) | GlobalGet(_) | MemorySize => 1,
        LocalSet(_) | GlobalSet(_) | Drop | BrIf(_) | BrTable { .. } => -1,
        Select => -2,
        I32Add | I32Sub | I32Mul | I32DivS | I32DivU | I32RemS | I32RemU | I32And | I32Or
        | I32Xor | I32Shl | I32ShrS | I32ShrU | I32Rotl | I32Rotr | I32Eq | I32Ne | I32LtS
        | I32LtU | I32GtS | I32GtU | I32LeS | I32LeU | I32GeS | I32GeU | I64Add | I64Sub
        | I64Mul | I64DivS | I64DivU | I64RemS | I64RemU | I64And | I64Or | I64Xor | I64Shl
        | I64ShrS | I64ShrU | I64Eq | I64Ne | I64LtS | I64LtU | I64GtS | I64GtU | I64LeS
        | I64LeU | I64GeS | I64GeU => -1,
        I32Load { .. } | I64Load { .. } | I32Load8U { .. } | I32Load8S { .. }
        | I32Load16U { .. } | I32Load16S { .. } => 0,
        I32Store { .. } | I64Store { .. } | I32Store8 { .. } | I32Store16 { .. } => -2,
        MemoryGrow => 0,
        MemoryCopy | MemoryFill => -3,
        If => -1,
        Call(idx) => {
            let (pa, r) = module.signature(*idx).expect("validated");
            i64::from(r.is_some()) - pa.len() as i64
        }
        CallIndirect { type_func } => {
            let (pa, r) = module.signature(*type_func).expect("validated");
            i64::from(r.is_some()) - pa.len() as i64 - 1
        }
        Return | Br(_) | Unreachable | Nop | Block | Loop | Else | End | LocalTee(_)
        | I32Eqz | I64Eqz | I32WrapI64 | I64ExtendI32S | I64ExtendI32U => 0,
    }
}
