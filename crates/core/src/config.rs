//! Compiler configuration: SFI strategies and the memory-layout contract.

use sfi_x86::Gpr;

/// The SFI strategy applied to linear-memory accesses.
///
/// These are the schemes the paper compares:
///
/// | Strategy | Heap-base addition | Bounds enforcement | Reserved GPR |
/// |---|---|---|---|
/// | [`Strategy::Native`] | folded into displacements | none (uninstrumented) | none |
/// | [`Strategy::GuardRegion`] | explicit, via reserved GPR | guard pages | yes |
/// | [`Strategy::Segue`] | by hardware, via `%gs` | guard pages | none |
/// | [`Strategy::SegueLoads`] | `%gs` for loads only | guard pages | yes (for stores) |
/// | [`Strategy::BoundsCheck`] | explicit, via reserved GPR | `cmp`+`ja` per access | yes |
/// | [`Strategy::BoundsCheckSegue`] | by hardware, via `%gs` | `cmp`+`ja` per access | none |
/// | [`Strategy::Masking`] | explicit, via reserved GPR | index masking (wraps!) | yes |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Strategy {
    /// Uninstrumented "native" compilation: the linear-memory base is a
    /// compile-time constant folded into displacements, address arithmetic
    /// is performed in 64 bits, and no protection is enforced. This is the
    /// normalization baseline for every figure.
    Native,
    /// The production Wasm baseline: a reserved GPR holds the heap base,
    /// 32-bit address expressions are materialized with `lea`/`mov`
    /// truncations, and out-of-bounds accesses land in guard regions.
    GuardRegion,
    /// Segue (§3.1): the heap base lives in `%gs`; memory operations use
    /// segment-relative addressing with the address-size override providing
    /// free 32-bit truncation. No reserved GPR, usually one instruction per
    /// access.
    Segue,
    /// WAMR's tunable variant (§4.2/§6.2): Segue addressing for loads,
    /// baseline addressing for stores. Keeps the reserved GPR (stores still
    /// need it) but avoids store-side vectorizer interactions.
    SegueLoads,
    /// Explicit bounds checks (`cmp`+`ja ud2`) with baseline addressing —
    /// what engines use for Memory64 or tiny guard regions.
    BoundsCheck,
    /// Explicit bounds checks with Segue addressing — the paper's "Segue on
    /// engines with explicit bounds checks eliminates 25.2% of overhead"
    /// configuration.
    BoundsCheckSegue,
    /// Classic Wahbe-style masking: `and` the index with a power-of-two
    /// mask. Out-of-bounds accesses *wrap around inside the sandbox* rather
    /// than trapping (the paper's footnote 1) — isolation holds, Wasm
    /// semantics do not.
    Masking,
}

impl Strategy {
    /// All strategies, for sweeps.
    pub const ALL: [Strategy; 7] = [
        Strategy::Native,
        Strategy::GuardRegion,
        Strategy::Segue,
        Strategy::SegueLoads,
        Strategy::BoundsCheck,
        Strategy::BoundsCheckSegue,
        Strategy::Masking,
    ];

    /// Whether this strategy reserves a general-purpose register for the
    /// heap base.
    pub fn reserves_heap_gpr(self) -> bool {
        matches!(
            self,
            Strategy::GuardRegion
                | Strategy::SegueLoads
                | Strategy::BoundsCheck
                | Strategy::Masking
        )
    }

    /// Whether loads use `%gs` segment addressing.
    pub fn segue_loads(self) -> bool {
        matches!(self, Strategy::Segue | Strategy::SegueLoads | Strategy::BoundsCheckSegue)
    }

    /// Whether stores use `%gs` segment addressing.
    pub fn segue_stores(self) -> bool {
        matches!(self, Strategy::Segue | Strategy::BoundsCheckSegue)
    }

    /// Whether explicit bounds checks are emitted.
    pub fn bounds_checks(self) -> bool {
        matches!(self, Strategy::BoundsCheck | Strategy::BoundsCheckSegue)
    }

    /// Whether accesses are masked.
    pub fn masks(self) -> bool {
        self == Strategy::Masking
    }

    /// Whether guard regions are relied on for isolation.
    pub fn uses_guard_regions(self) -> bool {
        matches!(self, Strategy::GuardRegion | Strategy::Segue | Strategy::SegueLoads)
    }

    /// Short display name used in benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Native => "native",
            Strategy::GuardRegion => "guard",
            Strategy::Segue => "segue",
            Strategy::SegueLoads => "segue-loads",
            Strategy::BoundsCheck => "bounds",
            Strategy::BoundsCheckSegue => "bounds-segue",
            Strategy::Masking => "masking",
        }
    }
}

impl core::fmt::Display for Strategy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// The memory-layout contract between the allocator/runtime and the
/// compiler.
///
/// This mirrors the Wasmtime pooling-allocator contract that ColorGuard had
/// to preserve (§5): the compiler elides bounds checks *because* the runtime
/// promises that `[heap_base, heap_base + mem_size)` is the sandbox memory
/// and at least `guard_size` bytes beyond it will fault. If the runtime
/// breaks the promise, isolation breaks — which is why `sfi-pool` verifies
/// its layout computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemLayout {
    /// Virtual address of the start of linear memory. Must be known only to
    /// the runtime (the compiler receives it in `%gs` or the reserved GPR);
    /// `Strategy::Native` is the exception, folding it into displacements.
    pub heap_base: u64,
    /// Linear-memory size in bytes (a multiple of the Wasm page size).
    pub mem_size: u64,
    /// Guard bytes guaranteed to fault after the linear memory.
    pub guard_size: u64,
}

impl MemLayout {
    /// A small test layout: 64 KiB memory at 1 MiB with a 64 KiB guard.
    pub fn small_test() -> MemLayout {
        MemLayout { heap_base: 0x10_0000, mem_size: 0x1_0000, guard_size: 0x1_0000 }
    }

    /// The classic production layout: 4 GiB memory + 4 GiB guard.
    pub fn classic(heap_base: u64) -> MemLayout {
        MemLayout { heap_base, mem_size: 4 << 30, guard_size: 4 << 30 }
    }
}

/// Addresses of runtime-owned (non-sandbox) regions the compiled code
/// touches: globals, the indirect-call table, and the native stack. All must
/// fit in 31 bits so they can be encoded as absolute displacements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeRegions {
    /// Base of the globals array (8 bytes per global).
    pub globals_base: u32,
    /// Base of the indirect-call table (8 bytes per entry:
    /// `[sig_id: u32][entry_inst: u32]`).
    pub table_base: u32,
    /// Base of the runtime header (`[mem_pages: u32]` at offset 0,
    /// `[heap_base: u64]` at offset 8 for the segment-entry protocol).
    pub header_base: u32,
    /// Lowest valid stack address (the stack-overflow check limit).
    pub stack_limit: u32,
    /// Initial `%rsp` (top of the native stack region).
    pub stack_top: u32,
}

impl RuntimeRegions {
    /// Default test layout below 1 MiB: globals at 0x8000, table at 0xA000,
    /// stack in [0x20000, 0x80000).
    pub fn small_test() -> RuntimeRegions {
        RuntimeRegions {
            globals_base: 0x8000,
            table_base: 0xA000,
            header_base: 0x7000,
            stack_limit: 0x2_0000,
            stack_top: 0x8_0000,
        }
    }
}

/// The compilation tier.
///
/// [`OptLevel::Baseline`] is the single-pass compiler unchanged — cold
/// spawns pay exactly the codegen they always did, and its output is
/// byte-identical to what this crate produced before tiering existed.
/// [`OptLevel::Optimized`] additionally runs the [`crate::opt`] pipeline
/// (constant folding, redundant truncation/bounds-check elimination,
/// Segue-aware addressing fusion) and the widened register allocator that
/// exploits the GPR Segue frees. The two tiers must be *observationally*
/// identical (the differential-equivalence gate); they are deliberately not
/// byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OptLevel {
    /// Single-pass baseline codegen (the cold-spawn tier).
    #[default]
    Baseline,
    /// Baseline codegen followed by the optimizing pass pipeline and the
    /// widened local register allocation (the hot-module tier).
    Optimized,
}

impl OptLevel {
    /// Stable name, used in cache fingerprints and telemetry labels.
    pub fn name(self) -> &'static str {
        match self {
            OptLevel::Baseline => "baseline",
            OptLevel::Optimized => "optimized",
        }
    }
}

impl core::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Spectre mitigation applied on top of the SFI strategy (DESIGN.md §16).
///
/// Architectural SFI bounds do not constrain *transient* execution: a
/// mispredicted bounds check still runs the out-of-bounds load far enough
/// to leave a secret-dependent cache footprint. Each level here is a
/// label-stable post-optimization pass whose inserted instructions carry
/// [`sfi_x86::Provenance::SpecMitigation`], so the §14 profiler attributes
/// their cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MitigationLevel {
    /// No speculation hardening (the architectural-only contract every
    /// strategy shipped with before §16).
    #[default]
    None,
    /// An `lfence` at every conditional-branch edge (both fall-through and
    /// target) and every function entry: no speculation window survives a
    /// control-flow decision. Strongest and costliest — the per-branch
    /// pipeline drain is the price.
    Lfence,
    /// Speculative load hardening: after each `cmp`+`ja`-to-trap bounds
    /// check, a predicated `cmov` zeroes the checked index on the
    /// should-have-trapped path, so the transient load reads index 0
    /// instead of the attacker's offset. Cheap (one `cmov` per check) but
    /// only hardens explicitly bounds-checked accesses.
    Slh,
    /// Strengthened index masking: an `and index, mem_size-1` immediately
    /// before every sandbox memory operand. The mask executes transiently
    /// too (it is plain data flow, not a prediction), clamping wrong-path
    /// addresses into the sandbox — Spectre-robust for every strategy, at
    /// one ALU µop per access.
    IndexMask,
}

impl MitigationLevel {
    /// All levels, for matrix sweeps.
    pub const ALL: [MitigationLevel; 4] = [
        MitigationLevel::None,
        MitigationLevel::Lfence,
        MitigationLevel::Slh,
        MitigationLevel::IndexMask,
    ];

    /// Stable name, used in cache fingerprints, telemetry labels and bench
    /// artifacts.
    pub fn name(self) -> &'static str {
        match self {
            MitigationLevel::None => "none",
            MitigationLevel::Lfence => "lfence",
            MitigationLevel::Slh => "slh",
            MitigationLevel::IndexMask => "index-mask",
        }
    }

    /// Whether `strategy` compiled at this level is *declared safe* against
    /// the speculative-leak classes the emulator models. The
    /// `speculative_check` harness and the `figX_spectre --check` gate
    /// enforce that every declared-safe cell measures zero leaks; DESIGN.md
    /// §16 documents the reasoning per cell.
    pub fn declared_safe(self, strategy: Strategy) -> bool {
        // Native sandboxes nothing: no strategy×level cell containing it is
        // ever declared safe, whatever the mitigation does.
        if strategy == Strategy::Native {
            return false;
        }
        match self {
            // Unmitigated: only Masking survives — its `and`-wraps are
            // ordinary data flow and execute transiently too. Everything
            // else relies on a predicted-around check or a guard fault that
            // transient execution ignores. (Native is "safe" only in the
            // vacuous sense that it sandboxes nothing; it is *not* declared
            // safe.)
            MitigationLevel::None => strategy.masks(),
            // A fence after every branch edge closes every window we model,
            // for every strategy.
            MitigationLevel::Lfence => true,
            // SLH hardens the bounds-checked strategies (the cmov is glued
            // to the check) and is vacuously strong where masking already
            // wraps; guard-region strategies keep their unchecked loads.
            MitigationLevel::Slh => strategy.bounds_checks() || strategy.masks(),
            // The inserted mask clamps every sandbox operand transiently,
            // regardless of strategy.
            MitigationLevel::IndexMask => true,
        }
    }
}

impl core::fmt::Display for MitigationLevel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Full compiler configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CompilerConfig {
    /// The SFI strategy.
    pub strategy: Strategy,
    /// The compilation tier (defaults to [`OptLevel::Baseline`]).
    pub opt_level: OptLevel,
    /// Run the WAMR-style store-vectorization pass (§4.2).
    pub vectorize: bool,
    /// Emit a stack-overflow check in every prologue (on for sandboxed
    /// strategies, off for native).
    pub stack_check: bool,
    /// The memory-layout contract.
    pub layout: MemLayout,
    /// Runtime-owned regions.
    pub regions: RuntimeRegions,
    /// Reserve `%r14`/`%r10` for a downstream LFI rewriter (the moral
    /// equivalent of building with `-ffixed-r14`): the generated code never
    /// touches them, so the rewriter can use them for the sandbox base and
    /// materialized offsets.
    pub lfi_reserved_regs: bool,
    /// Wasm2c's §4.1 design: *exported* (module-entry) functions set the
    /// segment base themselves in their prologue (loading it from the
    /// runtime header), so embedders never track it; internal calls use the
    /// direct entry points and elide the set. Off by default — the
    /// `sfi-runtime` embedder sets the base during its transition instead.
    pub segment_entry_protocol: bool,
    /// Spectre mitigation pass applied after optimization (defaults to
    /// [`MitigationLevel::None`]).
    pub mitigation: MitigationLevel,
}

impl CompilerConfig {
    /// A configuration for `strategy` with small test regions.
    pub fn for_strategy(strategy: Strategy) -> CompilerConfig {
        CompilerConfig {
            strategy,
            opt_level: OptLevel::Baseline,
            vectorize: false,
            stack_check: strategy != Strategy::Native,
            layout: MemLayout::small_test(),
            regions: RuntimeRegions::small_test(),
            lfi_reserved_regs: false,
            segment_entry_protocol: false,
            mitigation: MitigationLevel::None,
        }
    }

    /// This configuration at [`OptLevel::Optimized`] — the hot-module tier
    /// the runtime promotes to.
    #[must_use]
    pub fn optimized(mut self) -> CompilerConfig {
        self.opt_level = OptLevel::Optimized;
        self
    }

    /// This configuration hardened at `level`.
    #[must_use]
    pub fn mitigated(mut self, level: MitigationLevel) -> CompilerConfig {
        self.mitigation = level;
        self
    }
}

/// The register conventions used by generated code.
pub mod regs {
    use super::Gpr;

    /// The reserved heap-base register for non-Segue SFI strategies.
    pub const HEAP_BASE: Gpr = Gpr::R15;
    /// Frame pointer.
    pub const FRAME: Gpr = Gpr::Rbp;
    /// Return-value register.
    pub const RET: Gpr = Gpr::Rax;
    /// Scratch registers (also the implicit div/shift registers).
    pub const SCRATCH: [Gpr; 3] = [Gpr::Rax, Gpr::Rdx, Gpr::Rcx];
    /// Registers available for the Wasm operand stack.
    pub const OPERAND_POOL: [Gpr; 7] =
        [Gpr::Rbx, Gpr::Rsi, Gpr::Rdi, Gpr::R8, Gpr::R9, Gpr::R10, Gpr::R11];
    /// Registers available for pinning locals, in assignment order. `R15`
    /// is only usable when the strategy does not reserve it.
    pub const LOCAL_POOL: [Gpr; 4] = [Gpr::R12, Gpr::R13, Gpr::R14, Gpr::R15];
}

/// Per-function code-generation statistics (feeds Table 2 and sanity
/// assertions in tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuncStats {
    /// Instructions emitted.
    pub insts: usize,
    /// Code bytes (after encoding).
    pub bytes: usize,
    /// Linear-memory loads emitted.
    pub heap_loads: usize,
    /// Linear-memory stores emitted.
    pub heap_stores: usize,
    /// Extra instructions emitted purely for SFI (truncations, `lea`
    /// materializations forced by the reserved base, bounds checks, masks).
    pub sfi_overhead_insts: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_properties() {
        assert!(!Strategy::Native.reserves_heap_gpr());
        assert!(Strategy::GuardRegion.reserves_heap_gpr());
        assert!(!Strategy::Segue.reserves_heap_gpr());
        assert!(Strategy::SegueLoads.reserves_heap_gpr(), "stores still need the base");
        assert!(Strategy::Segue.segue_loads() && Strategy::Segue.segue_stores());
        assert!(Strategy::SegueLoads.segue_loads() && !Strategy::SegueLoads.segue_stores());
        assert!(Strategy::BoundsCheck.bounds_checks());
        assert!(Strategy::Masking.masks());
        for s in Strategy::ALL {
            assert!(!s.name().is_empty());
        }
    }

    #[test]
    fn declared_safe_matrix_shape() {
        use MitigationLevel as M;
        // Native is never a safe cell.
        for level in M::ALL {
            assert!(!level.declared_safe(Strategy::Native), "{level}");
        }
        // Lfence and IndexMask harden every protected strategy.
        for s in Strategy::ALL.into_iter().filter(|&s| s != Strategy::Native) {
            assert!(M::Lfence.declared_safe(s), "{s}");
            assert!(M::IndexMask.declared_safe(s), "{s}");
        }
        // Unmitigated, only masking survives speculation.
        assert!(M::None.declared_safe(Strategy::Masking));
        assert!(!M::None.declared_safe(Strategy::Segue));
        assert!(!M::None.declared_safe(Strategy::GuardRegion));
        // SLH needs a check to predicate on (or masking's built-in wrap).
        assert!(M::Slh.declared_safe(Strategy::BoundsCheck));
        assert!(M::Slh.declared_safe(Strategy::BoundsCheckSegue));
        assert!(M::Slh.declared_safe(Strategy::Masking));
        assert!(!M::Slh.declared_safe(Strategy::Segue));
        assert!(!M::Slh.declared_safe(Strategy::SegueLoads));
        // Names are stable and distinct (telemetry label contract).
        let names: std::collections::BTreeSet<_> = M::ALL.iter().map(|l| l.name()).collect();
        assert_eq!(names.len(), M::ALL.len());
    }

    #[test]
    fn pools_are_disjoint() {
        use regs::*;
        for o in OPERAND_POOL {
            assert!(!LOCAL_POOL.contains(&o));
            assert!(!SCRATCH.contains(&o));
            assert_ne!(o, FRAME);
            assert_ne!(o, Gpr::Rsp);
        }
        for l in LOCAL_POOL {
            assert!(!SCRATCH.contains(&l));
        }
        assert!(LOCAL_POOL.contains(&HEAP_BASE), "heap base comes out of the local pool");
    }

    #[test]
    fn layouts() {
        let c = MemLayout::classic(0x8000_0000);
        assert_eq!(c.mem_size, 4 << 30);
        let t = MemLayout::small_test();
        assert!(t.heap_base >= u64::from(RuntimeRegions::small_test().stack_top));
    }
}
