//! Stable fingerprints for code-cache keys.
//!
//! A compiled-code cache must key on everything that can change the emitted
//! bytes: the module itself ([`module_hash`]) and every compiler option that
//! influences codegen ([`CompilerConfig::cache_fingerprint`]). The module
//! hash is computed over the canonical WAT printing from `sfi_wasm::print`,
//! which round-trips function bodies, tables, globals and data segments —
//! two modules that print identically compile identically.

use crate::config::CompilerConfig;
use sfi_wasm::Module;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice, continuing from `h`.
pub(crate) fn fnv1a_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A stable 64-bit content hash of a module, computed over its canonical
/// WAT printing. Any semantic difference that survives printing — bodies,
/// signatures, exports, imports, tables, globals, memory limits, data —
/// perturbs the hash.
pub fn module_hash(m: &Module) -> u64 {
    fnv1a_bytes(FNV_OFFSET, sfi_wasm::print::print(m).as_bytes())
}

impl CompilerConfig {
    /// A stable 64-bit fingerprint of every field that influences code
    /// generation. Two configs with equal fingerprints produce identical
    /// code for the same module; any differing field produces a different
    /// fingerprint, so cached code is never reused across strategies,
    /// vectorizer settings, or memory-layout contracts.
    pub fn cache_fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        h = fnv1a_bytes(h, self.strategy.name().as_bytes());
        h = fnv1a_bytes(h, self.opt_level.name().as_bytes());
        h = fnv1a_bytes(h, self.mitigation.name().as_bytes());
        h = fnv1a_bytes(
            h,
            &[
                u8::from(self.vectorize),
                u8::from(self.stack_check),
                u8::from(self.lfi_reserved_regs),
                u8::from(self.segment_entry_protocol),
            ],
        );
        for field in [self.layout.heap_base, self.layout.mem_size, self.layout.guard_size] {
            h = fnv1a_bytes(h, &field.to_le_bytes());
        }
        for field in [
            self.regions.globals_base,
            self.regions.table_base,
            self.regions.header_base,
            self.regions.stack_limit,
            self.regions.stack_top,
        ] {
            h = fnv1a_bytes(h, &field.to_le_bytes());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Strategy;
    use sfi_wasm::wat;

    #[test]
    fn module_hash_is_stable_and_content_sensitive() {
        let a = wat::parse("(module (memory 1) (func (export \"f\") (result i32) i32.const 1))")
            .unwrap();
        let a2 = wat::parse("(module (memory 1) (func (export \"f\") (result i32) i32.const 1))")
            .unwrap();
        let b = wat::parse("(module (memory 1) (func (export \"f\") (result i32) i32.const 2))")
            .unwrap();
        assert_eq!(module_hash(&a), module_hash(&a2), "same source, same hash");
        assert_ne!(module_hash(&a), module_hash(&b), "different body, different hash");
    }

    #[test]
    fn config_fingerprint_separates_strategy_and_flags() {
        let base = CompilerConfig::for_strategy(Strategy::Segue);
        let fp = base.cache_fingerprint();
        assert_eq!(fp, base.cache_fingerprint(), "stable");

        for s in Strategy::ALL {
            if s != Strategy::Segue {
                assert_ne!(
                    fp,
                    CompilerConfig::for_strategy(s).cache_fingerprint(),
                    "strategy {s} must not collide with segue"
                );
            }
        }

        let mut c = base.clone();
        c.vectorize = true;
        assert_ne!(fp, c.cache_fingerprint(), "vectorize flag");

        let mut c = base.clone();
        c.stack_check = !c.stack_check;
        assert_ne!(fp, c.cache_fingerprint(), "stack_check flag");

        let mut c = base.clone();
        c.layout.mem_size *= 2;
        assert_ne!(fp, c.cache_fingerprint(), "memory layout");

        let mut c = base.clone();
        c.regions.stack_top += 0x1000;
        assert_ne!(fp, c.cache_fingerprint(), "runtime regions");

        let mut c = base.clone();
        c.segment_entry_protocol = true;
        assert_ne!(fp, c.cache_fingerprint(), "segment entry protocol");

        // Each mitigation level is its own cache key: hardened code must
        // never be served under an unhardened lookup or vice versa.
        let mut seen = std::collections::BTreeSet::new();
        for level in crate::MitigationLevel::ALL {
            assert!(
                seen.insert(base.clone().mitigated(level).cache_fingerprint()),
                "mitigation level {level} must perturb the fingerprint"
            );
        }
        assert!(seen.contains(&fp), "None level matches the base config");

        // The tier is part of the key: promoted (optimized) code must never
        // be served under a baseline lookup or vice versa.
        let opt = base.optimized();
        assert_ne!(fp, opt.cache_fingerprint(), "opt level");
        assert_eq!(opt.cache_fingerprint(), opt.clone().cache_fingerprint(), "stable");
    }
}
