//! The WAMR-style store-vectorization pass (§4.2 of the paper).
//!
//! WAMR's AOT compiler includes platform-tuned passes that turn long
//! scalar load/store sequences into SIMD operations. Those passes pattern-
//! match plain addressing modes; when Segue turns *stores* into
//! `gs:`-prefixed accesses the pattern no longer matches and the code stays
//! scalar — the memmove/sieve regressions in Figure 4. Segue-for-loads-only
//! keeps the store side vectorizable, which is why the paper's
//! "Segue on Loads" configuration shows no slowdowns.
//!
//! The pass runs over emitted code and rewrites the canonical unrolled-copy
//! shape
//!
//! ```text
//! mov r, [A+0] ; mov [B+0], r ; mov r, [A+8] ; mov [B+8], r
//! ```
//!
//! into a 128-bit `movdqu` pair (the two replaced scalar ops become `nop`s
//! so instruction indices — and therefore labels — stay stable).

use sfi_x86::{Inst, Mem, Program, Width, Xmm};

use crate::config::Strategy;

/// Statistics from a vectorization run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VecStats {
    /// Copy pairs merged into `movdqu` load/store pairs.
    pub merged_pairs: usize,
    /// Candidate pairs rejected because the store carried a segment prefix
    /// (the Segue interaction).
    pub rejected_segment_stores: usize,
}

/// Runs the pass in place; returns statistics.
pub fn vectorize(p: &mut Program, _strategy: Strategy) -> VecStats {
    let mut stats = VecStats::default();
    let insts = p.insts_mut();
    let mut i = 0;
    while i + 3 < insts.len() {
        let window: [Inst; 4] = [insts[i], insts[i + 1], insts[i + 2], insts[i + 3]];
        if let Some((load_mem, store_mem, seg_store)) = match_copy_pair(&window) {
            if seg_store {
                // WAMR's pattern-matcher does not recognize segment-prefixed
                // stores: the pair stays scalar.
                stats.rejected_segment_stores += 1;
                i += 4;
                continue;
            }
            insts[i] = Inst::MovdquLoad { dst: Xmm(0), mem: load_mem };
            insts[i + 1] = Inst::MovdquStore { src: Xmm(0), mem: store_mem };
            insts[i + 2] = Inst::Nop;
            insts[i + 3] = Inst::Nop;
            stats.merged_pairs += 1;
            i += 4;
            continue;
        }
        i += 1;
    }
    stats
}

/// Matches `load r,[A] ; store [B],r ; load r,[A+8] ; store [B+8],r` with
/// 8-byte widths. Returns (load mem, store mem, store-had-segment).
fn match_copy_pair(w: &[Inst; 4]) -> Option<(Mem, Mem, bool)> {
    let (d1, la, s1, sa) = match (w[0], w[1]) {
        (
            Inst::Load { dst, mem: la, width: Width::Q },
            Inst::Store { src, mem: sa, width: Width::Q },
        ) if dst == src => (dst, la, src, sa),
        _ => return None,
    };
    let (d2, lb, s2, sb) = match (w[2], w[3]) {
        (
            Inst::Load { dst, mem: lb, width: Width::Q },
            Inst::Store { src, mem: sb, width: Width::Q },
        ) if dst == src => (dst, lb, src, sb),
        _ => return None,
    };
    if d1 != d2 || s1 != s2 {
        return None;
    }
    if !consecutive(&la, &lb) || !consecutive(&sa, &sb) {
        return None;
    }
    // Loads with a segment prefix are recognized (WAMR handles the read
    // side); stores with one are not.
    Some((la, sa, sa.seg.is_some()))
}

/// Same base/index/segment, displacement exactly 8 apart.
fn consecutive(a: &Mem, b: &Mem) -> bool {
    a.base == b.base
        && a.index == b.index
        && a.seg == b.seg
        && a.addr32 == b.addr32
        && b.disp == a.disp + 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfi_x86::{Gpr, Seg};

    fn copy_pair(seg_loads: bool, seg_stores: bool) -> Program {
        let mut p = Program::new();
        let lmem = |d| {
            let m = Mem::base_disp(Gpr::Rsi, d);
            if seg_loads {
                m.with_seg(Seg::Gs)
            } else {
                m
            }
        };
        let smem = |d| {
            let m = Mem::base_disp(Gpr::Rdi, d);
            if seg_stores {
                m.with_seg(Seg::Gs)
            } else {
                m
            }
        };
        p.push(Inst::Load { dst: Gpr::Rax, mem: lmem(0), width: Width::Q });
        p.push(Inst::Store { src: Gpr::Rax, mem: smem(0), width: Width::Q });
        p.push(Inst::Load { dst: Gpr::Rax, mem: lmem(8), width: Width::Q });
        p.push(Inst::Store { src: Gpr::Rax, mem: smem(8), width: Width::Q });
        p.push(Inst::Ret);
        p
    }

    #[test]
    fn plain_copy_pair_vectorizes() {
        let mut p = copy_pair(false, false);
        let stats = vectorize(&mut p, Strategy::GuardRegion);
        assert_eq!(stats.merged_pairs, 1);
        assert!(matches!(p.insts()[0], Inst::MovdquLoad { .. }));
        assert!(matches!(p.insts()[1], Inst::MovdquStore { .. }));
        assert_eq!(p.insts()[2], Inst::Nop);
        assert_eq!(p.insts()[3], Inst::Nop);
    }

    #[test]
    fn segment_loads_still_vectorize() {
        // Segue-on-loads keeps the store side plain → still vectorizable.
        let mut p = copy_pair(true, false);
        let stats = vectorize(&mut p, Strategy::SegueLoads);
        assert_eq!(stats.merged_pairs, 1);
        assert_eq!(stats.rejected_segment_stores, 0);
    }

    #[test]
    fn segment_stores_break_the_pattern() {
        // Full Segue prefixes the stores → the pass bails (Figure 4).
        let mut p = copy_pair(true, true);
        let stats = vectorize(&mut p, Strategy::Segue);
        assert_eq!(stats.merged_pairs, 0);
        assert_eq!(stats.rejected_segment_stores, 1);
        assert!(matches!(p.insts()[0], Inst::Load { .. }), "stays scalar");
    }

    #[test]
    fn non_consecutive_not_merged() {
        let mut p = Program::new();
        p.push(Inst::Load { dst: Gpr::Rax, mem: Mem::base_disp(Gpr::Rsi, 0), width: Width::Q });
        p.push(Inst::Store { src: Gpr::Rax, mem: Mem::base_disp(Gpr::Rdi, 0), width: Width::Q });
        p.push(Inst::Load { dst: Gpr::Rax, mem: Mem::base_disp(Gpr::Rsi, 16), width: Width::Q });
        p.push(Inst::Store { src: Gpr::Rax, mem: Mem::base_disp(Gpr::Rdi, 16), width: Width::Q });
        let stats = vectorize(&mut p, Strategy::GuardRegion);
        assert_eq!(stats.merged_pairs, 0);
    }

    #[test]
    fn instruction_count_is_stable() {
        // Labels index instructions; the pass must never change the count.
        let mut p = copy_pair(false, false);
        let before = p.len();
        vectorize(&mut p, Strategy::GuardRegion);
        assert_eq!(p.len(), before);
    }

    #[test]
    fn mixed_width_not_merged() {
        let mut p = Program::new();
        p.push(Inst::Load { dst: Gpr::Rax, mem: Mem::base_disp(Gpr::Rsi, 0), width: Width::D });
        p.push(Inst::Store { src: Gpr::Rax, mem: Mem::base_disp(Gpr::Rdi, 0), width: Width::D });
        p.push(Inst::Load { dst: Gpr::Rax, mem: Mem::base_disp(Gpr::Rsi, 8), width: Width::D });
        p.push(Inst::Store { src: Gpr::Rax, mem: Mem::base_disp(Gpr::Rdi, 8), width: Width::D });
        assert_eq!(vectorize(&mut p, Strategy::GuardRegion).merged_pairs, 0);
    }
}
