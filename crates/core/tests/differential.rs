//! Property-based differential testing: every SFI strategy must agree with
//! the reference interpreter on randomly generated programs.
//!
//! Programs are valid by construction: expressions are built as trees that
//! leave exactly one value on the stack, statements are stores/local-writes,
//! and the only loop is a bounded counted loop. Addresses are masked into
//! the first page so every strategy (including `Native`, which assumes
//! wrap-free address arithmetic) sees in-bounds accesses.

use proptest::prelude::*;
use sfi_core::harness::differential_check;
use sfi_wasm::{validate, FuncBuilder, Module, Op, ValType};

/// A random i32 expression over two i32 params (locals 0, 1) and two i32
/// scratch locals (2, 3).
#[derive(Debug, Clone)]
enum Expr {
    Const(i32),
    Local(u32),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Shl(Box<Expr>, u8),
    ShrU(Box<Expr>, u8),
    DivU(Box<Expr>, Box<Expr>),
    RemS(Box<Expr>, Box<Expr>),
    Eq(Box<Expr>, Box<Expr>),
    LtU(Box<Expr>, Box<Expr>),
    GeS(Box<Expr>, Box<Expr>),
    Eqz(Box<Expr>),
    Select(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Load from `(e & 0xFFC)`.
    Load(Box<Expr>),
    /// Load byte from `(e & 0xFFF)` with a static offset.
    Load8(Box<Expr>, u32),
    /// i64 round-trip: extend, multiply, wrap.
    Via64(Box<Expr>, Box<Expr>),
}

impl Expr {
    fn emit(&self, out: &mut Vec<Op>) {
        match self {
            Expr::Const(v) => out.push(Op::I32Const(*v)),
            Expr::Local(l) => out.push(Op::LocalGet(*l)),
            Expr::Add(a, b) => Self::bin(out, a, b, Op::I32Add),
            Expr::Sub(a, b) => Self::bin(out, a, b, Op::I32Sub),
            Expr::Mul(a, b) => Self::bin(out, a, b, Op::I32Mul),
            Expr::And(a, b) => Self::bin(out, a, b, Op::I32And),
            Expr::Or(a, b) => Self::bin(out, a, b, Op::I32Or),
            Expr::Xor(a, b) => Self::bin(out, a, b, Op::I32Xor),
            Expr::Shl(a, k) => {
                a.emit(out);
                out.push(Op::I32Const(i32::from(*k)));
                out.push(Op::I32Shl);
            }
            Expr::ShrU(a, k) => {
                a.emit(out);
                out.push(Op::I32Const(i32::from(*k)));
                out.push(Op::I32ShrU);
            }
            Expr::DivU(a, b) => {
                // Guard against /0 by or-ing 1 into the divisor.
                a.emit(out);
                b.emit(out);
                out.push(Op::I32Const(1));
                out.push(Op::I32Or);
                out.push(Op::I32DivU);
            }
            Expr::RemS(a, b) => {
                a.emit(out);
                b.emit(out);
                out.push(Op::I32Const(1));
                out.push(Op::I32Or);
                out.push(Op::I32RemS);
            }
            Expr::Eq(a, b) => Self::bin(out, a, b, Op::I32Eq),
            Expr::LtU(a, b) => Self::bin(out, a, b, Op::I32LtU),
            Expr::GeS(a, b) => Self::bin(out, a, b, Op::I32GeS),
            Expr::Eqz(a) => {
                a.emit(out);
                out.push(Op::I32Eqz);
            }
            Expr::Select(c, a, b) => {
                a.emit(out);
                b.emit(out);
                c.emit(out);
                out.push(Op::Select);
            }
            Expr::Load(a) => {
                a.emit(out);
                out.push(Op::I32Const(0xFFC));
                out.push(Op::I32And);
                out.push(Op::I32Load { offset: 0 });
            }
            Expr::Load8(a, off) => {
                a.emit(out);
                out.push(Op::I32Const(0xFFF));
                out.push(Op::I32And);
                out.push(Op::I32Load8U { offset: *off });
            }
            Expr::Via64(a, b) => {
                a.emit(out);
                out.push(Op::I64ExtendI32U);
                b.emit(out);
                out.push(Op::I64ExtendI32S);
                out.push(Op::I64Mul);
                out.push(Op::I32WrapI64);
            }
        }
    }

    fn bin(out: &mut Vec<Op>, a: &Expr, b: &Expr, op: Op) {
        a.emit(out);
        b.emit(out);
        out.push(op);
    }
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<i32>().prop_map(Expr::Const),
        (0u32..4).prop_map(Expr::Local),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(a.into(), b.into())),
            (inner.clone(), 0u8..32).prop_map(|(a, k)| Expr::Shl(a.into(), k)),
            (inner.clone(), 0u8..32).prop_map(|(a, k)| Expr::ShrU(a.into(), k)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::DivU(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::RemS(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Eq(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::LtU(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::GeS(a.into(), b.into())),
            inner.clone().prop_map(|a| Expr::Eqz(a.into())),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, a, b)| Expr::Select(c.into(), a.into(), b.into())),
            inner.clone().prop_map(|a| Expr::Load(a.into())),
            (inner.clone(), 0u32..64).prop_map(|(a, o)| Expr::Load8(a.into(), o)),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Via64(a.into(), b.into())),
        ]
    })
}

/// A statement: a store, a local write, or a bounded loop accumulating into
/// a scratch local.
#[derive(Debug, Clone)]
enum Stmt {
    Store(Expr, Expr),
    Store8(Expr, Expr),
    SetLocal(u32, Expr),
    IfElse(Expr, Box<Stmt>, Box<Stmt>),
    /// `for i in 0..n { local3 += body }`, n ≤ 16, using local 2 as counter.
    CountedLoop(u8, Expr),
}

impl Stmt {
    fn emit(&self, out: &mut Vec<Op>) {
        match self {
            Stmt::Store(addr, val) => {
                addr.emit(out);
                out.push(Op::I32Const(0xFFC));
                out.push(Op::I32And);
                val.emit(out);
                out.push(Op::I32Store { offset: 0 });
            }
            Stmt::Store8(addr, val) => {
                addr.emit(out);
                out.push(Op::I32Const(0xFFF));
                out.push(Op::I32And);
                val.emit(out);
                out.push(Op::I32Store8 { offset: 0 });
            }
            Stmt::SetLocal(l, e) => {
                e.emit(out);
                out.push(Op::LocalSet(*l));
            }
            Stmt::IfElse(c, t, f) => {
                c.emit(out);
                out.push(Op::If);
                t.emit(out);
                out.push(Op::Else);
                f.emit(out);
                out.push(Op::End);
            }
            Stmt::CountedLoop(n, body) => {
                // local2 = n; loop { if local2 == 0 br 1; local3 += body;
                // local2 -= 1; br 0 }
                out.push(Op::I32Const(i32::from(*n)));
                out.push(Op::LocalSet(2));
                out.push(Op::Block);
                out.push(Op::Loop);
                out.push(Op::LocalGet(2));
                out.push(Op::I32Eqz);
                out.push(Op::BrIf(1));
                out.push(Op::LocalGet(3));
                body.emit(out);
                out.push(Op::I32Add);
                out.push(Op::LocalSet(3));
                out.push(Op::LocalGet(2));
                out.push(Op::I32Const(1));
                out.push(Op::I32Sub);
                out.push(Op::LocalSet(2));
                out.push(Op::Br(0));
                out.push(Op::End);
                out.push(Op::End);
            }
        }
    }
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let e = expr_strategy;
    let simple = prop_oneof![
        (e(), e()).prop_map(|(a, v)| Stmt::Store(a, v)),
        (e(), e()).prop_map(|(a, v)| Stmt::Store8(a, v)),
        (2u32..4, e()).prop_map(|(l, v)| Stmt::SetLocal(l, v)),
        (1u8..12, e()).prop_map(|(n, b)| Stmt::CountedLoop(n, b)),
    ];
    simple.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (expr_strategy(), inner.clone(), inner)
                .prop_map(|(c, t, f)| Stmt::IfElse(c, t.into(), f.into())),
        ]
    })
}

fn build_module(stmts: &[Stmt], result: &Expr) -> Module {
    let mut body = Vec::new();
    for s in stmts {
        s.emit(&mut body);
    }
    result.emit(&mut body);
    let mut m = Module::new(1);
    let f = FuncBuilder::new("f")
        .params(&[ValType::I32, ValType::I32])
        .result(ValType::I32)
        .locals(&[ValType::I32, ValType::I32])
        .body(body)
        .build();
    let idx = m.push_func(f);
    m.export("f", idx);
    m
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn compiled_strategies_match_interpreter(
        stmts in proptest::collection::vec(stmt_strategy(), 0..5),
        result in expr_strategy(),
        a in any::<u32>(),
        b in any::<u32>(),
    ) {
        let m = build_module(&stmts, &result);
        prop_assert!(validate(&m).is_ok(), "generator must produce valid modules");
        differential_check(&m, "f", &[u64::from(a), u64::from(b)]);
    }

    #[test]
    fn pure_expressions_match(
        result in expr_strategy(),
        a in any::<u32>(),
        b in any::<u32>(),
    ) {
        let m = build_module(&[], &result);
        prop_assert!(validate(&m).is_ok());
        differential_check(&m, "f", &[u64::from(a), u64::from(b)]);
    }
}
