//! The mini-Wasm instruction set.

/// A value type. The subset is integer-only (see crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ValType {
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
}

impl core::fmt::Display for ValType {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            ValType::I32 => "i32",
            ValType::I64 => "i64",
        })
    }
}

/// One mini-Wasm instruction.
///
/// Structured control flow follows Wasm exactly: [`Op::Block`], [`Op::Loop`]
/// and [`Op::If`] open frames closed by [`Op::End`]; [`Op::Br`]/[`Op::BrIf`]
/// target a relative nesting depth. Memory instructions carry the static
/// `offset` immediate that Wasm adds to the 32-bit dynamic address — the
/// 33-bit sum is exactly what guard regions (and Segue's addressing) must
/// accommodate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Op {
    // ---- constants / locals / globals ----
    I32Const(i32),
    I64Const(i64),
    LocalGet(u32),
    LocalSet(u32),
    LocalTee(u32),
    GlobalGet(u32),
    GlobalSet(u32),
    Drop,
    /// `select`: pops cond (i32), b, a; pushes `cond != 0 ? a : b`.
    Select,

    // ---- i32 arithmetic ----
    I32Add,
    I32Sub,
    I32Mul,
    I32DivS,
    I32DivU,
    I32RemS,
    I32RemU,
    I32And,
    I32Or,
    I32Xor,
    I32Shl,
    I32ShrS,
    I32ShrU,
    I32Rotl,
    I32Rotr,

    // ---- i32 comparisons (push i32 0/1) ----
    I32Eqz,
    I32Eq,
    I32Ne,
    I32LtS,
    I32LtU,
    I32GtS,
    I32GtU,
    I32LeS,
    I32LeU,
    I32GeS,
    I32GeU,

    // ---- i64 arithmetic ----
    I64Add,
    I64Sub,
    I64Mul,
    I64DivS,
    I64DivU,
    I64RemS,
    I64RemU,
    I64And,
    I64Or,
    I64Xor,
    I64Shl,
    I64ShrS,
    I64ShrU,

    // ---- i64 comparisons ----
    I64Eqz,
    I64Eq,
    I64Ne,
    I64LtS,
    I64LtU,
    I64GtS,
    I64GtU,
    I64LeS,
    I64LeU,
    I64GeS,
    I64GeU,

    // ---- conversions ----
    I32WrapI64,
    I64ExtendI32S,
    I64ExtendI32U,

    // ---- memory ----
    I32Load { offset: u32 },
    I64Load { offset: u32 },
    I32Load8U { offset: u32 },
    I32Load8S { offset: u32 },
    I32Load16U { offset: u32 },
    I32Load16S { offset: u32 },
    I32Store { offset: u32 },
    I64Store { offset: u32 },
    I32Store8 { offset: u32 },
    I32Store16 { offset: u32 },
    /// `memory.size` (in 64 KiB pages).
    MemorySize,
    /// `memory.grow`: pops delta pages, pushes old size or -1.
    MemoryGrow,
    /// `memory.copy`: pops len, src, dst (all i32).
    MemoryCopy,
    /// `memory.fill`: pops len, byte value, dst (all i32).
    MemoryFill,

    // ---- control flow ----
    /// Opens a block; branches to it jump *past* its `End`.
    Block,
    /// Opens a loop; branches to it jump back to its start.
    Loop,
    /// Pops an i32 condition; opens a conditional frame.
    If,
    Else,
    End,
    /// Branch to the frame `depth` levels out.
    Br(u32),
    /// Conditional branch (pops an i32).
    BrIf(u32),
    /// Pops an i32 selector; branches to `targets[sel]` or the default.
    BrTable { targets: Vec<u32>, default: u32 },
    Return,
    /// Direct call by function index.
    Call(u32),
    /// Indirect call through the table; immediate is the expected type
    /// (function index whose signature must match, as a simplification of
    /// Wasm's type-section indices). Pops the i32 table index.
    CallIndirect { type_func: u32 },
    Unreachable,
    Nop,
}

impl Op {
    /// Whether this opcode is a memory load.
    pub fn is_load(&self) -> bool {
        matches!(
            self,
            Op::I32Load { .. }
                | Op::I64Load { .. }
                | Op::I32Load8U { .. }
                | Op::I32Load8S { .. }
                | Op::I32Load16U { .. }
                | Op::I32Load16S { .. }
        )
    }

    /// Whether this opcode is a memory store.
    pub fn is_store(&self) -> bool {
        matches!(
            self,
            Op::I32Store { .. } | Op::I64Store { .. } | Op::I32Store8 { .. } | Op::I32Store16 { .. }
        )
    }

    /// The static offset immediate of a load/store, if any.
    pub fn mem_offset(&self) -> Option<u32> {
        match *self {
            Op::I32Load { offset }
            | Op::I64Load { offset }
            | Op::I32Load8U { offset }
            | Op::I32Load8S { offset }
            | Op::I32Load16U { offset }
            | Op::I32Load16S { offset }
            | Op::I32Store { offset }
            | Op::I64Store { offset }
            | Op::I32Store8 { offset }
            | Op::I32Store16 { offset } => Some(offset),
            _ => None,
        }
    }

    /// Access width in bytes for loads/stores.
    pub fn mem_width(&self) -> Option<u32> {
        match self {
            Op::I32Load8U { .. } | Op::I32Load8S { .. } | Op::I32Store8 { .. } => Some(1),
            Op::I32Load16U { .. } | Op::I32Load16S { .. } | Op::I32Store16 { .. } => Some(2),
            Op::I32Load { .. } | Op::I32Store { .. } => Some(4),
            Op::I64Load { .. } | Op::I64Store { .. } => Some(8),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_memory_ops() {
        assert!(Op::I32Load { offset: 0 }.is_load());
        assert!(Op::I64Store { offset: 8 }.is_store());
        assert!(!Op::I32Add.is_load());
        assert_eq!(Op::I32Load16U { offset: 6 }.mem_offset(), Some(6));
        assert_eq!(Op::I32Load16U { offset: 6 }.mem_width(), Some(2));
        assert_eq!(Op::I64Load { offset: 0 }.mem_width(), Some(8));
        assert_eq!(Op::I32Add.mem_width(), None);
    }

    #[test]
    fn valtype_display() {
        assert_eq!(ValType::I32.to_string(), "i32");
        assert_eq!(ValType::I64.to_string(), "i64");
    }
}
