//! Modules, functions and globals.

use std::collections::BTreeMap;

use crate::{Op, ValType};

/// Wasm's linear-memory page size (64 KiB).
pub const PAGE_SIZE: u64 = 65536;

/// A function: signature, locals and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Func {
    /// Debug name.
    pub name: String,
    /// Parameter types (parameters are locals `0..params.len()`).
    pub params: Vec<ValType>,
    /// Result type (mini-Wasm allows at most one).
    pub result: Option<ValType>,
    /// Additional local variables (indices continue after the parameters).
    pub locals: Vec<ValType>,
    /// The body; must be terminated by [`Op::End`].
    pub body: Vec<Op>,
}

impl Func {
    /// Total local count (parameters + declared locals).
    pub fn local_count(&self) -> u32 {
        (self.params.len() + self.locals.len()) as u32
    }

    /// The type of local `i` (parameter or declared local).
    pub fn local_type(&self, i: u32) -> Option<ValType> {
        let i = i as usize;
        self.params.get(i).or_else(|| self.locals.get(i - self.params.len().min(i))).copied()
    }

    /// Whether `other` has the same signature.
    pub fn same_signature(&self, other: &Func) -> bool {
        self.params == other.params && self.result == other.result
    }
}

/// A builder for [`Func`].
///
/// ```
/// use sfi_wasm::{FuncBuilder, Op, ValType};
/// let f = FuncBuilder::new("double")
///     .params(&[ValType::I32])
///     .result(ValType::I32)
///     .locals(&[ValType::I32])
///     .body(vec![Op::LocalGet(0), Op::I32Const(2), Op::I32Mul, Op::End])
///     .build();
/// assert_eq!(f.local_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct FuncBuilder {
    func: Func,
}

impl FuncBuilder {
    /// Starts a function named `name` with no parameters or result.
    pub fn new(name: impl Into<String>) -> FuncBuilder {
        FuncBuilder {
            func: Func {
                name: name.into(),
                params: Vec::new(),
                result: None,
                locals: Vec::new(),
                body: Vec::new(),
            },
        }
    }

    /// Sets the parameter types.
    #[must_use]
    pub fn params(mut self, params: &[ValType]) -> Self {
        self.func.params = params.to_vec();
        self
    }

    /// Sets the result type.
    #[must_use]
    pub fn result(mut self, ty: ValType) -> Self {
        self.func.result = Some(ty);
        self
    }

    /// Declares extra locals.
    #[must_use]
    pub fn locals(mut self, locals: &[ValType]) -> Self {
        self.func.locals = locals.to_vec();
        self
    }

    /// Sets the body. An [`Op::End`] terminator is appended if missing.
    #[must_use]
    pub fn body(mut self, body: Vec<Op>) -> Self {
        self.func.body = body;
        self
    }

    /// Finishes the function.
    pub fn build(mut self) -> Func {
        if self.func.body.last() != Some(&Op::End) {
            self.func.body.push(Op::End);
        }
        self.func
    }
}

/// A module global.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Value type.
    pub ty: ValType,
    /// Whether the global may be written.
    pub mutable: bool,
    /// Initial value (reinterpreted at `ty`).
    pub init: u64,
}

/// An imported (host) function signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostImport {
    /// Debug name (e.g. `"wasi.clock_time_get"`).
    pub name: String,
    /// Parameter types.
    pub params: Vec<ValType>,
    /// Result type.
    pub result: Option<ValType>,
}

/// A mini-Wasm module.
///
/// Function index space: host imports come first (`0..imports.len()`),
/// followed by the module's own functions — matching Wasm's convention.
#[derive(Debug, Clone, Default)]
pub struct Module {
    /// Host imports (function index space `0..imports.len()`).
    pub imports: Vec<HostImport>,
    /// Module-defined functions.
    pub funcs: Vec<Func>,
    /// Globals.
    pub globals: Vec<Global>,
    /// Initial linear-memory size in pages.
    pub mem_min_pages: u32,
    /// Optional maximum memory size in pages.
    pub mem_max_pages: Option<u32>,
    /// Function table (for `call_indirect`): entries are function indices.
    pub table: Vec<u32>,
    /// Exported functions: name → function index.
    pub exports: BTreeMap<String, u32>,
    /// Data segments: (offset, bytes) copied into memory at instantiation.
    pub data: Vec<(u32, Vec<u8>)>,
}

impl Module {
    /// Creates a module with `mem_pages` pages of linear memory.
    pub fn new(mem_pages: u32) -> Module {
        Module { mem_min_pages: mem_pages, ..Module::default() }
    }

    /// Appends a function, returning its index in the function index space.
    pub fn push_func(&mut self, func: Func) -> u32 {
        self.funcs.push(func);
        (self.imports.len() + self.funcs.len() - 1) as u32
    }

    /// Declares a host import, returning its function index.
    ///
    /// # Panics
    ///
    /// Panics if any module function was already added (imports must come
    /// first in the index space).
    pub fn push_import(&mut self, import: HostImport) -> u32 {
        assert!(self.funcs.is_empty(), "imports must be declared before functions");
        self.imports.push(import);
        (self.imports.len() - 1) as u32
    }

    /// Exports function `idx` under `name`.
    pub fn export(&mut self, name: impl Into<String>, idx: u32) {
        self.exports.insert(name.into(), idx);
    }

    /// Looks up an exported function index.
    pub fn export_index(&self, name: &str) -> Option<u32> {
        self.exports.get(name).copied()
    }

    /// Appends a global, returning its index.
    pub fn push_global(&mut self, g: Global) -> u32 {
        self.globals.push(g);
        (self.globals.len() - 1) as u32
    }

    /// Appends a table entry, returning the table slot.
    pub fn push_table_entry(&mut self, func_idx: u32) -> u32 {
        self.table.push(func_idx);
        (self.table.len() - 1) as u32
    }

    /// Adds a data segment.
    pub fn push_data(&mut self, offset: u32, bytes: Vec<u8>) {
        self.data.push((offset, bytes));
    }

    /// Number of functions in the index space (imports + defined).
    pub fn func_space_len(&self) -> u32 {
        (self.imports.len() + self.funcs.len()) as u32
    }

    /// Resolves a function index to a defined function (None for imports or
    /// out-of-range indices).
    pub fn defined_func(&self, idx: u32) -> Option<&Func> {
        let i = (idx as usize).checked_sub(self.imports.len())?;
        self.funcs.get(i)
    }

    /// Whether `idx` refers to a host import.
    pub fn is_import(&self, idx: u32) -> bool {
        (idx as usize) < self.imports.len()
    }

    /// Signature of any function in the index space: `(params, result)`.
    pub fn signature(&self, idx: u32) -> Option<(&[ValType], Option<ValType>)> {
        if let Some(imp) = self.imports.get(idx as usize) {
            return Some((&imp.params, imp.result));
        }
        self.defined_func(idx).map(|f| (&f.params[..], f.result))
    }

    /// Initial linear-memory size in bytes.
    pub fn mem_min_bytes(&self) -> u64 {
        u64::from(self.mem_min_pages) * PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nop_func(name: &str) -> Func {
        FuncBuilder::new(name).body(vec![Op::End]).build()
    }

    #[test]
    fn builder_appends_end() {
        let f = FuncBuilder::new("f").body(vec![Op::Nop]).build();
        assert_eq!(f.body.last(), Some(&Op::End));
        let g = FuncBuilder::new("g").body(vec![Op::End]).build();
        assert_eq!(g.body.len(), 1);
    }

    #[test]
    fn import_and_func_index_space() {
        let mut m = Module::new(1);
        let imp = m.push_import(HostImport {
            name: "host.log".into(),
            params: vec![ValType::I32],
            result: None,
        });
        assert_eq!(imp, 0);
        let f = m.push_func(nop_func("f"));
        assert_eq!(f, 1);
        assert!(m.is_import(0));
        assert!(!m.is_import(1));
        assert!(m.defined_func(0).is_none());
        assert_eq!(m.defined_func(1).unwrap().name, "f");
        assert_eq!(m.func_space_len(), 2);
    }

    #[test]
    #[should_panic(expected = "imports must be declared before functions")]
    fn imports_after_funcs_panic() {
        let mut m = Module::new(1);
        m.push_func(nop_func("f"));
        m.push_import(HostImport { name: "x".into(), params: vec![], result: None });
    }

    #[test]
    fn exports_resolve() {
        let mut m = Module::new(1);
        let f = m.push_func(nop_func("f"));
        m.export("entry", f);
        assert_eq!(m.export_index("entry"), Some(f));
        assert_eq!(m.export_index("missing"), None);
    }

    #[test]
    fn local_types_span_params_and_locals() {
        let f = FuncBuilder::new("f")
            .params(&[ValType::I32, ValType::I64])
            .locals(&[ValType::I32])
            .body(vec![Op::End])
            .build();
        assert_eq!(f.local_type(0), Some(ValType::I32));
        assert_eq!(f.local_type(1), Some(ValType::I64));
        assert_eq!(f.local_type(2), Some(ValType::I32));
        assert_eq!(f.local_type(3), None);
    }

    #[test]
    fn signatures() {
        let mut m = Module::new(1);
        let f = m.push_func(
            FuncBuilder::new("f")
                .params(&[ValType::I32])
                .result(ValType::I64)
                .body(vec![Op::I64Const(0), Op::End])
                .build(),
        );
        let (p, r) = m.signature(f).unwrap();
        assert_eq!(p, &[ValType::I32]);
        assert_eq!(r, Some(ValType::I64));
        assert!(m.signature(9).is_none());
    }
}
