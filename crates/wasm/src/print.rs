//! Pretty-printing modules back to WAT.
//!
//! The inverse of [`crate::wat::parse`] (for the supported subset):
//! `parse(print(m))` yields a module with identical structure and
//! behaviour. Useful for golden tests, debugging generated corpora, and the
//! round-trip property tests in `tests/`.

use core::fmt::Write as _;

use crate::{Func, Module, Op, ValType};

/// Renders `module` as WAT text.
pub fn print(module: &Module) -> String {
    let mut out = String::from("(module\n");
    if module.mem_min_pages > 0 || module.mem_max_pages.is_some() {
        match module.mem_max_pages {
            Some(max) => {
                let _ = writeln!(out, "  (memory {} {})", module.mem_min_pages, max);
            }
            None => {
                let _ = writeln!(out, "  (memory {})", module.mem_min_pages);
            }
        }
    }
    for (i, g) in module.globals.iter().enumerate() {
        let init = match g.ty {
            ValType::I32 => format!("(i32.const {})", g.init as u32 as i32),
            ValType::I64 => format!("(i64.const {})", g.init as i64),
        };
        if g.mutable {
            let _ = writeln!(out, "  (global $g{i} (mut {}) {init})", g.ty);
        } else {
            let _ = writeln!(out, "  (global $g{i} {} {init})", g.ty);
        }
    }
    for func in &module.funcs {
        print_func(&mut out, module, func);
    }
    if !module.table.is_empty() {
        let elems: Vec<String> =
            module.table.iter().map(|&f| format!("{f}")).collect();
        let _ = writeln!(out, "  (table funcref (elem {}))", elems.join(" "));
    }
    for (name, idx) in &module.exports {
        let _ = writeln!(out, "  (export \"{name}\" (func {idx}))");
    }
    for (offset, bytes) in &module.data {
        let mut lit = String::new();
        for &b in bytes {
            if (0x20..0x7F).contains(&b) && b != b'"' && b != b'\\' {
                lit.push(b as char);
            } else {
                let _ = write!(lit, "\\{b:02x}");
            }
        }
        let _ = writeln!(out, "  (data (i32.const {offset}) \"{lit}\")");
    }
    out.push_str(")\n");
    out
}

fn print_func(out: &mut String, module: &Module, func: &Func) {
    let _ = write!(out, "  (func");
    for p in &func.params {
        let _ = write!(out, " (param {p})");
    }
    if let Some(r) = func.result {
        let _ = write!(out, " (result {r})");
    }
    for l in &func.locals {
        let _ = write!(out, " (local {l})");
    }
    out.push('\n');
    let mut depth = 2usize;
    // The builder-supplied final End closes the function: skip printing it
    // (the parser re-adds it).
    let body = &func.body[..func.body.len().saturating_sub(1)];
    for op in body {
        if matches!(op, Op::End | Op::Else) {
            depth = depth.saturating_sub(1);
        }
        for _ in 0..depth {
            out.push_str("  ");
        }
        let _ = writeln!(out, "{}", render_op(module, op));
        if matches!(op, Op::Block | Op::Loop | Op::If | Op::Else) {
            depth += 1;
        }
    }
    out.push_str("  )\n");
}

fn render_op(_module: &Module, op: &Op) -> String {
    use Op::*;
    match op {
        I32Const(v) => format!("i32.const {v}"),
        I64Const(v) => format!("i64.const {v}"),
        LocalGet(i) => format!("local.get {i}"),
        LocalSet(i) => format!("local.set {i}"),
        LocalTee(i) => format!("local.tee {i}"),
        GlobalGet(i) => format!("global.get {i}"),
        GlobalSet(i) => format!("global.set {i}"),
        Drop => "drop".into(),
        Select => "select".into(),
        I32Add => "i32.add".into(),
        I32Sub => "i32.sub".into(),
        I32Mul => "i32.mul".into(),
        I32DivS => "i32.div_s".into(),
        I32DivU => "i32.div_u".into(),
        I32RemS => "i32.rem_s".into(),
        I32RemU => "i32.rem_u".into(),
        I32And => "i32.and".into(),
        I32Or => "i32.or".into(),
        I32Xor => "i32.xor".into(),
        I32Shl => "i32.shl".into(),
        I32ShrS => "i32.shr_s".into(),
        I32ShrU => "i32.shr_u".into(),
        I32Rotl => "i32.rotl".into(),
        I32Rotr => "i32.rotr".into(),
        I32Eqz => "i32.eqz".into(),
        I32Eq => "i32.eq".into(),
        I32Ne => "i32.ne".into(),
        I32LtS => "i32.lt_s".into(),
        I32LtU => "i32.lt_u".into(),
        I32GtS => "i32.gt_s".into(),
        I32GtU => "i32.gt_u".into(),
        I32LeS => "i32.le_s".into(),
        I32LeU => "i32.le_u".into(),
        I32GeS => "i32.ge_s".into(),
        I32GeU => "i32.ge_u".into(),
        I64Add => "i64.add".into(),
        I64Sub => "i64.sub".into(),
        I64Mul => "i64.mul".into(),
        I64DivS => "i64.div_s".into(),
        I64DivU => "i64.div_u".into(),
        I64RemS => "i64.rem_s".into(),
        I64RemU => "i64.rem_u".into(),
        I64And => "i64.and".into(),
        I64Or => "i64.or".into(),
        I64Xor => "i64.xor".into(),
        I64Shl => "i64.shl".into(),
        I64ShrS => "i64.shr_s".into(),
        I64ShrU => "i64.shr_u".into(),
        I64Eqz => "i64.eqz".into(),
        I64Eq => "i64.eq".into(),
        I64Ne => "i64.ne".into(),
        I64LtS => "i64.lt_s".into(),
        I64LtU => "i64.lt_u".into(),
        I64GtS => "i64.gt_s".into(),
        I64GtU => "i64.gt_u".into(),
        I64LeS => "i64.le_s".into(),
        I64LeU => "i64.le_u".into(),
        I64GeS => "i64.ge_s".into(),
        I64GeU => "i64.ge_u".into(),
        I32WrapI64 => "i32.wrap_i64".into(),
        I64ExtendI32S => "i64.extend_i32_s".into(),
        I64ExtendI32U => "i64.extend_i32_u".into(),
        I32Load { offset } => mem_op("i32.load", *offset),
        I64Load { offset } => mem_op("i64.load", *offset),
        I32Load8U { offset } => mem_op("i32.load8_u", *offset),
        I32Load8S { offset } => mem_op("i32.load8_s", *offset),
        I32Load16U { offset } => mem_op("i32.load16_u", *offset),
        I32Load16S { offset } => mem_op("i32.load16_s", *offset),
        I32Store { offset } => mem_op("i32.store", *offset),
        I64Store { offset } => mem_op("i64.store", *offset),
        I32Store8 { offset } => mem_op("i32.store8", *offset),
        I32Store16 { offset } => mem_op("i32.store16", *offset),
        MemorySize => "memory.size".into(),
        MemoryGrow => "memory.grow".into(),
        MemoryCopy => "memory.copy".into(),
        MemoryFill => "memory.fill".into(),
        Block => "block".into(),
        Loop => "loop".into(),
        If => "if".into(),
        Else => "else".into(),
        End => "end".into(),
        Br(d) => format!("br {d}"),
        BrIf(d) => format!("br_if {d}"),
        BrTable { targets, default } => {
            let mut s = String::from("br_table");
            for t in targets {
                let _ = write!(s, " {t}");
            }
            let _ = write!(s, " {default}");
            s
        }
        Return => "return".into(),
        Call(i) => format!("call {i}"),
        CallIndirect { type_func } => format!("call_indirect (type {type_func})"),
        Unreachable => "unreachable".into(),
        Nop => "nop".into(),
    }
}

fn mem_op(name: &str, offset: u32) -> String {
    if offset == 0 {
        name.to_owned()
    } else {
        format!("{name} offset={offset}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;
    use crate::{validate, wat, FuncBuilder};

    #[test]
    fn round_trip_preserves_behaviour() {
        let src = r#"(module (memory 1)
            (global $g (mut i32) (i32.const 7))
            (func $inc (param $x i32) (result i32)
              local.get $x i32.const 1 i32.add)
            (func (export "run") (param $n i32) (result i32) (local $acc i32)
              block
                loop
                  local.get $n i32.eqz br_if 1
                  local.get $acc
                  local.get $n call $inc
                  i32.add local.set $acc
                  local.get $n i32.const 1 i32.sub local.set $n
                  br 0
                end
              end
              local.get $acc
              global.get $g
              i32.add))"#;
        let m1 = wat::parse(src).unwrap();
        validate(&m1).unwrap();
        let printed = print(&m1);
        let m2 = wat::parse(&printed).unwrap_or_else(|e| panic!("reparse: {e}\n{printed}"));
        validate(&m2).unwrap();
        let r1 = Interpreter::new(&m1).unwrap().invoke_export("run", &[10]).unwrap();
        let r2 = Interpreter::new(&m2).unwrap().invoke_export("run", &[10]).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(r1, Some(10 * 11 / 2 + 10 + 7));
    }

    #[test]
    fn corpus_round_trips() {
        // Every workload in the corpus must survive print → parse with
        // identical structure.
        for w in sfi_workloads_like_corpus() {
            let m1 = wat::parse(&w).unwrap();
            let printed = print(&m1);
            let m2 = wat::parse(&printed)
                .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
            assert_eq!(m1.funcs.len(), m2.funcs.len());
            assert_eq!(m1.table, m2.table);
            assert_eq!(m1.globals, m2.globals);
            for (f1, f2) in m1.funcs.iter().zip(&m2.funcs) {
                assert_eq!(f1.body, f2.body, "bodies must round-trip");
            }
        }
    }

    /// A few representative corpus-shaped sources (the real corpus lives in
    /// `sfi-workloads`, which depends on this crate — so we inline shapes).
    fn sfi_workloads_like_corpus() -> Vec<String> {
        vec![
            r#"(module (memory 2)
                 (data (i32.const 4) "ab\00c")
                 (func (export "run") (result i32)
                   i32.const 4 i32.load8_u))"#
                .to_owned(),
            r#"(module (memory 1)
                 (func $a (result i32) i32.const 1)
                 (func $b (result i32) i32.const 2)
                 (table funcref (elem $a $b))
                 (func (export "run") (param $i i32) (result i32)
                   local.get $i
                   call_indirect (type $a)))"#
                .to_owned(),
            r#"(module (memory 1)
                 (func (export "run") (param $x i32) (result i32)
                   block block block
                     local.get $x
                     br_table 0 1 2
                   end i32.const 10 return
                   end i32.const 20 return
                   end i32.const 30))"#
                .to_owned(),
        ]
    }

    #[test]
    fn builder_modules_print() {
        let mut m = Module::new(1);
        let f = m.push_func(
            FuncBuilder::new("f")
                .params(&[ValType::I64])
                .result(ValType::I64)
                .body(vec![Op::LocalGet(0), Op::I64Const(-5), Op::I64Mul, Op::End])
                .build(),
        );
        m.export("f", f);
        let printed = print(&m);
        assert!(printed.contains("i64.const -5"), "{printed}");
        let m2 = wat::parse(&printed).unwrap();
        validate(&m2).unwrap();
        let r = Interpreter::new(&m2).unwrap().invoke_export("f", &[3]).unwrap();
        assert_eq!(r, Some((-15i64) as u64));
    }
}
