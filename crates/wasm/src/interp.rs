//! The reference interpreter — the differential-testing oracle.
//!
//! Every SFI compilation strategy in `sfi-core` must produce machine code
//! whose observable behaviour (return value, final linear-memory contents,
//! traps) matches this interpreter on every program. The interpreter
//! implements Wasm's semantics directly from the specification: 32-bit
//! wrap-around arithmetic, 33-bit effective addresses, deterministic traps.

use crate::module::HostImport;
use crate::{Module, Op, ValType, WasmTrap, PAGE_SIZE};

/// Host-function dispatcher for imported functions.
pub trait Host {
    /// Calls import `import` with `args`; may read/write linear memory.
    fn call(
        &mut self,
        import: &HostImport,
        args: &[u64],
        memory: &mut [u8],
    ) -> Result<Option<u64>, WasmTrap>;
}

/// A host that rejects all imports (for modules that declare none).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHost;

impl Host for NoHost {
    fn call(
        &mut self,
        import: &HostImport,
        _args: &[u64],
        _memory: &mut [u8],
    ) -> Result<Option<u64>, WasmTrap> {
        Err(WasmTrap::HostError(format!("no host function bound for {}", import.name)))
    }
}

/// Pre-computed structured-control targets for one function body.
#[derive(Debug, Clone, Default)]
struct JumpTable {
    /// For each `Block`/`Loop`/`If` pc: the pc of the matching `End`.
    end_of: Vec<u32>,
    /// For each `If` pc: the pc of its `Else` (or the `End` if none).
    else_of: Vec<u32>,
}

fn build_jump_table(body: &[Op]) -> JumpTable {
    let n = body.len();
    let mut jt = JumpTable { end_of: vec![u32::MAX; n], else_of: vec![u32::MAX; n] };
    let mut stack: Vec<usize> = Vec::new();
    for (pc, op) in body.iter().enumerate() {
        match op {
            Op::Block | Op::Loop | Op::If => stack.push(pc),
            Op::Else => {
                let opener = *stack.last().expect("validated");
                jt.else_of[opener] = pc as u32;
            }
            Op::End => {
                if let Some(opener) = stack.pop() {
                    jt.end_of[opener] = pc as u32;
                    if jt.else_of[opener] == u32::MAX {
                        jt.else_of[opener] = pc as u32;
                    }
                    // An Else needs to know its End too: store under the
                    // Else pc so `Else` execution can skip to it.
                    let else_pc = jt.else_of[opener] as usize;
                    if else_pc != pc {
                        jt.end_of[else_pc] = pc as u32;
                    }
                }
                // The function-level End pops nothing (stack empty).
            }
            _ => {}
        }
    }
    jt
}

/// Execution limits.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum call depth.
    pub max_call_depth: usize,
    /// Maximum executed instructions.
    pub fuel: u64,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { max_call_depth: 256, fuel: 2_000_000_000 }
    }
}

/// The reference interpreter for one module instance.
///
/// Holds the instance state (linear memory, globals); each
/// [`Interpreter::invoke_export`] call runs one function to completion.
#[derive(Debug, Clone)]
pub struct Interpreter<'m> {
    module: &'m Module,
    /// Linear memory (public for test assertions).
    pub memory: Vec<u8>,
    globals: Vec<u64>,
    jump_tables: Vec<JumpTable>,
    limits: Limits,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CtrlKind {
    Block,
    Loop,
    If,
}

struct Ctrl {
    kind: CtrlKind,
    /// pc of the opener (for Loop back-branches).
    start: usize,
    /// pc of the matching End.
    end: usize,
    /// Value-stack height at entry.
    height: usize,
}

impl<'m> Interpreter<'m> {
    /// Instantiates `module`: allocates memory, applies data segments,
    /// initializes globals.
    pub fn new(module: &'m Module) -> Result<Interpreter<'m>, WasmTrap> {
        let mem_bytes = module.mem_min_bytes() as usize;
        let mut memory = vec![0u8; mem_bytes];
        for (offset, bytes) in &module.data {
            let start = *offset as usize;
            let end = start + bytes.len();
            if end > memory.len() {
                return Err(WasmTrap::OutOfBoundsMemory { addr: end as u64 });
            }
            memory[start..end].copy_from_slice(bytes);
        }
        let globals = module.globals.iter().map(|g| g.init).collect();
        let jump_tables = module.funcs.iter().map(|f| build_jump_table(&f.body)).collect();
        Ok(Interpreter { module, memory, globals, jump_tables, limits: Limits::default() })
    }

    /// Overrides the execution limits.
    pub fn set_limits(&mut self, limits: Limits) {
        self.limits = limits;
    }

    /// Reads a global's current value.
    pub fn global(&self, idx: u32) -> Option<u64> {
        self.globals.get(idx as usize).copied()
    }

    /// Current memory size in pages.
    pub fn mem_pages(&self) -> u32 {
        (self.memory.len() as u64 / PAGE_SIZE) as u32
    }

    /// Invokes an exported function with no host imports.
    pub fn invoke_export(&mut self, name: &str, args: &[u64]) -> Result<Option<u64>, WasmTrap> {
        self.invoke_export_with_host(name, args, &mut NoHost)
    }

    /// Invokes an exported function, dispatching imports to `host`.
    pub fn invoke_export_with_host(
        &mut self,
        name: &str,
        args: &[u64],
        host: &mut dyn Host,
    ) -> Result<Option<u64>, WasmTrap> {
        let idx = self
            .module
            .export_index(name)
            .ok_or_else(|| WasmTrap::HostError(format!("no export named {name}")))?;
        self.invoke(idx, args, host)
    }

    /// Invokes a function by index in the function index space.
    pub fn invoke(
        &mut self,
        func_idx: u32,
        args: &[u64],
        host: &mut dyn Host,
    ) -> Result<Option<u64>, WasmTrap> {
        let mut fuel = self.limits.fuel;
        self.call(func_idx, args, 0, host, &mut fuel)
    }

    fn call(
        &mut self,
        func_idx: u32,
        args: &[u64],
        depth: usize,
        host: &mut dyn Host,
        fuel: &mut u64,
    ) -> Result<Option<u64>, WasmTrap> {
        if depth >= self.limits.max_call_depth {
            return Err(WasmTrap::StackExhausted);
        }
        if let Some(import) = self.module.imports.get(func_idx as usize) {
            return host.call(import, args, &mut self.memory);
        }
        let func = self
            .module
            .defined_func(func_idx)
            .ok_or(WasmTrap::UndefinedTableElement)?;
        let jt_idx = func_idx as usize - self.module.imports.len();

        let mut locals = vec![0u64; func.local_count() as usize];
        locals[..args.len()].copy_from_slice(args);
        // Canonicalize i32 params to their low 32 bits.
        for (i, p) in func.params.iter().enumerate() {
            if *p == ValType::I32 {
                locals[i] &= 0xFFFF_FFFF;
            }
        }

        let mut stack: Vec<u64> = Vec::with_capacity(32);
        let mut ctrl: Vec<Ctrl> = Vec::with_capacity(8);
        let mut pc = 0usize;
        let body = &func.body;

        macro_rules! pop {
            () => {
                stack.pop().expect("validated stack")
            };
        }
        macro_rules! bin32 {
            (|$a:ident, $b:ident| $e:expr) => {{
                let $b = pop!() as u32;
                let $a = pop!() as u32;
                stack.push(u64::from($e));
            }};
        }
        macro_rules! bin64 {
            (|$a:ident, $b:ident| $e:expr) => {{
                let $b = pop!();
                let $a = pop!();
                stack.push($e);
            }};
        }
        macro_rules! cmp64 {
            (|$a:ident, $b:ident| $e:expr) => {{
                let $b = pop!();
                let $a = pop!();
                stack.push(u64::from($e));
            }};
        }

        loop {
            if *fuel == 0 {
                return Err(WasmTrap::FuelExhausted);
            }
            *fuel -= 1;
            let op = &body[pc];
            match op {
                Op::I32Const(v) => stack.push(*v as u32 as u64),
                Op::I64Const(v) => stack.push(*v as u64),
                Op::LocalGet(i) => stack.push(locals[*i as usize]),
                Op::LocalSet(i) => locals[*i as usize] = pop!(),
                Op::LocalTee(i) => locals[*i as usize] = *stack.last().expect("validated"),
                Op::GlobalGet(i) => stack.push(self.globals[*i as usize]),
                Op::GlobalSet(i) => self.globals[*i as usize] = pop!(),
                Op::Drop => {
                    pop!();
                }
                Op::Select => {
                    let c = pop!() as u32;
                    let b = pop!();
                    let a = pop!();
                    stack.push(if c != 0 { a } else { b });
                }

                Op::I32Add => bin32!(|a, b| a.wrapping_add(b)),
                Op::I32Sub => bin32!(|a, b| a.wrapping_sub(b)),
                Op::I32Mul => bin32!(|a, b| a.wrapping_mul(b)),
                Op::I32DivU => {
                    let b = pop!() as u32;
                    let a = pop!() as u32;
                    if b == 0 {
                        return Err(WasmTrap::DivideByZero);
                    }
                    stack.push(u64::from(a / b));
                }
                Op::I32DivS => {
                    let b = pop!() as u32 as i32;
                    let a = pop!() as u32 as i32;
                    if b == 0 {
                        return Err(WasmTrap::DivideByZero);
                    }
                    if a == i32::MIN && b == -1 {
                        return Err(WasmTrap::IntegerOverflow);
                    }
                    stack.push((a / b) as u32 as u64);
                }
                Op::I32RemU => {
                    let b = pop!() as u32;
                    let a = pop!() as u32;
                    if b == 0 {
                        return Err(WasmTrap::DivideByZero);
                    }
                    stack.push(u64::from(a % b));
                }
                Op::I32RemS => {
                    let b = pop!() as u32 as i32;
                    let a = pop!() as u32 as i32;
                    if b == 0 {
                        return Err(WasmTrap::DivideByZero);
                    }
                    stack.push(a.wrapping_rem(b) as u32 as u64);
                }
                Op::I32And => bin32!(|a, b| a & b),
                Op::I32Or => bin32!(|a, b| a | b),
                Op::I32Xor => bin32!(|a, b| a ^ b),
                Op::I32Shl => bin32!(|a, b| a.wrapping_shl(b)),
                Op::I32ShrU => bin32!(|a, b| a.wrapping_shr(b)),
                Op::I32ShrS => bin32!(|a, b| ((a as i32).wrapping_shr(b)) as u32),
                Op::I32Rotl => bin32!(|a, b| a.rotate_left(b & 31)),
                Op::I32Rotr => bin32!(|a, b| a.rotate_right(b & 31)),

                Op::I32Eqz => {
                    let a = pop!() as u32;
                    stack.push(u64::from(a == 0));
                }
                Op::I32Eq => bin32!(|a, b| u32::from(a == b)),
                Op::I32Ne => bin32!(|a, b| u32::from(a != b)),
                Op::I32LtU => bin32!(|a, b| u32::from(a < b)),
                Op::I32LtS => bin32!(|a, b| u32::from((a as i32) < (b as i32))),
                Op::I32GtU => bin32!(|a, b| u32::from(a > b)),
                Op::I32GtS => bin32!(|a, b| u32::from((a as i32) > (b as i32))),
                Op::I32LeU => bin32!(|a, b| u32::from(a <= b)),
                Op::I32LeS => bin32!(|a, b| u32::from((a as i32) <= (b as i32))),
                Op::I32GeU => bin32!(|a, b| u32::from(a >= b)),
                Op::I32GeS => bin32!(|a, b| u32::from((a as i32) >= (b as i32))),

                Op::I64Add => bin64!(|a, b| a.wrapping_add(b)),
                Op::I64Sub => bin64!(|a, b| a.wrapping_sub(b)),
                Op::I64Mul => bin64!(|a, b| a.wrapping_mul(b)),
                Op::I64DivU => {
                    let b = pop!();
                    let a = pop!();
                    if b == 0 {
                        return Err(WasmTrap::DivideByZero);
                    }
                    stack.push(a / b);
                }
                Op::I64DivS => {
                    let b = pop!() as i64;
                    let a = pop!() as i64;
                    if b == 0 {
                        return Err(WasmTrap::DivideByZero);
                    }
                    if a == i64::MIN && b == -1 {
                        return Err(WasmTrap::IntegerOverflow);
                    }
                    stack.push((a / b) as u64);
                }
                Op::I64RemU => {
                    let b = pop!();
                    let a = pop!();
                    if b == 0 {
                        return Err(WasmTrap::DivideByZero);
                    }
                    stack.push(a % b);
                }
                Op::I64RemS => {
                    let b = pop!() as i64;
                    let a = pop!() as i64;
                    if b == 0 {
                        return Err(WasmTrap::DivideByZero);
                    }
                    stack.push(a.wrapping_rem(b) as u64);
                }
                Op::I64And => bin64!(|a, b| a & b),
                Op::I64Or => bin64!(|a, b| a | b),
                Op::I64Xor => bin64!(|a, b| a ^ b),
                Op::I64Shl => bin64!(|a, b| a.wrapping_shl(b as u32)),
                Op::I64ShrU => bin64!(|a, b| a.wrapping_shr(b as u32)),
                Op::I64ShrS => bin64!(|a, b| ((a as i64).wrapping_shr(b as u32)) as u64),

                Op::I64Eqz => {
                    let a = pop!();
                    stack.push(u64::from(a == 0));
                }
                Op::I64Eq => cmp64!(|a, b| a == b),
                Op::I64Ne => cmp64!(|a, b| a != b),
                Op::I64LtU => cmp64!(|a, b| a < b),
                Op::I64LtS => cmp64!(|a, b| (a as i64) < (b as i64)),
                Op::I64GtU => cmp64!(|a, b| a > b),
                Op::I64GtS => cmp64!(|a, b| (a as i64) > (b as i64)),
                Op::I64LeU => cmp64!(|a, b| a <= b),
                Op::I64LeS => cmp64!(|a, b| (a as i64) <= (b as i64)),
                Op::I64GeU => cmp64!(|a, b| a >= b),
                Op::I64GeS => cmp64!(|a, b| (a as i64) >= (b as i64)),

                Op::I32WrapI64 => {
                    let a = pop!();
                    stack.push(a & 0xFFFF_FFFF);
                }
                Op::I64ExtendI32U => {
                    let a = pop!() as u32;
                    stack.push(u64::from(a));
                }
                Op::I64ExtendI32S => {
                    let a = pop!() as u32 as i32;
                    stack.push(a as i64 as u64);
                }

                Op::I32Load { offset } => {
                    let v = self.mem_load(pop!(), *offset, 4)?;
                    stack.push(v);
                }
                Op::I64Load { offset } => {
                    let v = self.mem_load(pop!(), *offset, 8)?;
                    stack.push(v);
                }
                Op::I32Load8U { offset } => {
                    let v = self.mem_load(pop!(), *offset, 1)?;
                    stack.push(v);
                }
                Op::I32Load8S { offset } => {
                    let v = self.mem_load(pop!(), *offset, 1)? as u8 as i8;
                    stack.push(v as i32 as u32 as u64);
                }
                Op::I32Load16U { offset } => {
                    let v = self.mem_load(pop!(), *offset, 2)?;
                    stack.push(v);
                }
                Op::I32Load16S { offset } => {
                    let v = self.mem_load(pop!(), *offset, 2)? as u16 as i16;
                    stack.push(v as i32 as u32 as u64);
                }
                Op::I32Store { offset } => {
                    let v = pop!();
                    self.mem_store(pop!(), *offset, 4, v)?;
                }
                Op::I64Store { offset } => {
                    let v = pop!();
                    self.mem_store(pop!(), *offset, 8, v)?;
                }
                Op::I32Store8 { offset } => {
                    let v = pop!();
                    self.mem_store(pop!(), *offset, 1, v)?;
                }
                Op::I32Store16 { offset } => {
                    let v = pop!();
                    self.mem_store(pop!(), *offset, 2, v)?;
                }
                Op::MemorySize => stack.push(u64::from(self.mem_pages())),
                Op::MemoryGrow => {
                    let delta = pop!() as u32;
                    let old = self.mem_pages();
                    let new = u64::from(old) + u64::from(delta);
                    let max = u64::from(self.module.mem_max_pages.unwrap_or(65536));
                    if new > max {
                        stack.push(u32::MAX as u64); // -1
                    } else {
                        self.memory.resize((new * PAGE_SIZE) as usize, 0);
                        stack.push(u64::from(old));
                    }
                }
                Op::MemoryCopy => {
                    let len = pop!() as u32 as u64;
                    let src = pop!() as u32 as u64;
                    let dst = pop!() as u32 as u64;
                    let mlen = self.memory.len() as u64;
                    if src + len > mlen || dst + len > mlen {
                        return Err(WasmTrap::OutOfBoundsMemory { addr: src.max(dst) + len });
                    }
                    self.memory.copy_within(src as usize..(src + len) as usize, dst as usize);
                }
                Op::MemoryFill => {
                    let len = pop!() as u32 as u64;
                    let val = pop!() as u8;
                    let dst = pop!() as u32 as u64;
                    let mlen = self.memory.len() as u64;
                    if dst + len > mlen {
                        return Err(WasmTrap::OutOfBoundsMemory { addr: dst + len });
                    }
                    self.memory[dst as usize..(dst + len) as usize].fill(val);
                }

                Op::Block => {
                    let end = self.jump_tables[jt_idx].end_of[pc] as usize;
                    ctrl.push(Ctrl { kind: CtrlKind::Block, start: pc, end, height: stack.len() });
                }
                Op::Loop => {
                    let end = self.jump_tables[jt_idx].end_of[pc] as usize;
                    ctrl.push(Ctrl { kind: CtrlKind::Loop, start: pc, end, height: stack.len() });
                }
                Op::If => {
                    let jt = &self.jump_tables[jt_idx];
                    let end = jt.end_of[pc] as usize;
                    let else_pc = jt.else_of[pc] as usize;
                    let cond = pop!() as u32;
                    ctrl.push(Ctrl { kind: CtrlKind::If, start: pc, end, height: stack.len() });
                    if cond == 0 {
                        // Jump just past the Else, or onto the End (whose
                        // handler pops the frame) when there is no else-arm.
                        pc = else_pc;
                        if body[pc] == Op::Else {
                            pc += 1;
                        }
                        continue;
                    }
                }
                Op::Else => {
                    // Fell through the then-branch: skip to the End.
                    let frame = ctrl.last().expect("validated");
                    pc = frame.end;
                    continue; // End handler pops the frame
                }
                Op::End => {
                    if ctrl.is_empty() {
                        // Function end: fall-through return.
                        let ret = func.result.map(|rt| match rt {
                            ValType::I32 => stack.pop().expect("validated") & 0xFFFF_FFFF,
                            ValType::I64 => stack.pop().expect("validated"),
                        });
                        return Ok(ret);
                    }
                    ctrl.pop();
                }
                Op::Br(d) => {
                    pc = Self::do_branch(&mut ctrl, &mut stack, *d);
                    if pc == usize::MAX {
                        return Self::do_return(func, &mut stack);
                    }
                    continue;
                }
                Op::BrIf(d) => {
                    let cond = pop!() as u32;
                    if cond != 0 {
                        pc = Self::do_branch(&mut ctrl, &mut stack, *d);
                        if pc == usize::MAX {
                            return Self::do_return(func, &mut stack);
                        }
                        continue;
                    }
                }
                Op::BrTable { targets, default } => {
                    let sel = pop!() as u32 as usize;
                    let d = targets.get(sel).copied().unwrap_or(*default);
                    pc = Self::do_branch(&mut ctrl, &mut stack, d);
                    if pc == usize::MAX {
                        return Self::do_return(func, &mut stack);
                    }
                    continue;
                }
                Op::Return => {
                    return Self::do_return(func, &mut stack);
                }
                Op::Call(idx) => {
                    let (params, _result) =
                        self.module.signature(*idx).ok_or(WasmTrap::UndefinedTableElement)?;
                    let argc = params.len();
                    let args: Vec<u64> = stack.split_off(stack.len() - argc);
                    let r = self.call(*idx, &args, depth + 1, host, fuel)?;
                    if let Some(v) = r {
                        stack.push(v);
                    }
                }
                Op::CallIndirect { type_func } => {
                    let ti = pop!() as u32;
                    let fidx = *self
                        .module
                        .table
                        .get(ti as usize)
                        .ok_or(WasmTrap::UndefinedTableElement)?;
                    let (want_p, want_r) =
                        self.module.signature(*type_func).ok_or(WasmTrap::UndefinedTableElement)?;
                    let (got_p, got_r) =
                        self.module.signature(fidx).ok_or(WasmTrap::UndefinedTableElement)?;
                    if want_p != got_p || want_r != got_r {
                        return Err(WasmTrap::IndirectCallTypeMismatch);
                    }
                    let argc = got_p.len();
                    let args: Vec<u64> = stack.split_off(stack.len() - argc);
                    let r = self.call(fidx, &args, depth + 1, host, fuel)?;
                    if let Some(v) = r {
                        stack.push(v);
                    }
                }
                Op::Unreachable => return Err(WasmTrap::Unreachable),
                Op::Nop => {}
            }
            pc += 1;
        }
    }

    /// Branch to relative depth `d`; returns the new pc, or `usize::MAX` to
    /// signal a branch to the function frame (acts as return).
    fn do_branch(ctrl: &mut Vec<Ctrl>, stack: &mut Vec<u64>, d: u32) -> usize {
        let d = d as usize;
        if d >= ctrl.len() {
            // Branch to the implicit function label.
            return usize::MAX;
        }
        let keep = ctrl.len() - 1 - d;
        let frame = &ctrl[keep];
        let (target, height) = match frame.kind {
            CtrlKind::Loop => (frame.start + 1, frame.height),
            _ => (frame.end + 1, frame.height),
        };
        stack.truncate(height);
        match frame.kind {
            // A branch to a loop re-enters it: keep the loop frame.
            CtrlKind::Loop => ctrl.truncate(keep + 1),
            _ => ctrl.truncate(keep),
        }
        target
    }

    fn do_return(func: &crate::Func, stack: &mut Vec<u64>) -> Result<Option<u64>, WasmTrap> {
        Ok(func.result.map(|rt| match rt {
            ValType::I32 => stack.pop().expect("validated") & 0xFFFF_FFFF,
            ValType::I64 => stack.pop().expect("validated"),
        }))
    }

    fn mem_load(&self, addr: u64, offset: u32, width: u32) -> Result<u64, WasmTrap> {
        // 33-bit effective address: 32-bit dynamic + 32-bit static offset.
        let ea = (addr & 0xFFFF_FFFF) + u64::from(offset);
        let end = ea + u64::from(width);
        if end > self.memory.len() as u64 {
            return Err(WasmTrap::OutOfBoundsMemory { addr: ea });
        }
        let mut buf = [0u8; 8];
        buf[..width as usize].copy_from_slice(&self.memory[ea as usize..end as usize]);
        Ok(u64::from_le_bytes(buf))
    }

    fn mem_store(&mut self, addr: u64, offset: u32, width: u32, val: u64) -> Result<(), WasmTrap> {
        let ea = (addr & 0xFFFF_FFFF) + u64::from(offset);
        let end = ea + u64::from(width);
        if end > self.memory.len() as u64 {
            return Err(WasmTrap::OutOfBoundsMemory { addr: ea });
        }
        self.memory[ea as usize..end as usize].copy_from_slice(&val.to_le_bytes()[..width as usize]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{validate, FuncBuilder, Global};

    fn one_func_module(params: &[ValType], result: Option<ValType>, body: Vec<Op>) -> Module {
        let mut m = Module::new(1);
        let mut b = FuncBuilder::new("f").params(params);
        if let Some(r) = result {
            b = b.result(r);
        }
        let idx = m.push_func(b.locals(&[ValType::I32, ValType::I64]).body(body).build());
        m.export("f", idx);
        validate(&m).expect("test module must validate");
        m
    }

    fn run(m: &Module, args: &[u64]) -> Result<Option<u64>, WasmTrap> {
        Interpreter::new(m).unwrap().invoke_export("f", args)
    }

    #[test]
    fn arithmetic_wraps_at_32_bits() {
        let m = one_func_module(
            &[ValType::I32],
            Some(ValType::I32),
            vec![Op::LocalGet(0), Op::I32Const(1), Op::I32Add, Op::End],
        );
        assert_eq!(run(&m, &[u32::MAX as u64]).unwrap(), Some(0));
    }

    #[test]
    fn div_traps() {
        let m = one_func_module(
            &[ValType::I32, ValType::I32],
            Some(ValType::I32),
            vec![Op::LocalGet(0), Op::LocalGet(1), Op::I32DivS, Op::End],
        );
        assert_eq!(run(&m, &[7, 0]), Err(WasmTrap::DivideByZero));
        assert_eq!(run(&m, &[i32::MIN as u32 as u64, u32::MAX as u64]), Err(WasmTrap::IntegerOverflow));
        assert_eq!(run(&m, &[7, 2]).unwrap(), Some(3));
        assert_eq!(
            run(&m, &[(-7i32) as u32 as u64, 2]).unwrap(),
            Some((-3i32) as u32 as u64)
        );
    }

    #[test]
    fn memory_load_store_roundtrip() {
        let m = one_func_module(
            &[ValType::I32],
            Some(ValType::I32),
            vec![
                Op::LocalGet(0),
                Op::I32Const(0x1234_5678),
                Op::I32Store { offset: 4 },
                Op::LocalGet(0),
                Op::I32Load { offset: 4 },
                Op::End,
            ],
        );
        assert_eq!(run(&m, &[16]).unwrap(), Some(0x1234_5678));
    }

    #[test]
    fn oob_memory_traps_at_33_bit_address() {
        let m = one_func_module(
            &[ValType::I32],
            Some(ValType::I32),
            vec![Op::LocalGet(0), Op::I32Load { offset: 8 }, Op::End],
        );
        // addr = 0xFFFF_FFFF, offset 8 → 33-bit EA, must trap (not wrap!).
        let err = run(&m, &[0xFFFF_FFFF]).unwrap_err();
        assert_eq!(err, WasmTrap::OutOfBoundsMemory { addr: 0x1_0000_0007 });
        // Last valid word:
        assert_eq!(run(&m, &[65536 - 12]).unwrap(), Some(0));
    }

    #[test]
    fn loop_sums() {
        // sum 1..=n via loop
        let m = one_func_module(
            &[ValType::I32],
            Some(ValType::I32),
            vec![
                Op::Block,
                Op::Loop,
                Op::LocalGet(0),
                Op::I32Eqz,
                Op::BrIf(1),
                Op::LocalGet(1),
                Op::LocalGet(0),
                Op::I32Add,
                Op::LocalSet(1),
                Op::LocalGet(0),
                Op::I32Const(1),
                Op::I32Sub,
                Op::LocalSet(0),
                Op::Br(0),
                Op::End,
                Op::End,
                Op::LocalGet(1),
                Op::End,
            ],
        );
        assert_eq!(run(&m, &[100]).unwrap(), Some(5050));
    }

    #[test]
    fn if_else() {
        let m = one_func_module(
            &[ValType::I32],
            Some(ValType::I32),
            vec![
                Op::LocalGet(0),
                Op::If,
                Op::I32Const(11),
                Op::LocalSet(1),
                Op::Else,
                Op::I32Const(22),
                Op::LocalSet(1),
                Op::End,
                Op::LocalGet(1),
                Op::End,
            ],
        );
        assert_eq!(run(&m, &[1]).unwrap(), Some(11));
        assert_eq!(run(&m, &[0]).unwrap(), Some(22));
    }

    #[test]
    fn if_without_else() {
        let m = one_func_module(
            &[ValType::I32],
            Some(ValType::I32),
            vec![
                Op::I32Const(5),
                Op::LocalSet(1),
                Op::LocalGet(0),
                Op::If,
                Op::I32Const(9),
                Op::LocalSet(1),
                Op::End,
                Op::LocalGet(1),
                Op::End,
            ],
        );
        assert_eq!(run(&m, &[1]).unwrap(), Some(9));
        assert_eq!(run(&m, &[0]).unwrap(), Some(5));
    }

    #[test]
    fn br_table_dispatch() {
        let m = one_func_module(
            &[ValType::I32],
            Some(ValType::I32),
            vec![
                Op::Block, // 2
                Op::Block, // 1
                Op::Block, // 0
                Op::LocalGet(0),
                Op::BrTable { targets: vec![0, 1], default: 2 },
                Op::End,
                Op::I32Const(100),
                Op::Return,
                Op::End,
                Op::I32Const(200),
                Op::Return,
                Op::End,
                Op::I32Const(300),
                Op::End,
            ],
        );
        assert_eq!(run(&m, &[0]).unwrap(), Some(100));
        assert_eq!(run(&m, &[1]).unwrap(), Some(200));
        assert_eq!(run(&m, &[2]).unwrap(), Some(300));
        assert_eq!(run(&m, &[77]).unwrap(), Some(300));
    }

    #[test]
    fn calls_and_recursion() {
        let mut m = Module::new(1);
        // fib(n) = n < 2 ? n : fib(n-1) + fib(n-2)
        let fib = FuncBuilder::new("fib")
            .params(&[ValType::I32])
            .result(ValType::I32)
            .body(vec![
                Op::LocalGet(0),
                Op::I32Const(2),
                Op::I32LtU,
                Op::If,
                Op::LocalGet(0),
                Op::Return,
                Op::End,
                Op::LocalGet(0),
                Op::I32Const(1),
                Op::I32Sub,
                Op::Call(0),
                Op::LocalGet(0),
                Op::I32Const(2),
                Op::I32Sub,
                Op::Call(0),
                Op::I32Add,
                Op::End,
            ])
            .build();
        let idx = m.push_func(fib);
        m.export("fib", idx);
        validate(&m).unwrap();
        let mut i = Interpreter::new(&m).unwrap();
        assert_eq!(i.invoke_export("fib", &[10]).unwrap(), Some(55));
    }

    #[test]
    fn call_indirect_and_type_mismatch() {
        let mut m = Module::new(1);
        let f1 = m.push_func(
            FuncBuilder::new("one").result(ValType::I32).body(vec![Op::I32Const(1), Op::End]).build(),
        );
        let f2 = m.push_func(
            FuncBuilder::new("two").result(ValType::I32).body(vec![Op::I32Const(2), Op::End]).build(),
        );
        let g = m.push_func(
            FuncBuilder::new("bad").result(ValType::I64).body(vec![Op::I64Const(3), Op::End]).build(),
        );
        m.push_table_entry(f1);
        m.push_table_entry(f2);
        m.push_table_entry(g);
        let caller = m.push_func(
            FuncBuilder::new("f")
                .params(&[ValType::I32])
                .result(ValType::I32)
                .body(vec![Op::LocalGet(0), Op::CallIndirect { type_func: f1 }, Op::End])
                .build(),
        );
        m.export("f", caller);
        validate(&m).unwrap();
        let mut i = Interpreter::new(&m).unwrap();
        assert_eq!(i.invoke_export("f", &[0]).unwrap(), Some(1));
        assert_eq!(i.invoke_export("f", &[1]).unwrap(), Some(2));
        assert_eq!(i.invoke_export("f", &[2]), Err(WasmTrap::IndirectCallTypeMismatch));
        assert_eq!(i.invoke_export("f", &[3]), Err(WasmTrap::UndefinedTableElement));
    }

    #[test]
    fn memory_grow_and_size() {
        let mut m = Module::new(1);
        m.mem_max_pages = Some(3);
        let idx = m.push_func(
            FuncBuilder::new("f")
                .result(ValType::I32)
                .body(vec![
                    Op::I32Const(1),
                    Op::MemoryGrow,
                    Op::Drop,
                    Op::I32Const(5),
                    Op::MemoryGrow, // exceeds max → -1
                    Op::Drop,
                    Op::MemorySize,
                    Op::End,
                ])
                .build(),
        );
        m.export("f", idx);
        validate(&m).unwrap();
        let mut i = Interpreter::new(&m).unwrap();
        assert_eq!(i.invoke_export("f", &[]).unwrap(), Some(2));
    }

    #[test]
    fn bulk_memory_ops() {
        let m = one_func_module(
            &[],
            Some(ValType::I32),
            vec![
                // fill [100, 108) with 0xAB
                Op::I32Const(100),
                Op::I32Const(0xAB),
                Op::I32Const(8),
                Op::MemoryFill,
                // copy [100,108) to [104,112) — overlapping
                Op::I32Const(104),
                Op::I32Const(100),
                Op::I32Const(8),
                Op::MemoryCopy,
                Op::I32Const(108),
                Op::I32Load8U { offset: 0 },
                Op::End,
            ],
        );
        assert_eq!(run(&m, &[]).unwrap(), Some(0xAB));
    }

    #[test]
    fn bulk_oob_traps() {
        let m = one_func_module(
            &[],
            None,
            vec![
                Op::I32Const(65530),
                Op::I32Const(0),
                Op::I32Const(100),
                Op::MemoryFill,
                Op::End,
            ],
        );
        assert!(matches!(run(&m, &[]), Err(WasmTrap::OutOfBoundsMemory { .. })));
    }

    #[test]
    fn globals_and_host_calls() {
        let mut m = Module::new(1);
        let imp = m.push_import(HostImport {
            name: "host.add10".into(),
            params: vec![ValType::I32],
            result: Some(ValType::I32),
        });
        m.push_global(Global { ty: ValType::I32, mutable: true, init: 5 });
        let idx = m.push_func(
            FuncBuilder::new("f")
                .result(ValType::I32)
                .body(vec![
                    Op::GlobalGet(0),
                    Op::Call(imp),
                    Op::GlobalSet(0),
                    Op::GlobalGet(0),
                    Op::End,
                ])
                .build(),
        );
        m.export("f", idx);
        validate(&m).unwrap();
        struct Add10;
        impl Host for Add10 {
            fn call(
                &mut self,
                _i: &HostImport,
                args: &[u64],
                _m: &mut [u8],
            ) -> Result<Option<u64>, WasmTrap> {
                Ok(Some(args[0] + 10))
            }
        }
        let mut i = Interpreter::new(&m).unwrap();
        assert_eq!(i.invoke_export_with_host("f", &[], &mut Add10).unwrap(), Some(15));
        assert_eq!(i.global(0), Some(15));
    }

    #[test]
    fn fuel_limits_infinite_loops() {
        let m = one_func_module(&[], None, vec![Op::Loop, Op::Br(0), Op::End, Op::End]);
        let mut i = Interpreter::new(&m).unwrap();
        i.set_limits(Limits { fuel: 10_000, ..Limits::default() });
        assert_eq!(i.invoke_export("f", &[]), Err(WasmTrap::FuelExhausted));
    }

    #[test]
    fn deep_recursion_exhausts_stack() {
        let mut m = Module::new(1);
        let idx = m.push_func(
            FuncBuilder::new("f").body(vec![Op::Call(0), Op::End]).build(),
        );
        m.export("f", idx);
        validate(&m).unwrap();
        let mut i = Interpreter::new(&m).unwrap();
        // Keep the host stack shallow: the interpreter recurses per guest
        // frame, and debug builds have large frames.
        i.set_limits(Limits { max_call_depth: 64, ..Limits::default() });
        assert_eq!(i.invoke_export("f", &[]), Err(WasmTrap::StackExhausted));
    }

    #[test]
    fn data_segments_applied() {
        let mut m = Module::new(1);
        m.push_data(8, vec![1, 2, 3, 4]);
        let idx = m.push_func(
            FuncBuilder::new("f")
                .result(ValType::I32)
                .body(vec![Op::I32Const(8), Op::I32Load { offset: 0 }, Op::End])
                .build(),
        );
        m.export("f", idx);
        validate(&m).unwrap();
        let mut i = Interpreter::new(&m).unwrap();
        assert_eq!(i.invoke_export("f", &[]).unwrap(), Some(0x04030201));
    }

    #[test]
    fn unreachable_traps() {
        let m = one_func_module(&[], None, vec![Op::Unreachable, Op::End]);
        assert_eq!(run(&m, &[]), Err(WasmTrap::Unreachable));
    }

    #[test]
    fn select_and_tee() {
        let m = one_func_module(
            &[ValType::I32],
            Some(ValType::I32),
            vec![
                Op::I32Const(10),
                Op::I32Const(20),
                Op::LocalGet(0),
                Op::Select,
                Op::End,
            ],
        );
        assert_eq!(run(&m, &[1]).unwrap(), Some(10));
        assert_eq!(run(&m, &[0]).unwrap(), Some(20));
    }
}
