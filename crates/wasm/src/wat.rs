//! A parser for a WebAssembly-text (WAT) subset.
//!
//! Supports the flat (non-folded) instruction form, named or numeric
//! locals/functions/labels, memory/global/table/data sections, and inline
//! exports — enough to write readable test programs and examples:
//!
//! ```
//! let m = sfi_wasm::wat::parse(r#"
//!   (module
//!     (memory 1)
//!     (func $store_and_load (export "run") (param $p i32) (result i32)
//!       local.get $p
//!       i32.const 7
//!       i32.store offset=4
//!       local.get $p
//!       i32.load offset=4))
//! "#).unwrap();
//! sfi_wasm::validate(&m).unwrap();
//! let mut i = sfi_wasm::interp::Interpreter::new(&m).unwrap();
//! assert_eq!(i.invoke_export("run", &[64]).unwrap(), Some(7));
//! ```

use std::collections::HashMap;

use crate::{Func, Global, Module, Op, ValType};

/// A WAT parse error with a byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the source where the error was detected.
    pub pos: usize,
    /// Description of the failure.
    pub msg: String,
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "WAT parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum SExpr {
    Atom(String, usize),
    Str(String, usize),
    List(Vec<SExpr>, usize),
}

impl SExpr {
    fn pos(&self) -> usize {
        match self {
            SExpr::Atom(_, p) | SExpr::Str(_, p) | SExpr::List(_, p) => *p,
        }
    }

    fn as_atom(&self) -> Option<&str> {
        match self {
            SExpr::Atom(s, _) => Some(s),
            _ => None,
        }
    }

    fn head(&self) -> Option<&str> {
        match self {
            SExpr::List(items, _) => items.first().and_then(SExpr::as_atom),
            _ => None,
        }
    }
}

fn err(pos: usize, msg: impl Into<String>) -> ParseError {
    ParseError { pos, msg: msg.into() }
}

fn tokenize(src: &str) -> Result<Vec<SExpr>, ParseError> {
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut stack: Vec<(Vec<SExpr>, usize)> = vec![(Vec::new(), 0)];
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b';' if i + 1 < bytes.len() && bytes[i + 1] == b';' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' if i + 1 < bytes.len() && bytes[i + 1] == b';' => {
                // Block comment (no nesting).
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(err(start, "unterminated block comment"));
                    }
                    if bytes[i] == b';' && bytes[i + 1] == b')' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'(' => {
                stack.push((Vec::new(), i));
                i += 1;
            }
            b')' => {
                let (items, pos) = stack.pop().ok_or_else(|| err(i, "unbalanced ')'"))?;
                if stack.is_empty() {
                    return Err(err(i, "unbalanced ')'"));
                }
                stack.last_mut().expect("checked").0.push(SExpr::List(items, pos));
                i += 1;
            }
            b'"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(err(start, "unterminated string"));
                    }
                    match bytes[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' if i + 1 < bytes.len() => {
                            let e = bytes[i + 1];
                            match e {
                                b'n' => s.push('\n'),
                                b't' => s.push('\t'),
                                b'\\' => s.push('\\'),
                                b'"' => s.push('"'),
                                _ => {
                                    // \hh hex escape
                                    if i + 2 < bytes.len() {
                                        let hex = &src[i + 1..i + 3];
                                        let v = u8::from_str_radix(hex, 16)
                                            .map_err(|_| err(i, "bad escape"))?;
                                        s.push(v as char);
                                        i += 1;
                                    } else {
                                        return Err(err(i, "bad escape"));
                                    }
                                }
                            }
                            i += 2;
                        }
                        b => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                stack.last_mut().expect("nonempty").0.push(SExpr::Str(s, start));
            }
            _ => {
                let start = i;
                while i < bytes.len()
                    && !matches!(bytes[i], b' ' | b'\t' | b'\n' | b'\r' | b'(' | b')' | b'"')
                {
                    i += 1;
                }
                stack
                    .last_mut()
                    .expect("nonempty")
                    .0
                    .push(SExpr::Atom(src[start..i].to_owned(), start));
            }
        }
    }
    if stack.len() != 1 {
        return Err(err(src.len(), "unbalanced '('"));
    }
    Ok(stack.pop().expect("checked").0)
}

fn parse_valtype(s: &SExpr) -> Result<ValType, ParseError> {
    match s.as_atom() {
        Some("i32") => Ok(ValType::I32),
        Some("i64") => Ok(ValType::I64),
        _ => Err(err(s.pos(), format!("expected value type, got {s:?}"))),
    }
}

fn parse_int(atom: &str, pos: usize) -> Result<i64, ParseError> {
    let (neg, rest) = match atom.strip_prefix('-') {
        Some(r) => (true, r),
        None => (false, atom),
    };
    let v = if let Some(hex) = rest.strip_prefix("0x") {
        u64::from_str_radix(&hex.replace('_', ""), 16)
            .map_err(|_| err(pos, format!("bad integer {atom}")))?
    } else {
        rest.replace('_', "")
            .parse::<u64>()
            .map_err(|_| err(pos, format!("bad integer {atom}")))?
    };
    Ok(if neg { (v as i64).wrapping_neg() } else { v as i64 })
}

#[derive(Default)]
struct Names {
    funcs: HashMap<String, u32>,
    globals: HashMap<String, u32>,
}

/// Parses WAT source into a [`Module`]. The module is *not* validated; call
/// [`crate::validate`] afterwards.
pub fn parse(src: &str) -> Result<Module, ParseError> {
    let top = tokenize(src)?;
    let module_sexpr = top
        .iter()
        .find(|e| e.head() == Some("module"))
        .ok_or_else(|| err(0, "no (module ...) form"))?;
    let fields = match module_sexpr {
        SExpr::List(items, _) => &items[1..],
        _ => unreachable!(),
    };

    let mut module = Module::default();
    let mut names = Names::default();

    // Pass 1: collect function/global names so bodies can forward-reference.
    let mut func_count = 0u32;
    for f in fields {
        match f.head() {
            Some("func") => {
                if let SExpr::List(items, _) = f {
                    if let Some(SExpr::Atom(name, _)) = items.get(1) {
                        if let Some(n) = name.strip_prefix('$') {
                            names.funcs.insert(n.to_owned(), func_count);
                        }
                    }
                }
                func_count += 1;
            }
            Some("global") => {
                if let SExpr::List(items, _) = f {
                    if let Some(SExpr::Atom(name, _)) = items.get(1) {
                        if let Some(n) = name.strip_prefix('$') {
                            names.globals.insert(n.to_owned(), module.globals.len() as u32);
                        }
                    }
                    module.globals.push(Global { ty: ValType::I32, mutable: false, init: 0 });
                }
            }
            _ => {}
        }
    }
    module.globals.clear(); // re-parsed for real in pass 2

    // Pass 2: parse fields.
    for f in fields {
        let items = match f {
            SExpr::List(items, _) => items,
            other => return Err(err(other.pos(), "expected a (...) field")),
        };
        match f.head() {
            Some("memory") => {
                let min = items
                    .get(1)
                    .and_then(SExpr::as_atom)
                    .ok_or_else(|| err(f.pos(), "memory needs a min page count"))?;
                module.mem_min_pages = parse_int(min, f.pos())? as u32;
                if let Some(max) = items.get(2).and_then(SExpr::as_atom) {
                    module.mem_max_pages = Some(parse_int(max, f.pos())? as u32);
                }
            }
            Some("global") => {
                let mut idx = 1;
                if matches!(items.get(idx), Some(SExpr::Atom(a, _)) if a.starts_with('$')) {
                    idx += 1;
                }
                let (ty, mutable) = match items.get(idx) {
                    Some(list @ SExpr::List(inner, _)) if list.head() == Some("mut") => {
                        (parse_valtype(&inner[1])?, true)
                    }
                    Some(atom) => (parse_valtype(atom)?, false),
                    None => return Err(err(f.pos(), "global needs a type")),
                };
                idx += 1;
                let init = match items.get(idx) {
                    Some(SExpr::List(inner, p)) => {
                        let head =
                            inner.first().and_then(SExpr::as_atom).unwrap_or_default();
                        let v = inner
                            .get(1)
                            .and_then(SExpr::as_atom)
                            .ok_or_else(|| err(*p, "const needs a value"))?;
                        let v = parse_int(v, *p)?;
                        match head {
                            "i32.const" => v as i32 as u32 as u64,
                            "i64.const" => v as u64,
                            _ => return Err(err(*p, "global init must be a const")),
                        }
                    }
                    _ => return Err(err(f.pos(), "global needs an init expression")),
                };
                module.globals.push(Global { ty, mutable, init });
            }
            Some("func") => {
                let func = parse_func(items, &names, module.globals.len())?;
                let export = func.1;
                let idx = module.push_func(func.0);
                if let Some(name) = export {
                    module.export(name, idx);
                }
            }
            Some("export") => {
                let name = match items.get(1) {
                    Some(SExpr::Str(s, _)) => s.clone(),
                    _ => return Err(err(f.pos(), "export needs a string name")),
                };
                let target = items
                    .get(2)
                    .ok_or_else(|| err(f.pos(), "export needs a (func ...) target"))?;
                if let SExpr::List(inner, p) = target {
                    if inner.first().and_then(SExpr::as_atom) != Some("func") {
                        return Err(err(*p, "only (func ...) exports are supported"));
                    }
                    let idx = resolve_func(inner.get(1), &names, *p)?;
                    module.export(name, idx);
                }
            }
            Some("table") => {
                // (table funcref (elem $f0 $f1 ...)) or (elem direct)
                for item in &items[1..] {
                    if let SExpr::List(inner, _) = item {
                        if inner.first().and_then(SExpr::as_atom) == Some("elem") {
                            for e in &inner[1..] {
                                let idx = resolve_func(Some(e), &names, e.pos())?;
                                module.push_table_entry(idx);
                            }
                        }
                    }
                }
            }
            Some("data") => {
                let offset = match items.get(1) {
                    Some(SExpr::List(inner, p)) => {
                        if inner.first().and_then(SExpr::as_atom) != Some("i32.const") {
                            return Err(err(*p, "data offset must be (i32.const N)"));
                        }
                        parse_int(
                            inner.get(1).and_then(SExpr::as_atom).ok_or_else(|| err(*p, "bad offset"))?,
                            *p,
                        )? as u32
                    }
                    _ => return Err(err(f.pos(), "data needs an offset")),
                };
                let bytes = match items.get(2) {
                    Some(SExpr::Str(s, _)) => s.bytes().collect(),
                    _ => return Err(err(f.pos(), "data needs a string payload")),
                };
                module.push_data(offset, bytes);
            }
            Some(other) => return Err(err(f.pos(), format!("unsupported field `{other}`"))),
            None => return Err(err(f.pos(), "empty field")),
        }
    }
    Ok(module)
}

fn resolve_func(e: Option<&SExpr>, names: &Names, pos: usize) -> Result<u32, ParseError> {
    match e.and_then(SExpr::as_atom) {
        Some(a) => {
            if let Some(n) = a.strip_prefix('$') {
                names.funcs.get(n).copied().ok_or_else(|| err(pos, format!("unknown func ${n}")))
            } else {
                Ok(parse_int(a, pos)? as u32)
            }
        }
        None => Err(err(pos, "expected function reference")),
    }
}

/// Parses a `(func ...)` form; returns the function and an optional inline
/// export name.
fn parse_func(
    items: &[SExpr],
    names: &Names,
    _global_count: usize,
) -> Result<(Func, Option<String>), ParseError> {
    let mut i = 1usize;
    let mut name = String::from("<anon>");
    if let Some(SExpr::Atom(a, _)) = items.get(i) {
        if let Some(n) = a.strip_prefix('$') {
            name = n.to_owned();
            i += 1;
        }
    }
    let mut export = None;
    let mut params: Vec<ValType> = Vec::new();
    let mut result: Option<ValType> = None;
    let mut locals: Vec<ValType> = Vec::new();
    let mut local_names: HashMap<String, u32> = HashMap::new();

    // Header clauses: (export "..."), (param ...), (result ...), (local ...).
    while let Some(SExpr::List(inner, p)) = items.get(i) {
        match inner.first().and_then(SExpr::as_atom) {
            Some("export") => {
                if let Some(SExpr::Str(s, _)) = inner.get(1) {
                    export = Some(s.clone());
                } else {
                    return Err(err(*p, "export needs a string"));
                }
                i += 1;
            }
            Some("param") => {
                let mut j = 1;
                if let Some(SExpr::Atom(a, _)) = inner.get(j) {
                    if let Some(n) = a.strip_prefix('$') {
                        local_names.insert(n.to_owned(), params.len() as u32);
                        j += 1;
                        params.push(parse_valtype(
                            inner.get(j).ok_or_else(|| err(*p, "param needs a type"))?,
                        )?);
                        i += 1;
                        continue;
                    }
                }
                for t in &inner[j..] {
                    params.push(parse_valtype(t)?);
                }
                i += 1;
            }
            Some("result") => {
                result = Some(parse_valtype(
                    inner.get(1).ok_or_else(|| err(*p, "result needs a type"))?,
                )?);
                i += 1;
            }
            Some("local") => {
                let mut j = 1;
                if let Some(SExpr::Atom(a, _)) = inner.get(j) {
                    if let Some(n) = a.strip_prefix('$') {
                        local_names
                            .insert(n.to_owned(), (params.len() + locals.len()) as u32);
                        j += 1;
                        locals.push(parse_valtype(
                            inner.get(j).ok_or_else(|| err(*p, "local needs a type"))?,
                        )?);
                        i += 1;
                        continue;
                    }
                }
                for t in &inner[j..] {
                    locals.push(parse_valtype(t)?);
                }
                i += 1;
            }
            _ => break,
        }
    }

    // Body: flat instructions.
    let mut body = Vec::new();
    let mut label_stack: Vec<Option<String>> = Vec::new();
    let mut k = i;
    while k < items.len() {
        k = parse_instr(items, k, names, &local_names, &mut label_stack, &mut body)?;
    }
    body.push(Op::End);
    Ok((
        Func { name, params, result, locals, body },
        export,
    ))
}

fn resolve_local(
    a: &str,
    local_names: &HashMap<String, u32>,
    pos: usize,
) -> Result<u32, ParseError> {
    if let Some(n) = a.strip_prefix('$') {
        local_names.get(n).copied().ok_or_else(|| err(pos, format!("unknown local ${n}")))
    } else {
        Ok(parse_int(a, pos)? as u32)
    }
}

fn resolve_label(
    a: &str,
    labels: &[Option<String>],
    pos: usize,
) -> Result<u32, ParseError> {
    if let Some(n) = a.strip_prefix('$') {
        for (depth, l) in labels.iter().rev().enumerate() {
            if l.as_deref() == Some(n) {
                return Ok(depth as u32);
            }
        }
        Err(err(pos, format!("unknown label ${n}")))
    } else {
        Ok(parse_int(a, pos)? as u32)
    }
}

#[allow(clippy::too_many_lines)]
fn parse_instr(
    items: &[SExpr],
    k: usize,
    names: &Names,
    local_names: &HashMap<String, u32>,
    labels: &mut Vec<Option<String>>,
    out: &mut Vec<Op>,
) -> Result<usize, ParseError> {
    let tok = &items[k];
    let pos = tok.pos();
    let atom = tok
        .as_atom()
        .ok_or_else(|| err(pos, "folded instruction forms are not supported"))?;

    // Helpers for immediates.
    let next_atom = |j: usize| -> Option<(&str, usize)> {
        items.get(j).and_then(|e| e.as_atom().map(|a| (a, e.pos())))
    };
    let mem_offset = |j: usize| -> (u32, usize) {
        if let Some((a, p)) = next_atom(j) {
            if let Some(v) = a.strip_prefix("offset=") {
                if let Ok(n) = parse_int(v, p) {
                    return (n as u32, j + 1);
                }
            }
        }
        (0, j)
    };

    let simple = |op: Op, out: &mut Vec<Op>| -> Result<usize, ParseError> {
        out.push(op);
        Ok(k + 1)
    };

    match atom {
        "nop" => simple(Op::Nop, out),
        "unreachable" => simple(Op::Unreachable, out),
        "drop" => simple(Op::Drop, out),
        "select" => simple(Op::Select, out),
        "return" => simple(Op::Return, out),
        "memory.size" => simple(Op::MemorySize, out),
        "memory.grow" => simple(Op::MemoryGrow, out),
        "memory.copy" => simple(Op::MemoryCopy, out),
        "memory.fill" => simple(Op::MemoryFill, out),

        "i32.const" => {
            let (a, p) = next_atom(k + 1).ok_or_else(|| err(pos, "i32.const needs a value"))?;
            out.push(Op::I32Const(parse_int(a, p)? as i32));
            Ok(k + 2)
        }
        "i64.const" => {
            let (a, p) = next_atom(k + 1).ok_or_else(|| err(pos, "i64.const needs a value"))?;
            out.push(Op::I64Const(parse_int(a, p)?));
            Ok(k + 2)
        }
        "local.get" | "local.set" | "local.tee" => {
            let (a, p) = next_atom(k + 1).ok_or_else(|| err(pos, "local op needs an index"))?;
            let idx = resolve_local(a, local_names, p)?;
            out.push(match atom {
                "local.get" => Op::LocalGet(idx),
                "local.set" => Op::LocalSet(idx),
                _ => Op::LocalTee(idx),
            });
            Ok(k + 2)
        }
        "global.get" | "global.set" => {
            let (a, p) = next_atom(k + 1).ok_or_else(|| err(pos, "global op needs an index"))?;
            let idx = if let Some(n) = a.strip_prefix('$') {
                *names.globals.get(n).ok_or_else(|| err(p, format!("unknown global ${n}")))?
            } else {
                parse_int(a, p)? as u32
            };
            out.push(if atom == "global.get" { Op::GlobalGet(idx) } else { Op::GlobalSet(idx) });
            Ok(k + 2)
        }
        "call" => {
            let idx = resolve_func(items.get(k + 1), names, pos)?;
            out.push(Op::Call(idx));
            Ok(k + 2)
        }
        "call_indirect" => {
            // call_indirect (type $f) — we reuse a function's signature.
            let idx = match items.get(k + 1) {
                Some(SExpr::List(inner, p)) if inner.first().and_then(SExpr::as_atom) == Some("type") => {
                    resolve_func(inner.get(1), names, *p)?
                }
                other => resolve_func(other, names, pos)?,
            };
            out.push(Op::CallIndirect { type_func: idx });
            Ok(k + 2)
        }
        "block" | "loop" | "if" => {
            let mut j = k + 1;
            let mut label = None;
            if let Some((a, _)) = next_atom(j) {
                if let Some(n) = a.strip_prefix('$') {
                    label = Some(n.to_owned());
                    j = k + 2;
                }
            }
            labels.push(label);
            out.push(match atom {
                "block" => Op::Block,
                "loop" => Op::Loop,
                _ => Op::If,
            });
            Ok(j)
        }
        "else" => simple(Op::Else, out),
        "end" => {
            labels.pop();
            simple(Op::End, out)
        }
        "br" | "br_if" => {
            let (a, p) = next_atom(k + 1).ok_or_else(|| err(pos, "br needs a target"))?;
            let d = resolve_label(a, labels, p)?;
            out.push(if atom == "br" { Op::Br(d) } else { Op::BrIf(d) });
            Ok(k + 2)
        }
        "br_table" => {
            let mut j = k + 1;
            let mut ds = Vec::new();
            while let Some((a, p)) = next_atom(j) {
                match resolve_label(a, labels, p) {
                    Ok(d) => {
                        ds.push(d);
                        j += 1;
                    }
                    Err(_) => break,
                }
            }
            let default = ds.pop().ok_or_else(|| err(pos, "br_table needs targets"))?;
            out.push(Op::BrTable { targets: ds, default });
            Ok(j)
        }

        "i32.load" | "i64.load" | "i32.load8_u" | "i32.load8_s" | "i32.load16_u"
        | "i32.load16_s" | "i32.store" | "i64.store" | "i32.store8" | "i32.store16" => {
            let (offset, j) = mem_offset(k + 1);
            out.push(match atom {
                "i32.load" => Op::I32Load { offset },
                "i64.load" => Op::I64Load { offset },
                "i32.load8_u" => Op::I32Load8U { offset },
                "i32.load8_s" => Op::I32Load8S { offset },
                "i32.load16_u" => Op::I32Load16U { offset },
                "i32.load16_s" => Op::I32Load16S { offset },
                "i32.store" => Op::I32Store { offset },
                "i64.store" => Op::I64Store { offset },
                "i32.store8" => Op::I32Store8 { offset },
                _ => Op::I32Store16 { offset },
            });
            Ok(j)
        }

        _ => {
            let op = match atom {
                "i32.add" => Op::I32Add,
                "i32.sub" => Op::I32Sub,
                "i32.mul" => Op::I32Mul,
                "i32.div_s" => Op::I32DivS,
                "i32.div_u" => Op::I32DivU,
                "i32.rem_s" => Op::I32RemS,
                "i32.rem_u" => Op::I32RemU,
                "i32.and" => Op::I32And,
                "i32.or" => Op::I32Or,
                "i32.xor" => Op::I32Xor,
                "i32.shl" => Op::I32Shl,
                "i32.shr_s" => Op::I32ShrS,
                "i32.shr_u" => Op::I32ShrU,
                "i32.rotl" => Op::I32Rotl,
                "i32.rotr" => Op::I32Rotr,
                "i32.eqz" => Op::I32Eqz,
                "i32.eq" => Op::I32Eq,
                "i32.ne" => Op::I32Ne,
                "i32.lt_s" => Op::I32LtS,
                "i32.lt_u" => Op::I32LtU,
                "i32.gt_s" => Op::I32GtS,
                "i32.gt_u" => Op::I32GtU,
                "i32.le_s" => Op::I32LeS,
                "i32.le_u" => Op::I32LeU,
                "i32.ge_s" => Op::I32GeS,
                "i32.ge_u" => Op::I32GeU,
                "i64.add" => Op::I64Add,
                "i64.sub" => Op::I64Sub,
                "i64.mul" => Op::I64Mul,
                "i64.div_s" => Op::I64DivS,
                "i64.div_u" => Op::I64DivU,
                "i64.rem_s" => Op::I64RemS,
                "i64.rem_u" => Op::I64RemU,
                "i64.and" => Op::I64And,
                "i64.or" => Op::I64Or,
                "i64.xor" => Op::I64Xor,
                "i64.shl" => Op::I64Shl,
                "i64.shr_s" => Op::I64ShrS,
                "i64.shr_u" => Op::I64ShrU,
                "i64.eqz" => Op::I64Eqz,
                "i64.eq" => Op::I64Eq,
                "i64.ne" => Op::I64Ne,
                "i64.lt_s" => Op::I64LtS,
                "i64.lt_u" => Op::I64LtU,
                "i64.gt_s" => Op::I64GtS,
                "i64.gt_u" => Op::I64GtU,
                "i64.le_s" => Op::I64LeS,
                "i64.le_u" => Op::I64LeU,
                "i64.ge_s" => Op::I64GeS,
                "i64.ge_u" => Op::I64GeU,
                "i32.wrap_i64" => Op::I32WrapI64,
                "i64.extend_i32_s" => Op::I64ExtendI32S,
                "i64.extend_i32_u" => Op::I64ExtendI32U,
                _ => return Err(err(pos, format!("unknown instruction `{atom}`"))),
            };
            out.push(op);
            Ok(k + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;
    use crate::validate;

    fn check(src: &str, export: &str, args: &[u64]) -> Option<u64> {
        let m = parse(src).unwrap();
        validate(&m).unwrap();
        Interpreter::new(&m).unwrap().invoke_export(export, args).unwrap()
    }

    #[test]
    fn add_function() {
        let r = check(
            r#"(module (memory 1)
                 (func (export "add") (param i32 i32) (result i32)
                   local.get 0
                   local.get 1
                   i32.add))"#,
            "add",
            &[20, 22],
        );
        assert_eq!(r, Some(42));
    }

    #[test]
    fn named_locals_and_labels() {
        let r = check(
            r#"(module (memory 1)
                 (func (export "sum") (param $n i32) (result i32) (local $acc i32)
                   block $exit
                     loop $top
                       local.get $n
                       i32.eqz
                       br_if $exit
                       local.get $acc
                       local.get $n
                       i32.add
                       local.set $acc
                       local.get $n
                       i32.const 1
                       i32.sub
                       local.set $n
                       br $top
                     end
                   end
                   local.get $acc))"#,
            "sum",
            &[10],
        );
        assert_eq!(r, Some(55));
    }

    #[test]
    fn memory_ops_with_offsets() {
        let r = check(
            r#"(module (memory 2)
                 (func (export "rw") (param $p i32) (result i32)
                   local.get $p
                   i32.const 0xABCD
                   i32.store offset=16
                   local.get $p
                   i32.load offset=16))"#,
            "rw",
            &[128],
        );
        assert_eq!(r, Some(0xABCD));
    }

    #[test]
    fn globals_and_calls() {
        let r = check(
            r#"(module (memory 1)
                 (global $g (mut i32) (i32.const 7))
                 (func $bump (result i32)
                   global.get $g
                   i32.const 1
                   i32.add
                   global.set $g
                   global.get $g)
                 (func (export "main") (result i32)
                   call $bump
                   drop
                   call $bump))"#,
            "main",
            &[],
        );
        assert_eq!(r, Some(9));
    }

    #[test]
    fn table_and_call_indirect() {
        let r = check(
            r#"(module (memory 1)
                 (func $ten (result i32) i32.const 10)
                 (func $twenty (result i32) i32.const 20)
                 (table funcref (elem $ten $twenty))
                 (func (export "pick") (param $i i32) (result i32)
                   local.get $i
                   call_indirect (type $ten)))"#,
            "pick",
            &[1],
        );
        assert_eq!(r, Some(20));
    }

    #[test]
    fn data_segment_and_comments() {
        let r = check(
            r#"(module
                 ;; line comment
                 (memory 1)
                 (data (i32.const 4) "ab")
                 (; block comment ;)
                 (func (export "read") (result i32)
                   i32.const 4
                   i32.load8_u))"#,
            "read",
            &[],
        );
        assert_eq!(r, Some(97)); // 'a'
    }

    #[test]
    fn if_else_parses() {
        let r = check(
            r#"(module (memory 1)
                 (func (export "abs") (param $x i32) (result i32) (local $r i32)
                   local.get $x
                   i32.const 0
                   i32.lt_s
                   if
                     i32.const 0
                     local.get $x
                     i32.sub
                     local.set $r
                   else
                     local.get $x
                     local.set $r
                   end
                   local.get $r))"#,
            "abs",
            &[(-5i32) as u32 as u64],
        );
        assert_eq!(r, Some(5));
    }

    #[test]
    fn parse_errors_have_positions() {
        let e = parse("(module (func (export \"f\") bogus.op))").unwrap_err();
        assert!(e.msg.contains("bogus.op"), "{e}");
        assert!(e.pos > 0);
        assert!(parse("(module").is_err());
        assert!(parse("(module))").is_err());
    }

    #[test]
    fn br_table_parses() {
        let r = check(
            r#"(module (memory 1)
                 (func (export "sw") (param $i i32) (result i32) (local $r i32)
                   block block block
                     local.get $i
                     br_table 0 1 2
                   end
                     i32.const 10 local.set $r local.get $r return
                   end
                     i32.const 20 local.set $r local.get $r return
                   end
                   i32.const 30))"#,
            "sw",
            &[1],
        );
        assert_eq!(r, Some(20));
    }
}
