//! # sfi-wasm: a mini-WebAssembly substrate
//!
//! A compact, from-scratch model of the WebAssembly execution semantics that
//! matter for SFI research: a typed stack-machine IR ([`Op`]), modules with
//! linear memory, globals, function tables and exports ([`Module`]), a
//! validator enforcing Wasm's stack discipline ([`validate`]), a reference
//! interpreter used as the differential-testing oracle
//! ([`interp::Interpreter`]), and a WAT-subset text parser ([`wat`]).
//!
//! ## Scope
//!
//! The subset covers the integer, memory, control-flow and bulk-memory
//! instructions that Wasm/SFI compilers instrument. Floating point is
//! deliberately out of scope: Segue and ColorGuard act on *memory accesses*,
//! and the reproduction's float-heavy benchmark stand-ins use fixed-point
//! kernels with the same access patterns (see DESIGN.md).
//!
//! ## Example
//!
//! ```
//! use sfi_wasm::{Module, FuncBuilder, Op, ValType};
//! use sfi_wasm::interp::Interpreter;
//!
//! let mut module = Module::new(1); // 1 page (64 KiB) of linear memory
//! let add = FuncBuilder::new("add")
//!     .params(&[ValType::I32, ValType::I32])
//!     .result(ValType::I32)
//!     .body(vec![Op::LocalGet(0), Op::LocalGet(1), Op::I32Add, Op::End])
//!     .build();
//! let idx = module.push_func(add);
//! module.export("add", idx);
//! sfi_wasm::validate(&module).unwrap();
//!
//! let mut interp = Interpreter::new(&module).unwrap();
//! let r = interp.invoke_export("add", &[2, 40]).unwrap();
//! assert_eq!(r, Some(42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod interp;
pub mod print;
pub mod wat;

mod module;
mod op;
mod validate;

pub use module::{Func, FuncBuilder, Global, HostImport, Module, PAGE_SIZE};
pub use op::{Op, ValType};
pub use validate::{validate, ValidationError};

/// A Wasm runtime trap (the reference semantics' failure modes).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WasmTrap {
    /// `unreachable` executed.
    Unreachable,
    /// Linear-memory access out of bounds.
    OutOfBoundsMemory {
        /// The (33-bit) effective address that missed.
        addr: u64,
    },
    /// Integer division by zero.
    DivideByZero,
    /// `INT_MIN / -1` style overflow.
    IntegerOverflow,
    /// `call_indirect` with an out-of-range table index.
    UndefinedTableElement,
    /// `call_indirect` signature mismatch.
    IndirectCallTypeMismatch,
    /// Call stack exceeded the configured depth.
    StackExhausted,
    /// Interpreter ran out of fuel (likely an infinite loop).
    FuelExhausted,
    /// A host function reported an error.
    HostError(String),
}

impl core::fmt::Display for WasmTrap {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WasmTrap::Unreachable => f.write_str("unreachable executed"),
            WasmTrap::OutOfBoundsMemory { addr } => {
                write!(f, "out-of-bounds memory access at {addr:#x}")
            }
            WasmTrap::DivideByZero => f.write_str("integer divide by zero"),
            WasmTrap::IntegerOverflow => f.write_str("integer overflow"),
            WasmTrap::UndefinedTableElement => f.write_str("undefined table element"),
            WasmTrap::IndirectCallTypeMismatch => f.write_str("indirect call type mismatch"),
            WasmTrap::StackExhausted => f.write_str("call stack exhausted"),
            WasmTrap::FuelExhausted => f.write_str("fuel exhausted"),
            WasmTrap::HostError(msg) => write!(f, "host error: {msg}"),
        }
    }
}

impl std::error::Error for WasmTrap {}
