//! Module validation: Wasm's stack-typing discipline.
//!
//! The validator implements the standard algorithm from the WebAssembly
//! specification appendix — a value stack of types plus a control stack of
//! frames, with stack-polymorphic typing after unconditional branches.
//! Mini-Wasm restricts block types to `[] -> []` (values do not flow across
//! block boundaries), which simplifies both validation and SFI code
//! generation without constraining the benchmark corpus.

use crate::{Module, Op, ValType};

/// Where and why validation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// The function (debug name) containing the error.
    pub func: String,
    /// Instruction index within the function body.
    pub pc: usize,
    /// The failure.
    pub kind: ErrorKind,
}

/// Validation failure kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorKind {
    /// Operand type mismatch.
    TypeMismatch {
        /// Expected type.
        expected: ValType,
        /// Found type (`None` = empty stack).
        found: Option<ValType>,
    },
    /// A value was popped from an empty (non-polymorphic) stack.
    StackUnderflow,
    /// `end`/`else` without a matching opener, or a missing `end`.
    UnbalancedControl,
    /// `else` in a non-`if` frame.
    ElseOutsideIf,
    /// Branch depth exceeds the current nesting.
    BadBranchDepth(u32),
    /// Reference to an unknown local.
    UnknownLocal(u32),
    /// Reference to an unknown global.
    UnknownGlobal(u32),
    /// Write to an immutable global.
    ImmutableGlobal(u32),
    /// Call of an unknown function index.
    UnknownFunc(u32),
    /// A table entry references an unknown function.
    BadTableEntry(u32),
    /// Values left on the stack at a frame boundary.
    ValueStackNotEmpty,
    /// Function result missing or mistyped at `end`.
    BadResult,
    /// A body does not terminate with `end`.
    MissingEnd,
}

impl core::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "in {} at op {}: {:?}", self.func, self.pc, self.kind)
    }
}

impl std::error::Error for ValidationError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameKind {
    Func,
    Block,
    Loop,
    If,
    Else,
}

struct Frame {
    kind: FrameKind,
    height: usize,
    unreachable: bool,
}

struct Ctx<'m> {
    func_name: &'m str,
    pc: usize,
    stack: Vec<ValType>,
    frames: Vec<Frame>,
}

impl Ctx<'_> {
    fn err(&self, kind: ErrorKind) -> ValidationError {
        ValidationError { func: self.func_name.to_owned(), pc: self.pc, kind }
    }

    fn push(&mut self, t: ValType) {
        self.stack.push(t);
    }

    fn pop(&mut self, expected: ValType) -> Result<(), ValidationError> {
        let frame = self.frames.last().expect("frame stack never empty");
        if self.stack.len() == frame.height {
            if frame.unreachable {
                return Ok(()); // polymorphic stack
            }
            return Err(self.err(ErrorKind::TypeMismatch { expected, found: None }));
        }
        let found = self.stack.pop().expect("checked height");
        if found != expected {
            return Err(self.err(ErrorKind::TypeMismatch { expected, found: Some(found) }));
        }
        Ok(())
    }

    fn set_unreachable(&mut self) {
        let frame = self.frames.last_mut().expect("frame stack never empty");
        self.stack.truncate(frame.height);
        frame.unreachable = true;
    }

    fn open(&mut self, kind: FrameKind) {
        self.frames.push(Frame { kind, height: self.stack.len(), unreachable: false });
    }

    fn check_branch(&self, depth: u32) -> Result<(), ValidationError> {
        // `depth` may target the function frame itself (the implicit
        // outermost label), like Wasm's `br` to the function body.
        if (depth as usize) >= self.frames.len() {
            return Err(self.err(ErrorKind::BadBranchDepth(depth)));
        }
        Ok(())
    }

    /// Mini-Wasm is stricter than Wasm here: since all labels are void, a
    /// branch must carry no extra stack values (height must equal the
    /// target frame's height). This keeps register-stack compilation of
    /// branch merges trivially sound.
    fn check_branch_height(&self, depth: u32) -> Result<(), ValidationError> {
        let frame = &self.frames[self.frames.len() - 1 - depth as usize];
        let cur = self.frames.last().expect("nonempty");
        if !cur.unreachable && self.stack.len() != frame.height {
            return Err(self.err(ErrorKind::ValueStackNotEmpty));
        }
        Ok(())
    }

    fn close_frame(&mut self) -> Result<Frame, ValidationError> {
        let frame = self.frames.pop().ok_or_else(|| self.err(ErrorKind::UnbalancedControl))?;
        if !frame.unreachable && self.stack.len() != frame.height {
            return Err(self.err(ErrorKind::ValueStackNotEmpty));
        }
        self.stack.truncate(frame.height);
        Ok(frame)
    }
}

/// Validates every function, the table and the data segments of a module.
pub fn validate(module: &Module) -> Result<(), ValidationError> {
    for (i, &fidx) in module.table.iter().enumerate() {
        if module.signature(fidx).is_none() {
            return Err(ValidationError {
                func: format!("<table[{i}]>"),
                pc: 0,
                kind: ErrorKind::BadTableEntry(fidx),
            });
        }
    }
    for func in &module.funcs {
        validate_func(module, func)?;
    }
    Ok(())
}

fn validate_func(module: &Module, func: &crate::Func) -> Result<(), ValidationError> {
    use Op::*;
    let mut cx = Ctx {
        func_name: &func.name,
        pc: 0,
        stack: Vec::new(),
        frames: vec![Frame { kind: FrameKind::Func, height: 0, unreachable: false }],
    };

    if func.body.last() != Some(&End) {
        cx.pc = func.body.len().saturating_sub(1);
        return Err(cx.err(ErrorKind::MissingEnd));
    }

    for (pc, op) in func.body.iter().enumerate() {
        cx.pc = pc;
        match op {
            I32Const(_) => cx.push(ValType::I32),
            I64Const(_) => cx.push(ValType::I64),
            LocalGet(i) => {
                let t = func.local_type(*i).ok_or_else(|| cx.err(ErrorKind::UnknownLocal(*i)))?;
                cx.push(t);
            }
            LocalSet(i) => {
                let t = func.local_type(*i).ok_or_else(|| cx.err(ErrorKind::UnknownLocal(*i)))?;
                cx.pop(t)?;
            }
            LocalTee(i) => {
                let t = func.local_type(*i).ok_or_else(|| cx.err(ErrorKind::UnknownLocal(*i)))?;
                cx.pop(t)?;
                cx.push(t);
            }
            GlobalGet(i) => {
                let g = module
                    .globals
                    .get(*i as usize)
                    .ok_or_else(|| cx.err(ErrorKind::UnknownGlobal(*i)))?;
                cx.push(g.ty);
            }
            GlobalSet(i) => {
                let g = module
                    .globals
                    .get(*i as usize)
                    .ok_or_else(|| cx.err(ErrorKind::UnknownGlobal(*i)))?;
                if !g.mutable {
                    return Err(cx.err(ErrorKind::ImmutableGlobal(*i)));
                }
                cx.pop(g.ty)?;
            }
            Drop => {
                // Accept either type: pop whatever is on top.
                let frame = cx.frames.last().expect("frame");
                if cx.stack.len() == frame.height {
                    if !frame.unreachable {
                        return Err(cx.err(ErrorKind::StackUnderflow));
                    }
                } else {
                    cx.stack.pop();
                }
            }
            Select => {
                cx.pop(ValType::I32)?;
                // Both arms must have the same type; in the polymorphic case
                // default to i32.
                let frame_h = cx.frames.last().expect("frame").height;
                let t = if cx.stack.len() > frame_h {
                    *cx.stack.last().expect("nonempty")
                } else {
                    ValType::I32
                };
                cx.pop(t)?;
                cx.pop(t)?;
                cx.push(t);
            }

            // i32 binary
            I32Add | I32Sub | I32Mul | I32DivS | I32DivU | I32RemS | I32RemU | I32And | I32Or
            | I32Xor | I32Shl | I32ShrS | I32ShrU | I32Rotl | I32Rotr => {
                cx.pop(ValType::I32)?;
                cx.pop(ValType::I32)?;
                cx.push(ValType::I32);
            }
            I32Eq | I32Ne | I32LtS | I32LtU | I32GtS | I32GtU | I32LeS | I32LeU | I32GeS
            | I32GeU => {
                cx.pop(ValType::I32)?;
                cx.pop(ValType::I32)?;
                cx.push(ValType::I32);
            }
            I32Eqz => {
                cx.pop(ValType::I32)?;
                cx.push(ValType::I32);
            }

            // i64 binary
            I64Add | I64Sub | I64Mul | I64DivS | I64DivU | I64RemS | I64RemU | I64And | I64Or
            | I64Xor | I64Shl | I64ShrS | I64ShrU => {
                cx.pop(ValType::I64)?;
                cx.pop(ValType::I64)?;
                cx.push(ValType::I64);
            }
            I64Eq | I64Ne | I64LtS | I64LtU | I64GtS | I64GtU | I64LeS | I64LeU | I64GeS
            | I64GeU => {
                cx.pop(ValType::I64)?;
                cx.pop(ValType::I64)?;
                cx.push(ValType::I32);
            }
            I64Eqz => {
                cx.pop(ValType::I64)?;
                cx.push(ValType::I32);
            }

            I32WrapI64 => {
                cx.pop(ValType::I64)?;
                cx.push(ValType::I32);
            }
            I64ExtendI32S | I64ExtendI32U => {
                cx.pop(ValType::I32)?;
                cx.push(ValType::I64);
            }

            I32Load { .. } | I32Load8U { .. } | I32Load8S { .. } | I32Load16U { .. }
            | I32Load16S { .. } => {
                cx.pop(ValType::I32)?;
                cx.push(ValType::I32);
            }
            I64Load { .. } => {
                cx.pop(ValType::I32)?;
                cx.push(ValType::I64);
            }
            I32Store { .. } | I32Store8 { .. } | I32Store16 { .. } => {
                cx.pop(ValType::I32)?;
                cx.pop(ValType::I32)?;
            }
            I64Store { .. } => {
                cx.pop(ValType::I64)?;
                cx.pop(ValType::I32)?;
            }
            MemorySize => cx.push(ValType::I32),
            MemoryGrow => {
                cx.pop(ValType::I32)?;
                cx.push(ValType::I32);
            }
            MemoryCopy | MemoryFill => {
                cx.pop(ValType::I32)?;
                cx.pop(ValType::I32)?;
                cx.pop(ValType::I32)?;
            }

            Block => cx.open(FrameKind::Block),
            Loop => cx.open(FrameKind::Loop),
            If => {
                cx.pop(ValType::I32)?;
                cx.open(FrameKind::If);
            }
            Else => {
                let frame = cx.close_frame()?;
                if frame.kind != FrameKind::If {
                    return Err(cx.err(ErrorKind::ElseOutsideIf));
                }
                cx.open(FrameKind::Else);
            }
            End => {
                if cx.frames.len() == 1 {
                    // Function frame: the fall-through result (if any) sits
                    // on the stack here.
                    if pc != func.body.len() - 1 {
                        return Err(cx.err(ErrorKind::UnbalancedControl));
                    }
                    let unreachable = cx.frames.last().expect("frame").unreachable;
                    if !unreachable {
                        if let Some(rt) = func.result {
                            cx.pop(rt).map_err(|mut e| {
                                e.kind = ErrorKind::BadResult;
                                e
                            })?;
                        }
                        if !cx.stack.is_empty() {
                            return Err(cx.err(ErrorKind::ValueStackNotEmpty));
                        }
                    }
                    cx.frames.pop();
                } else {
                    cx.close_frame()?;
                }
            }
            Br(d) => {
                cx.check_branch(*d)?;
                cx.check_branch_height(*d)?;
                cx.set_unreachable();
            }
            BrIf(d) => {
                cx.pop(ValType::I32)?;
                cx.check_branch(*d)?;
                cx.check_branch_height(*d)?;
            }
            BrTable { targets, default } => {
                cx.pop(ValType::I32)?;
                for t in targets {
                    cx.check_branch(*t)?;
                    cx.check_branch_height(*t)?;
                }
                cx.check_branch(*default)?;
                cx.check_branch_height(*default)?;
                cx.set_unreachable();
            }
            Return => {
                if let Some(rt) = func.result {
                    cx.pop(rt)?;
                }
                cx.set_unreachable();
            }
            Call(idx) => {
                let (params, result) = module
                    .signature(*idx)
                    .ok_or_else(|| cx.err(ErrorKind::UnknownFunc(*idx)))?;
                let (params, result) = (params.to_vec(), result);
                for p in params.iter().rev() {
                    cx.pop(*p)?;
                }
                if let Some(r) = result {
                    cx.push(r);
                }
            }
            CallIndirect { type_func } => {
                let (params, result) = module
                    .signature(*type_func)
                    .ok_or_else(|| cx.err(ErrorKind::UnknownFunc(*type_func)))?;
                let (params, result) = (params.to_vec(), result);
                cx.pop(ValType::I32)?; // table index
                for p in params.iter().rev() {
                    cx.pop(*p)?;
                }
                if let Some(r) = result {
                    cx.push(r);
                }
            }
            Unreachable => cx.set_unreachable(),
            Nop => {}
        }

    }

    // The function frame must have been closed by the final `End`.
    if !cx.frames.is_empty() {
        cx.pc = func.body.len() - 1;
        return Err(cx.err(ErrorKind::UnbalancedControl));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FuncBuilder, Global};

    fn module_with(body: Vec<Op>, result: Option<ValType>) -> Module {
        let mut m = Module::new(1);
        let mut b = FuncBuilder::new("f").params(&[ValType::I32, ValType::I64]);
        if let Some(r) = result {
            b = b.result(r);
        }
        m.push_func(b.locals(&[ValType::I32]).body(body).build());
        m
    }

    #[test]
    fn simple_arith_validates() {
        let m = module_with(
            vec![Op::LocalGet(0), Op::I32Const(1), Op::I32Add, Op::Drop, Op::End],
            None,
        );
        validate(&m).unwrap();
    }

    #[test]
    fn type_mismatch_caught() {
        let m = module_with(vec![Op::LocalGet(1), Op::I32Const(1), Op::I32Add, Op::Drop, Op::End], None);
        let err = validate(&m).unwrap_err();
        assert!(
            matches!(err.kind, ErrorKind::TypeMismatch { expected: ValType::I32, found: Some(ValType::I64) }),
            "{err:?}"
        );
    }

    #[test]
    fn underflow_caught() {
        let m = module_with(vec![Op::I32Add, Op::End], None);
        let err = validate(&m).unwrap_err();
        assert!(matches!(err.kind, ErrorKind::TypeMismatch { found: None, .. }), "{err:?}");
    }

    #[test]
    fn unknown_local_caught() {
        let m = module_with(vec![Op::LocalGet(9), Op::Drop, Op::End], None);
        assert!(matches!(validate(&m).unwrap_err().kind, ErrorKind::UnknownLocal(9)));
    }

    #[test]
    fn block_structure() {
        let m = module_with(
            vec![
                Op::Block,
                Op::LocalGet(0),
                Op::BrIf(0),
                Op::Loop,
                Op::LocalGet(0),
                Op::BrIf(1),
                Op::Br(0),
                Op::End,
                Op::End,
                Op::End,
            ],
            None,
        );
        validate(&m).unwrap();
    }

    #[test]
    fn unbalanced_control_caught() {
        // Balanced: two blocks plus the function-level End.
        let ok = module_with(vec![Op::Block, Op::Block, Op::End, Op::End, Op::End], None);
        validate(&ok).unwrap();
        // [Block, End] closes the block but leaves no function-level End.
        let missing_func_end = module_with(vec![Op::Block, Op::End], None);
        assert!(matches!(
            validate(&missing_func_end).unwrap_err().kind,
            ErrorKind::UnbalancedControl
        ));
        // [Block] + builder-added End: the End closes the block, again
        // leaving the function frame open.
        let unclosed = module_with(vec![Op::Block], None);
        assert!(validate(&unclosed).is_err());
    }

    #[test]
    fn bad_branch_depth_caught() {
        let m = module_with(vec![Op::Block, Op::Br(5), Op::End, Op::End], None);
        assert!(matches!(validate(&m).unwrap_err().kind, ErrorKind::BadBranchDepth(5)));
    }

    #[test]
    fn values_may_not_cross_block_end() {
        let m = module_with(vec![Op::Block, Op::I32Const(1), Op::End, Op::Drop, Op::End], None);
        assert!(matches!(validate(&m).unwrap_err().kind, ErrorKind::ValueStackNotEmpty));
    }

    #[test]
    fn else_outside_if_caught() {
        let m = module_with(vec![Op::Block, Op::Else, Op::End, Op::End], None);
        assert!(matches!(validate(&m).unwrap_err().kind, ErrorKind::ElseOutsideIf));
    }

    #[test]
    fn immutable_global_write_caught() {
        let mut m = Module::new(1);
        m.push_global(Global { ty: ValType::I32, mutable: false, init: 0 });
        m.push_func(
            FuncBuilder::new("f").body(vec![Op::I32Const(1), Op::GlobalSet(0), Op::End]).build(),
        );
        assert!(matches!(validate(&m).unwrap_err().kind, ErrorKind::ImmutableGlobal(0)));
    }

    #[test]
    fn call_signature_checked() {
        let mut m = Module::new(1);
        let callee = m.push_func(
            FuncBuilder::new("callee")
                .params(&[ValType::I64])
                .result(ValType::I32)
                .body(vec![Op::I32Const(0), Op::End])
                .build(),
        );
        m.push_func(
            FuncBuilder::new("caller")
                .body(vec![Op::I32Const(0), Op::Call(callee), Op::Drop, Op::End])
                .build(),
        );
        let err = validate(&m).unwrap_err();
        assert!(matches!(err.kind, ErrorKind::TypeMismatch { expected: ValType::I64, .. }));
    }

    #[test]
    fn bad_table_entry_caught() {
        let mut m = Module::new(1);
        m.push_table_entry(42);
        assert!(matches!(validate(&m).unwrap_err().kind, ErrorKind::BadTableEntry(42)));
    }

    #[test]
    fn unreachable_makes_stack_polymorphic() {
        let m = module_with(
            vec![Op::Unreachable, Op::I32Add, Op::Drop, Op::End],
            None,
        );
        validate(&m).unwrap();
    }

    #[test]
    fn return_checks_result_type() {
        let m = module_with(vec![Op::I64Const(1), Op::Return, Op::End], Some(ValType::I32));
        assert!(matches!(
            validate(&m).unwrap_err().kind,
            ErrorKind::TypeMismatch { expected: ValType::I32, .. }
        ));
    }

}
