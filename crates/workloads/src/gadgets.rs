//! Seeded attacker-gadget corpus for the speculative-leak harness
//! (DESIGN.md §16).
//!
//! Each gadget is a self-contained module exporting `run : [] -> i32` that
//! is **architecturally benign** — every committed memory access is
//! in-bounds, so every strategy runs it to completion with the same result
//! — but whose *transient* wrong-path behavior reproduces a classic
//! Spectre shape against the sandbox:
//!
//! - **Bounds-check bypass** (`bcb_*`): a guard branch is trained
//!   in-bounds, then presented one hostile index. The final trial takes
//!   the other direction architecturally, but the mispredicted window
//!   runs the guarded body with the hostile index: a byte load reaches
//!   the planted secret, and a second access (load or store) transmits it
//!   through a secret-derived address.
//! - **Transient type confusion** (`confused_deputy*`): an indirect call
//!   site is trained onto a memory-touching callee, then retargeted to a
//!   harmless one with a hostile argument. The stale BTB entry sends the
//!   transient front end into the *old* callee, which runs with the new
//!   argument — the classic confused-deputy shape.
//! - **Contention probe** (`probe_benign`): mispredicts on purpose but
//!   only ever touches attacker-chosen *in-bounds* lines. It must report
//!   **zero** leaks everywhere — the true-negative row that keeps the
//!   detector honest.
//!
//! The hostile index is [`SECRET_INDEX`]: the harness plants its secret
//! `0x1000_0000` bytes past the heap base (`sfi_core::harness` couples to
//! this via its own `SECRET_OFFSET`), far enough that no component-masked
//! address can reach it, close enough that any unmasked 32-bit index can.

use crate::Workload;

/// The linear-memory index a hostile trial presents: lands `0x40` bytes
/// into the harness's planted secret region.
pub const SECRET_INDEX: u32 = 0x1000_0040;

/// In-bounds limit the guard branches enforce (well inside the one-page
/// test memory).
const LIMIT: u32 = 0x1000;

/// Bounds-check-bypass gadget, load-transmit variant: transiently reads
/// `mem[secret]` and loads from an address derived from the stolen byte.
pub fn bounds_check_bypass(trials: u32, secret_index: u32, stride: u32) -> String {
    format!(
        r#"(module (memory 1)
  (func $victim (param $i i32) (result i32)
    (local $x i32) (local $y i32)
    local.get $i i32.const {LIMIT} i32.lt_u
    if
      local.get $i i32.load8_u local.set $x
      local.get $x i32.const 63 i32.and i32.const {stride} i32.mul i32.load local.set $y
    end
    local.get $y)
  (func (export "run") (result i32)
    (local $t i32) (local $acc i32)
    block loop
      local.get $t i32.const {trials} i32.ge_u br_if 1
      local.get $t i32.const 0xFFC i32.and call $victim
      local.get $acc i32.add local.set $acc
      local.get $t i32.const 1 i32.add local.set $t
      br 0
    end end
    ;; hostile trial: the guard fails architecturally, so the body is
    ;; skipped — only the mispredicted window sees the secret index.
    i32.const {secret_index} call $victim
    local.get $acc i32.add local.set $acc
    local.get $acc))"#
    )
}

/// Bounds-check-bypass gadget, store-transmit variant: the stolen byte
/// feeds a *store* address instead of a load address.
pub fn bounds_check_bypass_store(trials: u32, secret_index: u32) -> String {
    format!(
        r#"(module (memory 1)
  (func $victim (param $i i32)
    (local $x i32)
    local.get $i i32.const {LIMIT} i32.lt_u
    if
      local.get $i i32.load8_u local.set $x
      local.get $x i32.const 63 i32.and i32.const 64 i32.mul
      i32.const 1 i32.store8
    end)
  (func (export "run") (result i32)
    (local $t i32) (local $acc i32)
    block loop
      local.get $t i32.const {trials} i32.ge_u br_if 1
      local.get $t i32.const 0xFFC i32.and call $victim
      local.get $t i32.const 1 i32.add local.set $t
      br 0
    end end
    i32.const {secret_index} call $victim
    ;; checksum over the probe array (all committed stores were in-bounds)
    i32.const 0 local.set $t
    block loop
      local.get $t i32.const 64 i32.ge_u br_if 1
      local.get $acc
      local.get $t i32.const 64 i32.mul i32.load8_u
      i32.add local.set $acc
      local.get $t i32.const 1 i32.add local.set $t
      br 0
    end end
    local.get $acc))"#
    )
}

/// Transient type-confusion gadget: trains an indirect call site onto
/// `$deputy` (which dereferences its argument), then drives the **same
/// static site** to `$harmless` with a hostile argument on the final
/// trip (slot and argument are selected branchlessly so the only trained
/// branches are the loop's). The stale BTB entry replays
/// `$deputy(secret_index)` transiently.
pub fn type_confusion(trials: u32, secret_index: u32, stride: u32) -> String {
    format!(
        r#"(module (memory 1)
  (func $harmless (param $i i32) (result i32)
    local.get $i i32.const 15 i32.and)
  (func $deputy (param $i i32) (result i32)
    (local $x i32)
    local.get $i i32.load8_u local.set $x
    local.get $x i32.const 63 i32.and i32.const {stride} i32.mul i32.load)
  (table funcref (elem $harmless $deputy))
  (func (export "run") (result i32)
    (local $t i32) (local $acc i32) (local $last i32)
    block loop
      local.get $t i32.const {trials} i32.gt_u br_if 1
      local.get $t i32.const {trials} i32.eq local.set $last
      ;; arg  = last ? secret : t & 0xFFC
      i32.const {secret_index}
      local.get $t i32.const 0xFFC i32.and
      local.get $last select
      ;; slot = last ? 0 ($harmless) : 1 ($deputy)
      i32.const 0 i32.const 1 local.get $last select
      call_indirect (type $harmless)
      local.get $acc i32.add local.set $acc
      local.get $t i32.const 1 i32.add local.set $t
      br 0
    end end
    local.get $acc))"#
    )
}

/// Contention probe: mispredicts like the bypass gadgets but the guarded
/// body only touches attacker-chosen **in-bounds** lines. True-negative
/// control — zero leaks expected in every strategy × mitigation cell.
pub fn contention_probe(trials: u32) -> String {
    format!(
        r#"(module (memory 1)
  (func $probe (param $i i32) (result i32)
    (local $y i32)
    local.get $i i32.const {LIMIT} i32.lt_u
    if
      local.get $i i32.const 63 i32.and i32.const 64 i32.mul i32.load local.set $y
    end
    local.get $y)
  (func (export "run") (result i32)
    (local $t i32) (local $acc i32)
    block loop
      local.get $t i32.const {trials} i32.ge_u br_if 1
      local.get $t i32.const 0xFFC i32.and call $probe
      local.get $acc i32.add local.set $acc
      local.get $t i32.const 1 i32.add local.set $t
      br 0
    end end
    ;; the guard still sees one failing trial, so the site mispredicts —
    ;; but the index is in-bounds-after-masking on the wrong path too.
    i32.const 0x7FFF0 call $probe
    local.get $acc i32.add local.set $acc
    local.get $acc))"#
    )
}

/// The fixed gadget corpus: two instances per leak class plus the
/// true-negative control.
pub fn gadgets() -> Vec<Workload> {
    vec![
        Workload::new("bcb_load", bounds_check_bypass(64, SECRET_INDEX, 64)),
        Workload::new("bcb_load_wide", bounds_check_bypass(96, SECRET_INDEX + 0x200, 256)),
        Workload::new("bcb_store", bounds_check_bypass_store(64, SECRET_INDEX + 0x80)),
        Workload::new("confused_deputy", type_confusion(32, SECRET_INDEX, 64)),
        Workload::new("confused_deputy_wide", type_confusion(48, SECRET_INDEX + 0x400, 128)),
        Workload::new("probe_benign", contention_probe(64)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_parses_and_validates() {
        for w in gadgets() {
            let m = w.module();
            assert!(m.exports.contains_key("run"), "{} exports run", w.name);
        }
    }

    #[test]
    fn secret_index_is_out_of_reach_of_masked_addresses() {
        // One test page, scale ≤ 8: no component-masked address can get
        // near the secret, but a 32-bit index reaches it directly.
        let mem_size: u64 = 0x1_0000;
        assert!(8 * (mem_size - 1) + 0x1000 < u64::from(SECRET_INDEX));
        assert!(u64::from(SECRET_INDEX) < u64::from(u32::MAX));
    }
}
