//! # sfi-workloads: the benchmark corpus
//!
//! Mini-Wasm stand-ins for every benchmark suite the paper evaluates
//! (§6): SPEC CPU 2006 (Figure 3, Table 2), SPEC CPU 2017 (Figure 5,
//! LFI), Sightglass (Figure 4, WAMR), PolybenchC and Dhrystone (§6.2),
//! and the Firefox library-sandboxing workloads — font shaping and
//! XML parsing (§6.1).
//!
//! We cannot run the actual SPEC sources; what the figures need is
//! per-benchmark *relative* behaviour. Each stand-in is a mini-Wasm kernel
//! (see [`kernels`]) whose memory-access density, address-pattern
//! complexity and working-set size are calibrated to the corresponding
//! benchmark family — including the outliers: `429_mcf` carries a
//! 64-bit-pointer native variant (pointer compression makes the Wasm build
//! *faster* than native), and `473_astar` is fetch-bandwidth-bound so that
//! Segue's longer encodings cost slightly more than they save.
//!
//! ```
//! let spec = sfi_workloads::spec2006();
//! assert_eq!(spec.len(), 10);
//! let module = spec[0].module();          // parsed, validated mini-Wasm
//! assert!(module.export_index("run").is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gadgets;
pub mod genprog;
pub mod kernels;

use sfi_wasm::Module;

/// One benchmark: a named mini-Wasm program exporting `run : [] -> i32`.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The benchmark's display name (matches the paper's figures).
    pub name: &'static str,
    /// WAT source of the Wasm build.
    pub wat: String,
    /// WAT source of the native build, when its data layout differs (the
    /// 64-bit-pointer variant); `None` means the Wasm source is used.
    pub native_wat: Option<String>,
}

impl Workload {
    fn new(name: &'static str, wat: String) -> Workload {
        Workload { name, wat, native_wat: None }
    }

    /// Parses and validates the Wasm build.
    ///
    /// # Panics
    ///
    /// Panics if the kernel fails to parse or validate — corpus bugs, not
    /// runtime conditions.
    pub fn module(&self) -> Module {
        let m = sfi_wasm::wat::parse(&self.wat)
            .unwrap_or_else(|e| panic!("{}: WAT parse: {e}", self.name));
        sfi_wasm::validate(&m).unwrap_or_else(|e| panic!("{}: validation: {e}", self.name));
        m
    }

    /// Parses and validates the native build (64-bit-pointer data layout
    /// where it differs; otherwise identical to [`Workload::module`]).
    pub fn native_module(&self) -> Module {
        match &self.native_wat {
            Some(src) => {
                let m = sfi_wasm::wat::parse(src)
                    .unwrap_or_else(|e| panic!("{}: native WAT parse: {e}", self.name));
                sfi_wasm::validate(&m)
                    .unwrap_or_else(|e| panic!("{}: native validation: {e}", self.name));
                m
            }
            None => self.module(),
        }
    }
}

/// The Wasm-compatible SPEC CPU 2006 subset of Figure 3 / Table 2
/// (ten benchmarks, following Narayan et al.'s selection).
pub fn spec2006() -> Vec<Workload> {
    vec![
        Workload::new("401_bzip2", kernels::compress(120_000, 8)),
        Workload {
            name: "429_mcf",
            // 8-byte nodes for Wasm (32-bit "pointers")…
            wat: kernels::pointer_chase(4_096, 8, 220_000, 16),
            // …16-byte nodes for native (64-bit pointers): double the
            // working set, double the dTLB/dcache pressure.
            native_wat: Some(kernels::pointer_chase(4_096, 16, 220_000, 16)),
        },
        Workload::new("433_milc", kernels::matmul(48, 4)),
        Workload::new("444_namd", kernels::nbody(320, 3, 4)),
        Workload::new("445_gobmk", kernels::branchy(160_000, 4)),
        Workload::new("458_sjeng", kernels::switch_dispatch(130_000, 12, 4)),
        Workload::new("462_libquantum", kernels::bitops(350_000, 4)),
        Workload::new("464_h264ref", kernels::blockcopy_struct(2_500, 2048, 4)),
        Workload::new("470_lbm", kernels::stencil(12_000, 22, 4)),
        // astar: tight unrolled random-access loop — fetch-bound, so the
        // gs/addr32 prefixes cost Segue slightly more than they save.
        Workload::new("473_astar", kernels::random_access(220_000, 32768, 4, 4)),
    ]
}

/// The 14-benchmark SPEC CPU 2017 SPECrate subset used by the LFI
/// evaluation (Figure 5).
pub fn spec2017() -> Vec<Workload> {
    vec![
        Workload::new("502_gcc_r", kernels::compress(100_000, 8)),
        Workload {
            name: "505_mcf_r",
            wat: kernels::pointer_chase(4_096, 8, 200_000, 16),
            native_wat: Some(kernels::pointer_chase(4_096, 16, 200_000, 16)),
        },
        Workload::new("508_namd_r", kernels::nbody(300, 3, 4)),
        Workload::new("510_parest_r", kernels::matmul(44, 4)),
        Workload::new("511_povray_r", kernels::nbody(260, 3, 4)),
        Workload::new("519_lbm_r", kernels::stencil(11_000, 20, 4)),
        Workload::new("520_omnetpp_r", kernels::pointer_chase(8_192, 12, 180_000, 8)),
        Workload::new("523_xalancbmk_r", kernels::xml_parse(200_000, 8)),
        Workload::new("525_x264_r", kernels::blockcopy_struct(2_200, 2048, 4)),
        Workload::new("531_deepsjeng_r", kernels::switch_dispatch(120_000, 16, 4)),
        Workload::new("538_imagick_r", kernels::stencil(9_000, 22, 4)),
        Workload::new("541_leela_r", kernels::branchy(150_000, 4)),
        Workload::new("544_nab_r", kernels::nbody(280, 3, 4)),
        Workload::new("557_xz_r", kernels::compress(110_000, 8)),
    ]
}

/// The Sightglass micro-suite of Figure 4 (WAMR).
pub fn sightglass() -> Vec<Workload> {
    vec![
        Workload::new("base64", kernels::base64(90_000, 4)),
        Workload::new("fib2", kernels::fib(23, 1)),
        Workload::new("gimli", kernels::bitops(280_000, 1)),
        Workload::new("heapsort", kernels::heapsort(24_000, 4)),
        Workload::new("matrix", kernels::matmul(40, 2)),
        Workload::new("memmove", kernels::blockcopy(1_600, 4096, 4)),
        Workload::new("nestedloop", kernels::nestedloop(120, 90, 40, 1)),
        Workload::new("nestedloop2", kernels::nestedloop(60, 60, 120, 1)),
        Workload::new("nestedloop3", kernels::nestedloop(350, 35, 35, 1)),
        Workload::new("random", kernels::random_access(240_000, 65536, 1, 2)),
        Workload::new("seqhash", kernels::bitops(300_000, 1)),
        Workload::new("sieve", kernels::sieve(4_096, 60, 4)),
        Workload::new("strchr", kernels::strchr(30_000, 12, 1)),
        Workload::new("switch2", kernels::switch_dispatch(140_000, 20, 1)),
    ]
}

/// A PolybenchC-like selection (§6.2).
pub fn polybench() -> Vec<Workload> {
    vec![
        Workload::new("2mm", kernels::matmul(36, 2)),
        Workload::new("3mm", kernels::matmul(42, 2)),
        Workload::new("atax", kernels::stream(260_000, 6, 8)),
        Workload::new("bicg", kernels::stream(200_000, 7, 8)),
        Workload {
            name: "mvt",
            wat: kernels::pointer_chase(8_192, 8, 160_000, 8),
            native_wat: Some(kernels::pointer_chase(8_192, 16, 160_000, 8)),
        },
        Workload {
            name: "durbin",
            wat: kernels::pointer_chase(8_192, 8, 150_000, 8),
            native_wat: Some(kernels::pointer_chase(8_192, 16, 150_000, 8)),
        },
        Workload {
            name: "trmm",
            wat: kernels::pointer_chase(6_144, 8, 140_000, 8),
            native_wat: Some(kernels::pointer_chase(6_144, 16, 140_000, 8)),
        },
        Workload::new("jacobi-1d", kernels::stencil(10_000, 24, 2)),
        Workload::new("seidel-2d", kernels::stencil(14_000, 16, 2)),
        Workload::new("gemm", kernels::matmul(46, 2)),
    ]
}

/// The Dhrystone workload (§6.2).
pub fn dhrystone() -> Workload {
    Workload {
        name: "dhrystone",
        wat: kernels::dhrystone(70_000, 32, 1),
        native_wat: Some(kernels::dhrystone(70_000, 64, 1)),
    }
}

/// Firefox's font-rendering workload: libgraphite-shaped glyph shaping
/// (§6.1). Each call shapes one run of text; Firefox invokes the sandboxed
/// library once per glyph run, so the §6.1 benchmark charges a transition
/// (with segment-base set) per invocation.
pub fn firefox_font() -> Workload {
    Workload::new("firefox_font", kernels::font_shaping(96, 120_000, 4))
}

/// Firefox's XML parsing workload: libexpat-shaped SVG scanning (§6.1).
pub fn firefox_xml() -> Workload {
    Workload::new("firefox_xml", kernels::xml_parse(260_000, 8))
}

/// FaaS-shaped hot modules (figX_tiers): request hashing, request
/// filtering and response templating. Short per-invocation work over
/// loops with 6–8 live locals — the population the tiered compiler's
/// promotion policy is sized for (hot enough to recompile, small enough
/// that baseline compile latency matters on cold spawn).
pub fn faas() -> Vec<Workload> {
    vec![
        Workload::new("faas_hash_lb", kernels::hash_lb(60_000, 4096, 2)),
        Workload::new("faas_regex_filter", kernels::regex_filter(500_000, 10)),
        Workload::new("faas_html_template", kernels::html_template(400_000, 8)),
    ]
}

/// Every workload in the corpus (for sweep tests).
pub fn all() -> Vec<Workload> {
    let mut v = spec2006();
    v.extend(spec2017());
    v.extend(sightglass());
    v.extend(polybench());
    v.push(dhrystone());
    v.push(firefox_font());
    v.push(firefox_xml());
    v.extend(faas());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_parses_and_validates() {
        for w in all() {
            let m = w.module();
            assert!(m.export_index("run").is_some(), "{} must export run", w.name);
            let nm = w.native_module();
            assert!(nm.export_index("run").is_some());
        }
    }

    #[test]
    fn suites_have_the_papers_sizes() {
        assert_eq!(spec2006().len(), 10, "Figure 3 has ten benchmarks");
        assert_eq!(spec2017().len(), 14, "Figure 5 has fourteen benchmarks");
        assert_eq!(sightglass().len(), 14, "Figure 4 has fourteen benchmarks");
    }

    #[test]
    fn workloads_terminate_and_are_deterministic_in_the_interpreter() {
        // Spot-check a fast subset end-to-end in the interpreter.
        for w in [
            &sightglass()[1],  // fib2
            &sightglass()[6],  // nestedloop
            &spec2006()[2],    // milc (matmul 48)
        ] {
            let m = w.module();
            let mut i1 = sfi_wasm::interp::Interpreter::new(&m).unwrap();
            let mut i2 = sfi_wasm::interp::Interpreter::new(&m).unwrap();
            let r1 = i1.invoke_export("run", &[]).unwrap();
            let r2 = i2.invoke_export("run", &[]).unwrap();
            assert_eq!(r1, r2, "{} must be deterministic", w.name);
            assert!(r1.is_some());
        }
    }

    #[test]
    fn corpus_survives_print_parse_round_trips() {
        // The pretty-printer (sfi_wasm::print) must reproduce every corpus
        // module exactly (bodies, tables, globals, data).
        for w in all() {
            let m1 = w.module();
            let printed = sfi_wasm::print::print(&m1);
            let m2 = sfi_wasm::wat::parse(&printed)
                .unwrap_or_else(|e| panic!("{}: reparse: {e}", w.name));
            sfi_wasm::validate(&m2).unwrap_or_else(|e| panic!("{}: revalidate: {e}", w.name));
            assert_eq!(m1.funcs.len(), m2.funcs.len(), "{}", w.name);
            assert_eq!(m1.table, m2.table, "{}", w.name);
            assert_eq!(m1.globals, m2.globals, "{}", w.name);
            for (f1, f2) in m1.funcs.iter().zip(&m2.funcs) {
                assert_eq!(f1.body, f2.body, "{}: bodies must round-trip", w.name);
                assert_eq!(f1.params, f2.params, "{}", w.name);
                assert_eq!(f1.locals, f2.locals, "{}", w.name);
            }
        }
    }

    #[test]
    fn mcf_variants_differ_only_in_layout() {
        let mcf = &spec2006()[1];
        assert_eq!(mcf.name, "429_mcf");
        assert!(mcf.native_wat.is_some());
        assert_ne!(mcf.wat, *mcf.native_wat.as_ref().unwrap());
    }
}
