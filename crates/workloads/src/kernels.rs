//! Parameterized mini-Wasm kernel generators.
//!
//! Each generator returns WAT for a module exporting `run : [] -> i32`
//! (a checksum, so dead-code elimination can never trivialize a kernel —
//! not that this compiler does any, but the interpreter/compiled diff needs
//! observable results). Kernels are shaped after the benchmark families the
//! paper evaluates: streaming, pointer chasing, stencils, matrix math,
//! branchy search, bit mixing, block copies, sorting, compression, byte
//! scanning and table dispatch. Working-set sizes and address-pattern
//! complexity are the calibration knobs (see DESIGN.md §5).

/// Linear congruential generator step, as WAT (x = x*1103515245 + 12345).
fn lcg(x: &str) -> String {
    format!(
        "local.get {x} i32.const 1103515245 i32.mul i32.const 12345 i32.add local.set {x}"
    )
}

/// A `$fill` function writing `n` pseudo-random bytes at offset 0.
fn fill_func() -> String {
    format!(
        r#"(func $fill (param $n i32) (local $i i32) (local $x i32)
    i32.const 99991 local.set $x
    block loop
      local.get $i local.get $n i32.ge_u br_if 1
      {lcg}
      local.get $i
      local.get $x i32.const 16 i32.shr_u
      i32.store8
      local.get $i i32.const 1 i32.add local.set $i
      br 0
    end end)"#,
        lcg = lcg("$x")
    )
}

/// Streaming sum + write-back over `ws_bytes` of memory, `iters` passes.
/// Simple `[i]`-style addressing: low SFI overhead, dcache-bound for large
/// working sets (lbm/libquantum/xz-shaped).
pub fn stream(ws_bytes: u32, iters: u32, pages: u32) -> String {
    format!(
        r#"(module (memory {pages})
  {fill}
  (func (export "run") (result i32)
    (local $it i32) (local $i i32) (local $acc i32)
    i32.const {ws_bytes} call $fill
    block loop
      local.get $it i32.const {iters} i32.ge_u br_if 1
      i32.const 0 local.set $i
      block loop
        local.get $i i32.const {ws_bytes} i32.ge_u br_if 1
        local.get $acc
        local.get $i i32.load
        i32.add
        local.set $acc
        local.get $i
        local.get $acc
        i32.store offset=4
        local.get $i i32.const 16 i32.add local.set $i
        br 0
      end end
      local.get $it i32.const 1 i32.add local.set $it
      br 0
    end end
    local.get $acc))"#,
        fill = fill_func()
    )
}

/// Pointer chasing over a linked ring of `nodes` nodes of `node_bytes`
/// each (mcf/omnetpp/xalancbmk-shaped). With a power-of-two node count the
/// affine successor map (709·i + 1 mod n, Hull–Dobell) is a full-period
/// permutation, so the chase genuinely touches the whole working set. `node_bytes` is the pointer-width
/// knob: the Wasm variant packs nodes tighter than the 64-bit-pointer
/// native variant, which is how "Wasm runs faster than native" happens for
/// 429_mcf (pointer compression as cache optimization).
pub fn pointer_chase(nodes: u32, node_bytes: u32, steps: u32, pages: u32) -> String {
    // next pointer stored at node offset 0; payload at offset 4.
    format!(
        r#"(module (memory {pages})
  (func $build (local $i i32)
    block loop
      local.get $i i32.const {nodes} i32.ge_u br_if 1
      ;; node[i].next = ((i * 709 + 1) % nodes) * node_bytes
      local.get $i i32.const {node_bytes} i32.mul
      local.get $i i32.const 709 i32.mul i32.const 1 i32.add
      i32.const {nodes} i32.rem_u
      i32.const {node_bytes} i32.mul
      i32.store
      ;; node[i].payload = i
      local.get $i i32.const {node_bytes} i32.mul
      local.get $i
      i32.store offset=4
      local.get $i i32.const 1 i32.add local.set $i
      br 0
    end end)
  (func (export "run") (result i32)
    (local $p i32) (local $s i32) (local $acc i32) (local $v i32)
    call $build
    block loop
      local.get $s i32.const {steps} i32.ge_u br_if 1
      ;; arc-cost computation on the node payload (mcf's per-node work)
      local.get $p i32.load offset=4
      local.set $v
      local.get $acc i32.const 31 i32.mul local.get $v i32.add local.set $acc
      local.get $acc local.get $acc i32.const 7 i32.shr_u i32.xor local.set $acc
      local.get $v i32.const 13 i32.mul local.get $acc i32.xor i32.const 0xFFFF i32.and
      local.get $acc i32.add local.set $acc
      local.get $acc i32.const 5 i32.rotl local.set $acc
      local.get $p i32.load
      local.set $p
      local.get $s i32.const 1 i32.add local.set $s
      br 0
    end end
    local.get $acc))"#
    )
}

/// 1-D three-point stencil over `n` words, `iters` sweeps (lbm/jacobi-
/// shaped). Dense computed addressing: `base + i*4 ± 4`.
pub fn stencil(n: u32, iters: u32, pages: u32) -> String {
    format!(
        r#"(module (memory {pages})
  {fill}
  (func (export "run") (result i32)
    (local $it i32) (local $i i32) (local $acc i32)
    i32.const {bytes} call $fill
    block loop
      local.get $it i32.const {iters} i32.ge_u br_if 1
      i32.const 1 local.set $i
      block loop
        local.get $i i32.const {n_minus_1} i32.ge_u br_if 1
        ;; a[i] = (a[i-1] + 2*a[i] + a[i+1]) >> 2
        local.get $i i32.const 4 i32.mul
        local.get $i i32.const 4 i32.mul i32.load
        i32.const 1 i32.shl
        local.get $i i32.const 4 i32.mul i32.load offset=4
        i32.add
        local.get $i i32.const 1 i32.sub i32.const 4 i32.mul i32.load
        i32.add
        i32.const 2 i32.shr_u
        i32.store
        local.get $i i32.const 1 i32.add local.set $i
        br 0
      end end
      local.get $it i32.const 1 i32.add local.set $it
      br 0
    end end
    i32.const 64 i32.load
    i32.const 128 i32.load
    i32.add))"#,
        fill = fill_func(),
        bytes = n * 4,
        n_minus_1 = n - 1,
    )
}

/// `n × n` fixed-point matrix multiply (milc/parest/imagick/matrix-shaped):
/// two-term scaled addressing everywhere — the Figure 1 pattern-2 case.
pub fn matmul(n: u32, pages: u32) -> String {
    let a = 0;
    let b = n * n * 4;
    let c = 2 * n * n * 4;
    format!(
        r#"(module (memory {pages})
  {fill}
  (func (export "run") (result i32)
    (local $i i32) (local $j i32) (local $k i32) (local $sum i32) (local $row i32)
    i32.const {fill_bytes} call $fill
    block loop
      local.get $i i32.const {n} i32.ge_u br_if 1
      i32.const 0 local.set $j
      block loop
        local.get $j i32.const {n} i32.ge_u br_if 1
        i32.const 0 local.set $sum
        i32.const 0 local.set $k
        local.get $i i32.const {row_bytes} i32.mul local.set $row
        block loop
          local.get $k i32.const {n} i32.ge_u br_if 1
          ;; sum += A[i*n+k] * B[k*n+j]
          local.get $row local.get $k i32.const 4 i32.mul i32.add i32.load offset={a}
          local.get $k i32.const {row_bytes} i32.mul local.get $j i32.const 4 i32.mul i32.add i32.load offset={b}
          i32.mul
          local.get $sum i32.add local.set $sum
          local.get $k i32.const 1 i32.add local.set $k
          br 0
        end end
        ;; C[i*n+j] = sum
        local.get $row local.get $j i32.const 4 i32.mul i32.add
        local.get $sum
        i32.store offset={c}
        local.get $j i32.const 1 i32.add local.set $j
        br 0
      end end
      local.get $i i32.const 1 i32.add local.set $i
      br 0
    end end
    i32.const {c} i32.load
    i32.const {c2} i32.load
    i32.add))"#,
        fill = fill_func(),
        fill_bytes = 2 * n * n * 4,
        row_bytes = n * 4,
        c2 = c + 4 * (n + 1),
    )
}

/// Branchy evaluation with data-dependent conditions and a small lookup
/// table (gobmk/sjeng/deepsjeng/leela-shaped).
pub fn branchy(n: u32, pages: u32) -> String {
    format!(
        r#"(module (memory {pages})
  {fill}
  (func $eval0 (param $v i32) (result i32)
    local.get $v i32.const 3 i32.mul i32.const 11 i32.add)
  (func $eval1 (param $v i32) (result i32)
    local.get $v i32.const 5 i32.shr_u local.get $v i32.xor)
  (func $eval2 (param $v i32) (result i32)
    local.get $v i32.const 2 i32.shl local.get $v i32.sub)
  (table funcref (elem $eval0 $eval1 $eval2))
  (func (export "run") (result i32)
    (local $i i32) (local $x i32) (local $acc i32) (local $v i32)
    i32.const 65536 call $fill
    i32.const 7 local.set $x
    block loop
      local.get $i i32.const {n} i32.ge_u br_if 1
      {lcg}
      local.get $x i32.const 0xFFFC i32.and i32.load local.set $v
      local.get $v i32.const 3 i32.and i32.eqz
      if
        local.get $acc local.get $v i32.add local.set $acc
      else
        local.get $v i32.const 1 i32.and
        if
          local.get $acc local.get $v i32.xor local.set $acc
        else
          local.get $acc i32.const 1 i32.shl
          local.get $v i32.const 0xFF i32.and
          i32.add local.set $acc
        end
      end
      ;; table lookup keyed by the low bits
      local.get $acc
      local.get $v i32.const 0xFF i32.and i32.const 4 i32.mul i32.load
      i32.add local.set $acc
      ;; evaluator dispatch (function-pointer call in the native build,
      ;; checked call_indirect in the Wasm builds)
      local.get $acc
      local.get $v
      local.get $v i32.const 3 i32.rem_u
      call_indirect (type $eval0)
      i32.add local.set $acc
      local.get $i i32.const 1 i32.add local.set $i
      br 0
    end end
    local.get $acc))"#,
        fill = fill_func(),
        lcg = lcg("$x"),
    )
}

/// Bit-mixing rounds over a small state array (libquantum/gimli/seqhash-
/// shaped): ALU-dense, memory-light.
pub fn bitops(rounds: u32, pages: u32) -> String {
    format!(
        r#"(module (memory {pages})
  (func (export "run") (result i32)
    (local $r i32) (local $a i32) (local $b i32) (local $c i32) (local $d i32)
    i32.const 0x9E3779B9 local.set $a
    i32.const 0x85EBCA6B local.set $b
    i32.const 0xC2B2AE35 local.set $c
    i32.const 0x27D4EB2F local.set $d
    block loop
      local.get $r i32.const {rounds} i32.ge_u br_if 1
      local.get $a i32.const 13 i32.rotl local.get $b i32.xor local.set $a
      local.get $b i32.const 7 i32.shl local.get $c i32.add local.set $b
      local.get $c i32.const 17 i32.rotr local.get $d i32.xor local.set $c
      local.get $d local.get $a i32.add local.set $d
      ;; spill state to memory every round (quantum-register updates)
      local.get $r i32.const 0xFFF0 i32.and
      local.get $a local.get $c i32.xor
      i32.store
      local.get $r i32.const 1 i32.add local.set $r
      br 0
    end end
    local.get $a local.get $b i32.add local.get $c i32.add local.get $d i32.add))"#
    )
}

/// Block copy with a 2×8-byte unrolled inner loop (h264ref/x264/memmove-
/// shaped) — the exact pattern the WAMR vectorizer targets (§4.2).
pub fn blockcopy(blocks: u32, block_bytes: u32, pages: u32) -> String {
    let src = 0;
    let dst = block_bytes * 2;
    format!(
        r#"(module (memory {pages})
  {fill}
  (func (export "run") (result i32)
    (local $b i32) (local $i i32) (local $t i64)
    i32.const {block_bytes} call $fill
    block loop
      local.get $b i32.const {blocks} i32.ge_u br_if 1
      i32.const 0 local.set $i
      block loop
        local.get $i i32.const {block_bytes} i32.ge_u br_if 1
        ;; two consecutive 8-byte copies (vectorizable pair)
        local.get $i
        local.get $i i64.load offset={src}
        i64.store offset={dst}
        local.get $i
        local.get $i i64.load offset={src8}
        i64.store offset={dst8}
        local.get $i i32.const 16 i32.add local.set $i
        br 0
      end end
      local.get $b i32.const 1 i32.add local.set $b
      br 0
    end end
    i32.const {dst} i32.load))"#,
        fill = fill_func(),
        src8 = src + 8,
        dst8 = dst + 8,
    )
}

/// Block copy with *block-relative* addressing: `src_base + i` two-term
/// address shapes (h264/x264-style motion-compensation copies). Unlike
/// [`blockcopy`], the base varies per block, so SFI baselines pay an
/// address materialization per access.
pub fn blockcopy_struct(blocks: u32, block_bytes: u32, pages: u32) -> String {
    format!(
        r#"(module (memory {pages})
  {fill}
  (func (export "run") (result i32)
    (local $b i32) (local $i i32) (local $sb i32) (local $acc i32)
    i32.const {fill_bytes} call $fill
    block loop
      local.get $b i32.const {blocks} i32.ge_u br_if 1
      ;; alternate between a few source block bases (motion vectors)
      local.get $b i32.const 7 i32.mul i32.const 31 i32.and i32.const 64 i32.mul local.set $sb
      i32.const 0 local.set $i
      block loop
        local.get $i i32.const {block_bytes} i32.ge_u br_if 1
        local.get $i
        local.get $sb local.get $i i32.add i64.load
        i64.store offset={dst0}
        local.get $i
        local.get $sb local.get $i i32.add i64.load offset=8
        i64.store offset={dst8}
        local.get $i i32.const 16 i32.add local.set $i
        br 0
      end end
      local.get $b i32.const 1 i32.add local.set $b
      br 0
    end end
    i32.const {dst0} i32.load))"#,
        fill = fill_func(),
        fill_bytes = block_bytes + 32 * 64 + 16,
        dst0 = block_bytes + 32 * 64 + 64,
        dst8 = block_bytes + 32 * 64 + 72,
    )
}

/// Heapsort over `n` pseudo-random words (astar/leela/sort-shaped):
/// data-dependent branches plus scaled-index addressing.
pub fn heapsort(n: u32, pages: u32) -> String {
    format!(
        r#"(module (memory {pages})
  {fill}
  (func $sift (param $start i32) (param $end i32) (local $root i32) (local $child i32) (local $t i32)
    local.get $start local.set $root
    block loop
      ;; child = 2*root + 1
      local.get $root i32.const 1 i32.shl i32.const 1 i32.add local.set $child
      local.get $child local.get $end i32.gt_u br_if 1
      ;; pick the larger child
      local.get $child local.get $end i32.lt_u
      if
        local.get $child i32.const 4 i32.mul i32.load
        local.get $child i32.const 1 i32.add i32.const 4 i32.mul i32.load
        i32.lt_u
        if
          local.get $child i32.const 1 i32.add local.set $child
        end
      end
      ;; if a[root] >= a[child], done
      local.get $root i32.const 4 i32.mul i32.load
      local.get $child i32.const 4 i32.mul i32.load
      i32.ge_u
      br_if 1
      ;; swap
      local.get $root i32.const 4 i32.mul i32.load local.set $t
      local.get $root i32.const 4 i32.mul
      local.get $child i32.const 4 i32.mul i32.load
      i32.store
      local.get $child i32.const 4 i32.mul
      local.get $t
      i32.store
      local.get $child local.set $root
      br 0
    end end)
  (func (export "run") (result i32)
    (local $start i32) (local $end i32) (local $t i32)
    i32.const {bytes} call $fill
    ;; heapify
    i32.const {half} local.set $start
    block loop
      local.get $start i32.const 0 i32.lt_s br_if 1
      local.get $start i32.const {last_u} call $sift
      local.get $start i32.const 1 i32.sub local.set $start
      br 0
    end end
    ;; extract
    i32.const {last_u} local.set $end
    block loop
      local.get $end i32.const 0 i32.le_s br_if 1
      ;; swap a[0], a[end]
      i32.const 0 i32.load local.set $t
      i32.const 0
      local.get $end i32.const 4 i32.mul i32.load
      i32.store
      local.get $end i32.const 4 i32.mul
      local.get $t
      i32.store
      i32.const 0 local.get $end i32.const 1 i32.sub call $sift
      local.get $end i32.const 1 i32.sub local.set $end
      br 0
    end end
    i32.const 0 i32.load
    i32.const {mid_bytes} i32.load
    i32.add))"#,
        fill = fill_func(),
        bytes = n * 4,
        half = n / 2 - 1,
        last_u = n - 1,
        mid_bytes = (n / 2) * 4,
    )
}

/// Histogram + run-length encoding over a pseudo-random buffer
/// (bzip2/xz/gcc-shaped): byte loads, table updates, output stores.
pub fn compress(n: u32, pages: u32) -> String {
    let hist = n + 64; // histogram after the input
    let out = hist + 1024;
    format!(
        r#"(module (memory {pages})
  {fill}
  (func (export "run") (result i32)
    (local $i i32) (local $b i32) (local $run i32) (local $prev i32) (local $o i32) (local $acc i32)
    i32.const {n} call $fill
    ;; histogram
    block loop
      local.get $i i32.const {n} i32.ge_u br_if 1
      local.get $i i32.load8_u local.set $b
      local.get $b i32.const 4 i32.mul
      local.get $b i32.const 4 i32.mul i32.load offset={hist}
      i32.const 1 i32.add
      i32.store offset={hist}
      local.get $i i32.const 1 i32.add local.set $i
      br 0
    end end
    ;; run-length encode
    i32.const 0 local.set $i
    i32.const -1 local.set $prev
    block loop
      local.get $i i32.const {n} i32.ge_u br_if 1
      local.get $i i32.load8_u local.set $b
      local.get $b local.get $prev i32.eq
      if
        local.get $run i32.const 1 i32.add local.set $run
      else
        local.get $o i32.const 2 i32.mul
        local.get $run i32.const 8 i32.shl local.get $prev i32.or
        i32.store16 offset={out}
        local.get $o i32.const 1 i32.add local.set $o
        local.get $b local.set $prev
        i32.const 1 local.set $run
      end
      local.get $i i32.const 1 i32.add local.set $i
      br 0
    end end
    ;; checksum histogram + output length
    i32.const 65 i32.const 4 i32.mul i32.load offset={hist}
    local.get $o
    i32.add))"#,
        fill = fill_func(),
    )
}

/// Recursive Fibonacci (fib2/recursion-shaped): call-heavy, memory-light.
pub fn fib(n: u32, pages: u32) -> String {
    format!(
        r#"(module (memory {pages})
  (func $fib (param $n i32) (result i32)
    local.get $n i32.const 2 i32.lt_u
    if
      local.get $n return
    end
    local.get $n i32.const 1 i32.sub call $fib
    local.get $n i32.const 2 i32.sub call $fib
    i32.add)
  (func (export "run") (result i32)
    i32.const {n} call $fib))"#
    )
}

/// Three nested loops with a tiny body (nestedloop-shaped).
pub fn nestedloop(a: u32, b: u32, c: u32, pages: u32) -> String {
    format!(
        r#"(module (memory {pages})
  (func (export "run") (result i32)
    (local $i i32) (local $j i32) (local $k i32) (local $acc i32)
    block loop
      local.get $i i32.const {a} i32.ge_u br_if 1
      i32.const 0 local.set $j
      block loop
        local.get $j i32.const {b} i32.ge_u br_if 1
        i32.const 0 local.set $k
        block loop
          local.get $k i32.const {c} i32.ge_u br_if 1
          local.get $acc i32.const 1 i32.add local.set $acc
          local.get $k i32.const 1 i32.add local.set $k
          br 0
        end end
        local.get $j i32.const 1 i32.add local.set $j
        br 0
      end end
      local.get $i i32.const 1 i32.add local.set $i
      br 0
    end end
    local.get $acc))"#
    )
}

/// Byte scan for a sentinel (strchr-shaped).
pub fn strchr(len: u32, repeats: u32, pages: u32) -> String {
    format!(
        r#"(module (memory {pages})
  {fill}
  (func (export "run") (result i32)
    (local $r i32) (local $i i32) (local $acc i32)
    i32.const {len} call $fill
    ;; plant the sentinel near the end
    i32.const {sentinel_at} i32.const 0 i32.store8
    block loop
      local.get $r i32.const {repeats} i32.ge_u br_if 1
      i32.const 0 local.set $i
      block loop
        local.get $i i32.load8_u i32.eqz br_if 1
        local.get $i i32.const 1 i32.add local.set $i
        br 0
      end end
      local.get $acc local.get $i i32.add local.set $acc
      local.get $r i32.const 1 i32.add local.set $r
      br 0
    end end
    local.get $acc))"#,
        fill = fill_func(),
        sentinel_at = len - 2,
    )
}

/// `br_table` dispatch over `cases` cases (switch-shaped).
pub fn switch_dispatch(n: u32, cases: u32, pages: u32) -> String {
    assert!(cases >= 2);
    let mut blocks_open = String::new();
    let mut targets = String::new();
    for _ in 0..cases {
        blocks_open.push_str("block ");
    }
    // Selector value v branches to depth v: the innermost case block is
    // depth 0, and its arm sits right after the first `end`.
    for i in 0..cases {
        targets.push_str(&format!("{i} "));
    }
    // Each arm closes its case block, runs, then branches out to the
    // continue block (whose depth shrinks as case blocks close).
    let mut arms = String::new();
    for i in 0..cases {
        let depth_to_cont = cases - 1 - i; // remaining unclosed case blocks
        arms.push_str(&format!(
            "end\n  local.get $acc i32.const {} i32.add local.set $acc\n  br {}\n",
            i * 7 + 1,
            depth_to_cont
        ));
    }
    format!(
        r#"(module (memory {pages})
  (func $h0 (param $v i32) (result i32)
    local.get $v i32.const 9 i32.mul i32.const 7 i32.add)
  (func $h1 (param $v i32) (result i32)
    local.get $v i32.const 11 i32.shr_u local.get $v i32.add)
  (table funcref (elem $h0 $h1))
  (func (export "run") (result i32)
    (local $i i32) (local $x i32) (local $acc i32)
    i32.const 5 local.set $x
    block loop
      local.get $i i32.const {n} i32.ge_u br_if 1
      {lcg}
      block
      {blocks_open}
      local.get $x i32.const 16 i32.shr_u i32.const {cases} i32.rem_u
      br_table {targets}0
      {arms}end
      ;; post-case handler dispatch
      local.get $acc
      local.get $x i32.const 1 i32.and
      call_indirect (type $h0)
      local.set $acc
      local.get $i i32.const 1 i32.add local.set $i
      br 0
    end end
    local.get $acc))"#,
        lcg = lcg("$x"),
    )
}

/// Base64 encoding (base64-shaped): byte loads, shifts, table lookups.
pub fn base64(len: u32, pages: u32) -> String {
    let table = len + 64;
    let out = table + 64;
    format!(
        r#"(module (memory {pages})
  {fill}
  (func $mktable (local $i i32)
    block loop
      local.get $i i32.const 64 i32.ge_u br_if 1
      local.get $i
      local.get $i i32.const 17 i32.mul i32.const 33 i32.add i32.const 94 i32.rem_u i32.const 33 i32.add
      i32.store8 offset={table}
      local.get $i i32.const 1 i32.add local.set $i
      br 0
    end end)
  (func (export "run") (result i32)
    (local $i i32) (local $o i32) (local $w i32) (local $acc i32)
    i32.const {len} call $fill
    call $mktable
    block loop
      local.get $i i32.const {len3} i32.ge_u br_if 1
      ;; w = 3 bytes
      local.get $i i32.load8_u i32.const 16 i32.shl
      local.get $i i32.load8_u offset=1 i32.const 8 i32.shl i32.or
      local.get $i i32.load8_u offset=2 i32.or
      local.set $w
      local.get $o local.get $w i32.const 18 i32.shr_u i32.const 63 i32.and i32.load8_u offset={table} i32.store8 offset={out}
      local.get $o local.get $w i32.const 12 i32.shr_u i32.const 63 i32.and i32.load8_u offset={table} i32.store8 offset={out1}
      local.get $o local.get $w i32.const 6 i32.shr_u i32.const 63 i32.and i32.load8_u offset={table} i32.store8 offset={out2}
      local.get $o local.get $w i32.const 63 i32.and i32.load8_u offset={table} i32.store8 offset={out3}
      local.get $i i32.const 3 i32.add local.set $i
      local.get $o i32.const 4 i32.add local.set $o
      br 0
    end end
    i32.const {out} i32.load
    local.get $o i32.add))"#,
        fill = fill_func(),
        len3 = len - 3,
        out1 = out + 1,
        out2 = out + 2,
        out3 = out + 3,
    )
}

/// Random-access loads driven by an LCG (random/astar-shaped). With
/// `unroll > 1` the loop body is replicated — the fetch-bandwidth pressure
/// behind the 473_astar Segue outlier.
pub fn random_access(accesses: u32, ws_bytes: u32, unroll: u32, pages: u32) -> String {
    let mask = (ws_bytes - 1) & !3;
    let mut body = String::new();
    for _ in 0..unroll {
        body.push_str(&format!(
            r#"      {lcg}
      local.get $acc
      local.get $x i32.const {mask} i32.and i32.load
      i32.add local.set $acc
"#,
            lcg = lcg("$x"),
        ));
    }
    format!(
        r#"(module (memory {pages})
  {fill}
  (func $cmp0 (param $a i32) (result i32)
    local.get $a i32.const 1 i32.shr_u)
  (func $cmp1 (param $a i32) (result i32)
    local.get $a i32.const 3 i32.add)
  (table funcref (elem $cmp0 $cmp1))
  (func (export "run") (result i32)
    (local $i i32) (local $x i32) (local $acc i32)
    i32.const {ws_bytes} call $fill
    i32.const 3 local.set $x
    block loop
      local.get $i i32.const {outer} i32.ge_u br_if 1
{body}      ;; priority-queue comparator dispatch
      local.get $acc
      local.get $x i32.const 1 i32.and
      call_indirect (type $cmp0)
      local.set $acc
      local.get $i i32.const 1 i32.add local.set $i
      br 0
    end end
    local.get $acc))"#,
        fill = fill_func(),
        outer = accesses / unroll,
    )
}

/// Sieve of Eratosthenes with a template-copy reset phase — the unrolled
/// 8-byte copy reset is what WAMR's vectorizer accelerates and full Segue
/// breaks (Figure 4's sieve regression).
pub fn sieve(limit: u32, rounds: u32, pages: u32) -> String {
    let template = limit + 64;
    format!(
        r#"(module (memory {pages})
  (func (export "run") (result i32)
    (local $r i32) (local $i i32) (local $j i32) (local $count i32)
    ;; template: all ones
    i32.const {template} i32.const 1 i32.const {limit} memory.fill
    block loop
      local.get $r i32.const {rounds} i32.ge_u br_if 1
      ;; reset the sieve from the template: unrolled 2x8-byte copies
      i32.const 0 local.set $i
      block loop
        local.get $i i32.const {limit} i32.ge_u br_if 1
        local.get $i
        local.get $i i64.load offset={template}
        i64.store
        local.get $i
        local.get $i i64.load offset={template8}
        i64.store offset=8
        local.get $i i32.const 16 i32.add local.set $i
        br 0
      end end
      ;; sieve
      i32.const 2 local.set $i
      block loop
        local.get $i local.get $i i32.mul i32.const {limit} i32.ge_u br_if 1
        local.get $i i32.load8_u
        if
          local.get $i local.get $i i32.mul local.set $j
          block loop
            local.get $j i32.const {limit} i32.ge_u br_if 1
            local.get $j i32.const 0 i32.store8
            local.get $j local.get $i i32.add local.set $j
            br 0
          end end
        end
        local.get $i i32.const 1 i32.add local.set $i
        br 0
      end end
      ;; publish the segment's flags (unrolled 2x8-byte copies again)
      i32.const 0 local.set $i
      block loop
        local.get $i i32.const {limit} i32.ge_u br_if 1
        local.get $i
        local.get $i i64.load
        i64.store offset={publish}
        local.get $i
        local.get $i i64.load offset=8
        i64.store offset={publish8}
        local.get $i i32.const 16 i32.add local.set $i
        br 0
      end end
      local.get $r i32.const 1 i32.add local.set $r
      br 0
    end end
    ;; count primes
    i32.const 2 local.set $i
    block loop
      local.get $i i32.const {limit} i32.ge_u br_if 1
      local.get $count local.get $i i32.load8_u i32.add local.set $count
      local.get $i i32.const 1 i32.add local.set $i
      br 0
    end end
    local.get $count))"#,
        template8 = template + 8,
        publish = template + limit + 64,
        publish8 = template + limit + 72,
    )
}

/// Font shaping (libgraphite-shaped, §6.1): per-glyph metric lookups from a
/// table of 8-byte glyph records ([advance:4][bearing:4]) plus a parallel
/// kern-class byte array — classic struct-offset (Figure 1 pattern 2)
/// addressing throughout.
pub fn font_shaping(glyphs: u32, text_len: u32, pages: u32) -> String {
    let text = 0;
    // Glyph records live after the text.
    let table = text_len.div_ceil(64) * 64;
    format!(
        r#"(module (memory {pages})
  (func $build (local $i i32)
    ;; synthetic text
    block loop
      local.get $i i32.const {text_len} i32.ge_u br_if 1
      local.get $i
      local.get $i i32.const 31 i32.mul i32.const 7 i32.add i32.const {glyphs} i32.rem_u
      i32.store8 offset={text}
      local.get $i i32.const 1 i32.add local.set $i
      br 0
    end end
    ;; glyph records (8 bytes) + kern-class bytes
    i32.const 0 local.set $i
    block loop
      local.get $i i32.const {glyphs} i32.ge_u br_if 1
      local.get $i i32.const 8 i32.mul
      local.get $i i32.const 5 i32.mul i32.const 300 i32.add
      i32.store offset={table}
      local.get $i i32.const 8 i32.mul
      local.get $i i32.const 3 i32.mul i32.const 100 i32.sub
      i32.store offset={table4}
      local.get $i
      local.get $i i32.const 7 i32.and
      i32.store8 offset={kerncls}
      local.get $i i32.const 1 i32.add local.set $i
      br 0
    end end)
  (func (export "run") (result i32)
    (local $i i32) (local $g i32) (local $prev i32) (local $x i32) (local $kc i32)
    call $build
    block loop
      local.get $i i32.const {text_len} i32.ge_u br_if 1
      local.get $i i32.load8_u offset={text} local.set $g
      ;; x += advance(g) + bearing(g): *(table + g*8) and *(table + g*8 + 4)
      ;; — address arithmetic in i32, exactly as wasm2c emits it
      local.get $x
      i32.const {table} local.get $g i32.const 8 i32.mul i32.add i32.load
      i32.add
      i32.const {table4} local.get $g i32.const 8 i32.mul i32.add i32.load
      i32.add
      local.set $x
      ;; kerning: class pair adjustment
      i32.const {kerncls} local.get $g i32.add i32.load8_u local.set $kc
      local.get $kc local.get $prev i32.eq
      if
        local.get $x i32.const 2 i32.sub local.set $x
      end
      local.get $kc local.set $prev
      local.get $i i32.const 1 i32.add local.set $i
      br 0
    end end
    local.get $x))"#,
        table4 = table + 4,
        kerncls = table + glyphs * 8 + 64,
    )
}

/// XML/SVG scanning (libexpat-shaped, §6.1): byte-at-a-time tag parsing
/// with depth tracking and attribute-name hashing over synthetic markup.
pub fn xml_parse(len: u32, pages: u32) -> String {
    format!(
        r#"(module (memory {pages})
  (func $gen (local $i i32) (local $x i32)
    ;; synthetic markup: repeating "<g a=1><p/></g>" shaped bytes
    i32.const 17 local.set $x
    block loop
      local.get $i i32.const {len} i32.ge_u br_if 1
      {lcg}
      local.get $i
      ;; choose from a tiny alphabet including < > = / and letters
      local.get $x i32.const 20 i32.shr_u i32.const 15 i32.and
      i32.const 4 i32.mul i32.load8_u offset={alphabet}
      i32.store8
      local.get $i i32.const 1 i32.add local.set $i
      br 0
    end end)
  (func (export "run") (result i32)
    (local $i i32) (local $c i32) (local $depth i32) (local $hash i32) (local $intag i32) (local $acc i32)
    ;; alphabet table
    i32.const {alphabet} i32.const 60 i32.store8   ;; '<'
    i32.const {a1} i32.const 62 i32.store8         ;; '>'
    i32.const {a2} i32.const 47 i32.store8         ;; '/'
    i32.const {a3} i32.const 61 i32.store8         ;; '='
    i32.const {a4} i32.const 97 i32.store8
    i32.const {a5} i32.const 98 i32.store8
    i32.const {a6} i32.const 103 i32.store8
    i32.const {a7} i32.const 112 i32.store8
    i32.const {a8} i32.const 32 i32.store8
    i32.const {a9} i32.const 49 i32.store8
    i32.const {a10} i32.const 115 i32.store8
    i32.const {a11} i32.const 116 i32.store8
    i32.const {a12} i32.const 120 i32.store8
    i32.const {a13} i32.const 121 i32.store8
    i32.const {a14} i32.const 122 i32.store8
    i32.const {a15} i32.const 46 i32.store8
    call $gen
    block loop
      local.get $i i32.const {len} i32.ge_u br_if 1
      local.get $i i32.load8_u local.set $c
      local.get $c i32.const 60 i32.eq
      if
        i32.const 1 local.set $intag
        local.get $depth i32.const 1 i32.add local.set $depth
        i32.const 0 local.set $hash
      else
        local.get $c i32.const 62 i32.eq
        if
          i32.const 0 local.set $intag
          local.get $acc local.get $hash i32.add local.set $acc
        else
          local.get $c i32.const 47 i32.eq
          if
            local.get $depth i32.const 1 i32.sub local.set $depth
          else
            local.get $intag
            if
              local.get $hash i32.const 31 i32.mul local.get $c i32.add local.set $hash
            end
          end
        end
      end
      local.get $i i32.const 1 i32.add local.set $i
      br 0
    end end
    local.get $acc local.get $depth i32.add))"#,
        lcg = lcg("$x"),
        alphabet = len + 64,
        a1 = len + 64 + 4,
        a2 = len + 64 + 8,
        a3 = len + 64 + 12,
        a4 = len + 64 + 16,
        a5 = len + 64 + 20,
        a6 = len + 64 + 24,
        a7 = len + 64 + 28,
        a8 = len + 64 + 32,
        a9 = len + 64 + 36,
        a10 = len + 64 + 40,
        a11 = len + 64 + 44,
        a12 = len + 64 + 48,
        a13 = len + 64 + 52,
        a14 = len + 64 + 56,
        a15 = len + 64 + 60,
    )
}

/// Dhrystone-shaped mix: record copies, enum switches, string-ish compares.
/// `rec_bytes` is the pointer-width knob: Dhrystone's records hold several
/// pointers, so the 64-bit native build copies twice the bytes (the paper's
/// "Dhrystone runs 9.7% faster in Wasm" effect).
pub fn dhrystone(iters: u32, rec_bytes: u32, pages: u32) -> String {
    format!(
        r#"(module (memory {pages})
  {fill}
  (func (export "run") (result i32)
    (local $i i32) (local $acc i32) (local $j i32)
    i32.const 4096 call $fill
    block loop
      local.get $i i32.const {iters} i32.ge_u br_if 1
      ;; record copy, field-wise
      i32.const 0 local.set $j
      block loop
        local.get $j i32.const {rec_bytes} i32.ge_u br_if 1
        local.get $j
        local.get $j i32.load offset=256
        i32.store offset=512
        local.get $j i32.const 4 i32.add local.set $j
        br 0
      end end
      ;; enum dispatch
      local.get $i i32.const 3 i32.and i32.const 1 i32.eq
      if
        local.get $acc i32.const 3 i32.add local.set $acc
      else
        local.get $acc i32.const 1 i32.add local.set $acc
      end
      ;; string-ish compare of two 16-byte regions
      i32.const 0 local.set $j
      block loop
        local.get $j i32.const 16 i32.ge_u br_if 1
        local.get $j i32.load8_u offset=256
        local.get $j i32.load8_u offset=512
        i32.ne
        br_if 1
        local.get $j i32.const 1 i32.add local.set $j
        br 0
      end end
      local.get $acc local.get $j i32.add local.set $acc
      local.get $i i32.const 1 i32.add local.set $i
      br 0
    end end
    local.get $acc))"#,
        fill = fill_func(),
    )
}

/// FaaS request hashing / load balancing (consistent-hash router shaped):
/// FNV-1a over short keys, bucket selection, per-backend counters. The hot
/// inner loop keeps eight locals live — exactly the shape where the
/// optimizing tier's operand-pool borrowing pays, since the baseline's
/// four-register local pool (three under Segue) spills the rest to the
/// frame on every access.
pub fn hash_lb(requests: u32, key_bytes: u32, pages: u32) -> String {
    assert!(key_bytes.is_power_of_two(), "key region must be maskable");
    let counters = key_bytes + 64;
    format!(
        r#"(module (memory {pages})
  {fill}
  (func (export "run") (result i32)
    (local $r i32) (local $i i32) (local $h i32) (local $c i32)
    (local $b i32) (local $x i32) (local $acc i32) (local $len i32)
    i32.const {key_bytes} call $fill
    i32.const 1299709 local.set $x
    block loop
      local.get $r i32.const {requests} i32.ge_u br_if 1
      ;; key length varies per request (8..=23 bytes)
      {lcg}
      local.get $x i32.const 24 i32.shr_u i32.const 15 i32.and i32.const 8 i32.add
      local.set $len
      ;; FNV-1a over the key bytes
      i32.const 0x811C9DC5 local.set $h
      i32.const 0 local.set $i
      block loop
        local.get $i local.get $len i32.ge_u br_if 1
        local.get $x local.get $i i32.add i32.const {key_mask} i32.and
        i32.load8_u local.set $c
        local.get $h local.get $c i32.xor
        i32.const 16777619 i32.mul
        local.set $h
        local.get $i i32.const 1 i32.add local.set $i
        br 0
      end end
      ;; route to one of 16 backends, bump its counter
      local.get $h i32.const 15 i32.and local.set $b
      local.get $b i32.const 4 i32.mul
      local.get $b i32.const 4 i32.mul i32.load offset={counters}
      i32.const 1 i32.add
      i32.store offset={counters}
      local.get $acc local.get $h i32.add local.set $acc
      local.get $r i32.const 1 i32.add local.set $r
      br 0
    end end
    local.get $acc
    i32.const 12 i32.load offset={counters}
    i32.add))"#,
        fill = fill_func(),
        lcg = lcg("$x"),
        key_mask = key_bytes - 1,
    )
}

/// FaaS request filtering (regex-lite shaped): a hand-rolled DFA matching
/// `"GET /a+b"`-style patterns over a synthetic request stream, counting
/// matches and match spans. Seven live locals in the scan loop plus a
/// data-dependent state machine — branchy enough that compare-branch
/// fusion fires on every guard.
pub fn regex_filter(len: u32, pages: u32) -> String {
    format!(
        r#"(module (memory {pages})
  {fill}
  (func (export "run") (result i32)
    (local $i i32) (local $c i32) (local $state i32) (local $matches i32)
    (local $start i32) (local $span i32) (local $acc i32)
    i32.const {len} call $fill
    block loop
      local.get $i i32.const {len} i32.ge_u br_if 1
      local.get $i i32.load8_u i32.const 7 i32.and local.set $c
      ;; rolling checksum over the stream (keeps $acc and $span hot in
      ;; every iteration, not just on match boundaries)
      local.get $acc i32.const 31 i32.mul local.get $c i32.add local.set $acc
      local.get $span i32.const 1 i32.add local.get $c i32.xor local.set $span
      ;; states: 0 = seeking 'G'(0), 1 = in-prefix (1), 2 = in-body (2+)
      local.get $state i32.eqz
      if
        local.get $c i32.eqz
        if
          i32.const 1 local.set $state
          local.get $i local.set $start
        end
      else
        local.get $state i32.const 1 i32.eq
        if
          local.get $c i32.const 1 i32.eq
          if
            i32.const 2 local.set $state
          else
            i32.const 0 local.set $state
          end
        else
          local.get $c i32.const 2 i32.ge_u
          if
            ;; body continues; bail out on long spans
            local.get $i local.get $start i32.sub local.set $span
            local.get $span i32.const 12 i32.gt_u
            if
              i32.const 0 local.set $state
            end
          else
            ;; end of match
            local.get $matches i32.const 1 i32.add local.set $matches
            local.get $acc
            local.get $i local.get $start i32.sub
            i32.add local.set $acc
            i32.const 0 local.set $state
          end
        end
      end
      local.get $i i32.const 1 i32.add local.set $i
      br 0
    end end
    local.get $matches i32.const 16 i32.shl local.get $acc i32.add))"#,
        fill = fill_func(),
    )
}

/// FaaS response templating (HTML template-expansion shaped): copies a
/// byte stream to an output buffer, expanding `{{...}}`-style placeholder
/// markers from a value table. Mixes byte loads/stores with table lookups
/// and keeps seven locals hot across the copy loop.
pub fn html_template(len: u32, pages: u32) -> String {
    let values = len + 64;
    let out = values + 256;
    format!(
        r#"(module (memory {pages})
  {fill}
  (func $mkvalues (local $i i32)
    block loop
      local.get $i i32.const 256 i32.ge_u br_if 1
      local.get $i
      local.get $i i32.const 37 i32.mul i32.const 11 i32.add i32.const 26 i32.rem_u i32.const 97 i32.add
      i32.store8 offset={values}
      local.get $i i32.const 1 i32.add local.set $i
      br 0
    end end)
  (func (export "run") (result i32)
    (local $i i32) (local $o i32) (local $c i32) (local $mode i32)
    (local $key i32) (local $n i32) (local $acc i32)
    i32.const {len} call $fill
    call $mkvalues
    block loop
      local.get $i i32.const {len} i32.ge_u br_if 1
      local.get $i i32.load8_u local.set $c
      ;; response checksum (ETag-style) and rolling context hash: every
      ;; byte feeds $acc and $key, keeping both hot alongside the cursors
      local.get $acc i32.const 33 i32.mul local.get $c i32.add local.set $acc
      local.get $key i32.const 31 i32.mul local.get $c i32.add i32.const 255 i32.and
      local.set $key
      ;; emitted-run length estimate, reset by each expansion below
      local.get $n local.get $c i32.const 3 i32.and i32.add local.set $n
      local.get $mode
      if
        ;; inside a placeholder: accumulate the key until the close byte
        local.get $c i32.const 15 i32.and i32.const 15 i32.eq
        if
          ;; expand: emit 4 bytes from the value table
          i32.const 0 local.set $n
          block loop
            local.get $n i32.const 4 i32.ge_u br_if 1
            local.get $o local.get $n i32.add i32.const {out_mask} i32.and
            local.get $key local.get $n i32.add i32.const 255 i32.and
            i32.load8_u offset={values}
            i32.store8 offset={out}
            local.get $n i32.const 1 i32.add local.set $n
            br 0
          end end
          local.get $o i32.const 4 i32.add local.set $o
          i32.const 0 local.set $mode
        end
      else
        local.get $c i32.const 15 i32.and i32.eqz
        if
          i32.const 1 local.set $mode
          i32.const 0 local.set $key
        else
          ;; literal byte: copy through
          local.get $o i32.const {out_mask} i32.and
          local.get $c
          i32.store8 offset={out}
          local.get $o i32.const 1 i32.add local.set $o
        end
      end
      local.get $i i32.const 1 i32.add local.set $i
      br 0
    end end
    local.get $o i32.const 16 i32.shl
    local.get $acc i32.add
    i32.const 0 i32.load offset={out}
    i32.add))"#,
        fill = fill_func(),
        out_mask = 0xFFF,
    )
}

/// Fixed-point n-body-ish interaction loop (namd/nab/povray-shaped):
/// multiply-heavy with structured loads.
pub fn nbody(bodies: u32, iters: u32, pages: u32) -> String {
    format!(
        r#"(module (memory {pages})
  {fill}
  (func (export "run") (result i32)
    (local $it i32) (local $i i32) (local $j i32) (local $f i32) (local $dx i32)
    i32.const {bytes} call $fill
    block loop
      local.get $it i32.const {iters} i32.ge_u br_if 1
      i32.const 0 local.set $i
      block loop
        local.get $i i32.const {bodies} i32.ge_u br_if 1
        i32.const 0 local.set $j
        block loop
          local.get $j i32.const {bodies} i32.ge_u br_if 1
          ;; dx = x[i] - x[j]; f += dx*dx >> 8
          local.get $i i32.const 16 i32.mul i32.load
          local.get $j i32.const 16 i32.mul i32.load
          i32.sub local.set $dx
          local.get $f
          local.get $dx local.get $dx i32.mul i32.const 8 i32.shr_s
          i32.add local.set $f
          local.get $j i32.const 1 i32.add local.set $j
          br 0
        end end
        ;; v[i] += f
        local.get $i i32.const 16 i32.mul
        local.get $i i32.const 16 i32.mul i32.load offset=4
        local.get $f i32.add
        i32.store offset=4
        local.get $i i32.const 1 i32.add local.set $i
        br 0
      end end
      local.get $it i32.const 1 i32.add local.set $it
      br 0
    end end
    i32.const 4 i32.load
    local.get $f i32.add))"#,
        fill = fill_func(),
        bytes = bodies * 16,
    )
}
