//! Seeded random mini-Wasm program generator with shrinking.
//!
//! Fuel for the tiered compiler's differential-equivalence harness: each
//! seed deterministically expands into a structured program (bounded
//! loops, nested conditionals, masked memory traffic, i32/i64 arithmetic)
//! that exports `run : [] -> i32`. Programs are generated as an AST and
//! lowered to ops, so a failing program can be *shrunk*: the AST is
//! repeatedly reduced (drop a statement, inline a branch, unwrap an
//! operand) while the caller's failure predicate keeps holding, yielding
//! a minimal counterexample instead of a 40-statement haystack.
//!
//! Dependency-free by design (the container pins the crate graph): the
//! RNG is splitmix64, the shrinker is hand-rolled greedy delta debugging.
//! Determinism contract: `generate(seed)` and `shrink` never consult
//! ambient state, so a seed printed by a failing CI run reproduces the
//! exact program (and the exact shrink sequence) anywhere.

use sfi_wasm::{FuncBuilder, Module, Op, ValType};

/// General-purpose locals the generator reads and writes.
const VARS: u32 = 6;
/// Loop-counter locals, reserved: loop bodies may read but never write
/// them, which is what makes every generated loop provably bounded. One
/// per nesting level (loops only generate at depth 0–2), so an inner loop
/// can never reset the counter an enclosing loop is advancing.
const COUNTERS: u32 = 3;

/// splitmix64: tiny, full-period, and good enough to shake out compiler
/// bugs (the corpus cares about structural variety, not statistical
/// quality).
#[derive(Clone, Copy)]
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish pick in `0..n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Binary operators the generator emits (all total on the masked operand
/// shapes except division, whose traps the differential harness matches
/// against the interpreter's).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BinOp {
    Add,
    Sub,
    Mul,
    DivS,
    DivU,
    RemS,
    RemU,
    And,
    Or,
    Xor,
    Shl,
    ShrS,
    ShrU,
    Rotl,
    Eq,
    Ne,
    LtS,
    LtU,
    GeS,
    GeU,
}

const BINOPS: [BinOp; 20] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::DivS,
    BinOp::DivU,
    BinOp::RemS,
    BinOp::RemU,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::ShrS,
    BinOp::ShrU,
    BinOp::Rotl,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::LtS,
    BinOp::LtU,
    BinOp::GeS,
    BinOp::GeU,
];

/// An i32-valued expression.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Expr {
    Const(i32),
    /// `local.get` of a var or counter local.
    Local(u32),
    /// `i32.load` from a masked (always in-bounds) address.
    Load { addr: Box<Expr>, offset: u32 },
    /// `i32.load8_u` from a masked address.
    Load8 { addr: Box<Expr>, offset: u32 },
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Round-trip through i64: `extend_s(a) op extend_s(b)` wrapped back —
    /// exercises the truncation-discipline passes.
    Wide(BinOp, Box<Expr>, Box<Expr>),
    /// `select` on a data-dependent condition.
    Select { cond: Box<Expr>, then: Box<Expr>, els: Box<Expr> },
    /// `i32.eqz`.
    Eqz(Box<Expr>),
}

/// A statement: side effects on locals and memory, plus structured flow.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Stmt {
    /// `local.set` of a general-purpose var.
    Set(u32, Expr),
    /// `i32.store` (or `i32.store8`) to a masked address.
    Store { addr: Expr, val: Expr, offset: u32, narrow: bool },
    If { cond: Expr, then: Vec<Stmt>, els: Vec<Stmt> },
    /// Counted loop over a reserved counter local: always terminates.
    Loop { counter: u32, trips: u32, body: Vec<Stmt> },
}

/// A generated program plus its seed (kept for reproduction messages).
#[derive(Clone, Debug)]
pub struct RandomProgram {
    seed: u64,
    stmts: Vec<Stmt>,
    result: Expr,
}

/// Expands `seed` into a program. Same seed, same program, forever — the
/// corpus in `figX_tiers --check` is indexed by seed.
pub fn generate(seed: u64) -> RandomProgram {
    let mut rng = Rng(seed ^ 0xA076_1D64_78BD_642F);
    let mut budget = 24 + (rng.below(24) as i32);
    let stmts = gen_block(&mut rng, &mut budget, 0);
    // Fold every var into the result so no assignment is ever dead.
    let mut result = Expr::Local(0);
    for v in 1..VARS {
        result = Expr::Bin(
            BinOp::Xor,
            Box::new(Expr::Bin(BinOp::Mul, Box::new(result), Box::new(Expr::Const(31)))),
            Box::new(Expr::Local(v)),
        );
    }
    result = Expr::Bin(
        BinOp::Add,
        Box::new(result),
        Box::new(Expr::Load { addr: Box::new(Expr::Const(64)), offset: 0 }),
    );
    RandomProgram { seed, stmts, result }
}

fn gen_block(rng: &mut Rng, budget: &mut i32, depth: u32) -> Vec<Stmt> {
    let mut stmts = Vec::new();
    let n = 1 + rng.below(if depth == 0 { 8 } else { 4 });
    for _ in 0..n {
        if *budget <= 0 {
            break;
        }
        *budget -= 1;
        stmts.push(gen_stmt(rng, budget, depth));
    }
    stmts
}

fn gen_stmt(rng: &mut Rng, budget: &mut i32, depth: u32) -> Stmt {
    let deep = depth >= 3 || *budget <= 2;
    match rng.below(if deep { 6 } else { 10 }) {
        0..=3 => Stmt::Set(rng.below(u64::from(VARS)) as u32, gen_expr(rng, 0)),
        4 | 5 => Stmt::Store {
            addr: gen_expr(rng, 1),
            val: gen_expr(rng, 1),
            offset: (rng.below(0x1000)) as u32,
            narrow: rng.below(2) == 0,
        },
        6 | 7 => Stmt::If {
            cond: gen_expr(rng, 1),
            then: gen_block(rng, budget, depth + 1),
            els: if rng.below(2) == 0 { gen_block(rng, budget, depth + 1) } else { Vec::new() },
        },
        _ => Stmt::Loop {
            counter: VARS + depth.min(COUNTERS - 1),
            trips: 1 + rng.below(12) as u32,
            body: gen_block(rng, budget, depth + 1),
        },
    }
}

fn gen_expr(rng: &mut Rng, depth: u32) -> Expr {
    if depth >= 4 {
        return match rng.below(3) {
            0 => Expr::Const(rng.next() as i32),
            1 => Expr::Const((rng.below(256)) as i32 - 128),
            _ => Expr::Local(rng.below(u64::from(VARS + COUNTERS)) as u32),
        };
    }
    match rng.below(12) {
        0 => Expr::Const(rng.next() as i32),
        1 => Expr::Const((rng.below(64)) as i32),
        2 | 3 => Expr::Local(rng.below(u64::from(VARS + COUNTERS)) as u32),
        4 => Expr::Load {
            addr: Box::new(gen_expr(rng, depth + 1)),
            offset: (rng.below(0x1000)) as u32,
        },
        5 => Expr::Load8 {
            addr: Box::new(gen_expr(rng, depth + 1)),
            offset: (rng.below(0x1000)) as u32,
        },
        6 => Expr::Wide(
            BINOPS[rng.below(14) as usize], // arithmetic subset
            Box::new(gen_expr(rng, depth + 1)),
            Box::new(gen_expr(rng, depth + 1)),
        ),
        7 => Expr::Select {
            cond: Box::new(gen_expr(rng, depth + 1)),
            then: Box::new(gen_expr(rng, depth + 1)),
            els: Box::new(gen_expr(rng, depth + 1)),
        },
        8 => Expr::Eqz(Box::new(gen_expr(rng, depth + 1))),
        _ => Expr::Bin(
            BINOPS[rng.below(BINOPS.len() as u64) as usize],
            Box::new(gen_expr(rng, depth + 1)),
            Box::new(gen_expr(rng, depth + 1)),
        ),
    }
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

impl RandomProgram {
    /// The seed this program was expanded from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Statement count — the shrinker's progress metric.
    pub fn size(&self) -> usize {
        fn stmts_size(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::If { then, els, .. } => 1 + stmts_size(then) + stmts_size(els),
                    Stmt::Loop { body, .. } => 1 + stmts_size(body),
                    _ => 1,
                })
                .sum()
        }
        stmts_size(&self.stmts)
    }

    /// Lowers to a validated module exporting `run : [] -> i32` over one
    /// page of memory pre-seeded with deterministic bytes.
    pub fn module(&self) -> Module {
        let mut ops = Vec::new();
        for s in &self.stmts {
            lower_stmt(s, &mut ops);
        }
        lower_expr(&self.result, &mut ops);
        ops.push(Op::End);

        let mut m = Module::new(1);
        let f = m.push_func(
            FuncBuilder::new("run")
                .result(ValType::I32)
                .locals(&vec![ValType::I32; (VARS + COUNTERS) as usize])
                .body(ops)
                .build(),
        );
        m.export("run", f);
        // Deterministic non-zero memory so loads see structure.
        let mut x = self.seed | 1;
        let data: Vec<u8> = (0..512)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 56) as u8
            })
            .collect();
        m.push_data(0, data);
        m
    }

    /// Greedy delta-debugging shrink: repeatedly applies the first
    /// single-step reduction under which `still_fails` keeps returning
    /// `true`, until no reduction does. The result is locally minimal —
    /// removing any single statement or simplifying any single operand
    /// makes the failure disappear.
    pub fn shrink(mut self, still_fails: impl Fn(&RandomProgram) -> bool) -> RandomProgram {
        loop {
            let mut reduced = None;
            for candidate in reductions(&self) {
                if still_fails(&candidate) {
                    reduced = Some(candidate);
                    break;
                }
            }
            match reduced {
                Some(r) => self = r,
                None => return self,
            }
        }
    }
}

fn lower_stmt(s: &Stmt, ops: &mut Vec<Op>) {
    match s {
        Stmt::Set(v, e) => {
            lower_expr(e, ops);
            ops.push(Op::LocalSet(*v));
        }
        Stmt::Store { addr, val, offset, narrow } => {
            lower_masked_addr(addr, ops);
            lower_expr(val, ops);
            if *narrow {
                ops.push(Op::I32Store8 { offset: *offset });
            } else {
                ops.push(Op::I32Store { offset: *offset });
            }
        }
        Stmt::If { cond, then, els } => {
            lower_expr(cond, ops);
            ops.push(Op::If);
            for s in then {
                lower_stmt(s, ops);
            }
            if !els.is_empty() {
                ops.push(Op::Else);
                for s in els {
                    lower_stmt(s, ops);
                }
            }
            ops.push(Op::End);
        }
        Stmt::Loop { counter, trips, body } => {
            ops.push(Op::I32Const(0));
            ops.push(Op::LocalSet(*counter));
            ops.push(Op::Block);
            ops.push(Op::Loop);
            ops.push(Op::LocalGet(*counter));
            ops.push(Op::I32Const(*trips as i32));
            ops.push(Op::I32GeU);
            ops.push(Op::BrIf(1));
            for s in body {
                lower_stmt(s, ops);
            }
            ops.push(Op::LocalGet(*counter));
            ops.push(Op::I32Const(1));
            ops.push(Op::I32Add);
            ops.push(Op::LocalSet(*counter));
            ops.push(Op::Br(0));
            ops.push(Op::End);
            ops.push(Op::End);
        }
    }
}

/// Addresses are masked to `0x3FFC`, so with a sub-`0x1000` static offset
/// every access stays inside the single memory page: generated programs
/// only trap on division, never on memory (memory traps have their own
/// directed tests; here they would drown the arithmetic coverage).
fn lower_masked_addr(addr: &Expr, ops: &mut Vec<Op>) {
    lower_expr(addr, ops);
    ops.push(Op::I32Const(0x3FFC));
    ops.push(Op::I32And);
}

fn lower_expr(e: &Expr, ops: &mut Vec<Op>) {
    match e {
        Expr::Const(k) => ops.push(Op::I32Const(*k)),
        Expr::Local(v) => ops.push(Op::LocalGet(*v)),
        Expr::Load { addr, offset } => {
            lower_masked_addr(addr, ops);
            ops.push(Op::I32Load { offset: *offset });
        }
        Expr::Load8 { addr, offset } => {
            lower_masked_addr(addr, ops);
            ops.push(Op::I32Load8U { offset: *offset });
        }
        Expr::Bin(op, a, b) => {
            lower_expr(a, ops);
            lower_expr(b, ops);
            ops.push(binop_op(*op));
        }
        Expr::Wide(op, a, b) => {
            lower_expr(a, ops);
            ops.push(Op::I64ExtendI32S);
            lower_expr(b, ops);
            ops.push(Op::I64ExtendI32S);
            ops.push(binop_op64(*op));
            ops.push(Op::I32WrapI64);
        }
        Expr::Select { cond, then, els } => {
            lower_expr(then, ops);
            lower_expr(els, ops);
            lower_expr(cond, ops);
            ops.push(Op::Select);
        }
        Expr::Eqz(a) => {
            lower_expr(a, ops);
            ops.push(Op::I32Eqz);
        }
    }
}

fn binop_op(op: BinOp) -> Op {
    match op {
        BinOp::Add => Op::I32Add,
        BinOp::Sub => Op::I32Sub,
        BinOp::Mul => Op::I32Mul,
        BinOp::DivS => Op::I32DivS,
        BinOp::DivU => Op::I32DivU,
        BinOp::RemS => Op::I32RemS,
        BinOp::RemU => Op::I32RemU,
        BinOp::And => Op::I32And,
        BinOp::Or => Op::I32Or,
        BinOp::Xor => Op::I32Xor,
        BinOp::Shl => Op::I32Shl,
        BinOp::ShrS => Op::I32ShrS,
        BinOp::ShrU => Op::I32ShrU,
        BinOp::Rotl => Op::I32Rotl,
        BinOp::Eq => Op::I32Eq,
        BinOp::Ne => Op::I32Ne,
        BinOp::LtS => Op::I32LtS,
        BinOp::LtU => Op::I32LtU,
        BinOp::GeS => Op::I32GeS,
        BinOp::GeU => Op::I32GeU,
    }
}

fn binop_op64(op: BinOp) -> Op {
    match op {
        BinOp::Add => Op::I64Add,
        BinOp::Sub => Op::I64Sub,
        BinOp::Mul => Op::I64Mul,
        BinOp::DivS => Op::I64DivS,
        BinOp::DivU => Op::I64DivU,
        BinOp::RemS => Op::I64RemS,
        BinOp::RemU => Op::I64RemU,
        BinOp::And => Op::I64And,
        BinOp::Or => Op::I64Or,
        BinOp::Xor => Op::I64Xor,
        BinOp::Shl => Op::I64Shl,
        BinOp::ShrS => Op::I64ShrS,
        BinOp::ShrU => Op::I64ShrU,
        // No 64-bit rotate in the mini-Wasm op set: widen as a xor.
        BinOp::Rotl => Op::I64Xor,
        // Comparisons are only generated through the arithmetic subset
        // (`BINOPS[..14]`), so a wide comparison is a generator bug.
        other => unreachable!("wide {other:?} is never generated"),
    }
}

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

/// Every single-step reduction of `p`, smallest-first-ish: statement
/// removals and block inlinings, then operand unwrapping inside exprs.
fn reductions(p: &RandomProgram) -> Vec<RandomProgram> {
    let mut out = Vec::new();
    for stmts in reduce_stmts(&p.stmts) {
        out.push(RandomProgram { seed: p.seed, stmts, result: p.result.clone() });
    }
    for result in reduce_expr(&p.result) {
        out.push(RandomProgram { seed: p.seed, stmts: p.stmts.clone(), result });
    }
    out
}

fn reduce_stmts(stmts: &[Stmt]) -> Vec<Vec<Stmt>> {
    let mut out = Vec::new();
    for (i, s) in stmts.iter().enumerate() {
        // Drop the statement outright.
        let mut dropped = stmts.to_vec();
        dropped.remove(i);
        out.push(dropped);
        // Structural simplifications of the statement itself.
        for r in reduce_stmt(s) {
            let mut v = stmts.to_vec();
            match r {
                Reduced::One(s2) => v[i] = s2,
                Reduced::Splice(inner) => {
                    v.splice(i..=i, inner);
                }
            }
            out.push(v);
        }
    }
    out
}

enum Reduced {
    One(Stmt),
    Splice(Vec<Stmt>),
}

fn reduce_stmt(s: &Stmt) -> Vec<Reduced> {
    let mut out = Vec::new();
    match s {
        Stmt::Set(v, e) => {
            for e2 in reduce_expr(e) {
                out.push(Reduced::One(Stmt::Set(*v, e2)));
            }
        }
        Stmt::Store { addr, val, offset, narrow } => {
            for a2 in reduce_expr(addr) {
                out.push(Reduced::One(Stmt::Store {
                    addr: a2,
                    val: val.clone(),
                    offset: *offset,
                    narrow: *narrow,
                }));
            }
            for v2 in reduce_expr(val) {
                out.push(Reduced::One(Stmt::Store {
                    addr: addr.clone(),
                    val: v2,
                    offset: *offset,
                    narrow: *narrow,
                }));
            }
        }
        Stmt::If { cond, then, els } => {
            // Inline either branch (losing the condition's side effects is
            // fine: generated conditions are pure).
            out.push(Reduced::Splice(then.clone()));
            out.push(Reduced::Splice(els.clone()));
            for c2 in reduce_expr(cond) {
                out.push(Reduced::One(Stmt::If {
                    cond: c2,
                    then: then.clone(),
                    els: els.clone(),
                }));
            }
            for t2 in reduce_stmts(then) {
                out.push(Reduced::One(Stmt::If { cond: cond.clone(), then: t2, els: els.clone() }));
            }
            for e2 in reduce_stmts(els) {
                out.push(Reduced::One(Stmt::If { cond: cond.clone(), then: e2, els: els.clone() }));
            }
        }
        Stmt::Loop { counter, trips, body } => {
            // Unwrap to the body (single trip, no counter), then cheaper
            // variants of the loop itself.
            out.push(Reduced::Splice(body.clone()));
            if *trips > 1 {
                out.push(Reduced::One(Stmt::Loop {
                    counter: *counter,
                    trips: 1,
                    body: body.clone(),
                }));
            }
            for b2 in reduce_stmts(body) {
                out.push(Reduced::One(Stmt::Loop { counter: *counter, trips: *trips, body: b2 }));
            }
        }
    }
    out
}

fn reduce_expr(e: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    if !matches!(e, Expr::Const(0)) {
        out.push(Expr::Const(0));
    }
    match e {
        Expr::Const(_) | Expr::Local(_) => {}
        Expr::Load { addr, offset } => {
            out.push((**addr).clone());
            for a in reduce_expr(addr) {
                out.push(Expr::Load { addr: Box::new(a), offset: *offset });
            }
        }
        Expr::Load8 { addr, offset } => {
            out.push((**addr).clone());
            for a in reduce_expr(addr) {
                out.push(Expr::Load8 { addr: Box::new(a), offset: *offset });
            }
        }
        Expr::Bin(op, a, b) | Expr::Wide(op, a, b) => {
            out.push((**a).clone());
            out.push((**b).clone());
            let rebuild: fn(BinOp, Box<Expr>, Box<Expr>) -> Expr = match e {
                Expr::Bin(..) => Expr::Bin,
                _ => Expr::Wide,
            };
            for a2 in reduce_expr(a) {
                out.push(rebuild(*op, Box::new(a2), b.clone()));
            }
            for b2 in reduce_expr(b) {
                out.push(rebuild(*op, a.clone(), Box::new(b2)));
            }
        }
        Expr::Select { cond, then, els } => {
            out.push((**then).clone());
            out.push((**els).clone());
            for c2 in reduce_expr(cond) {
                out.push(Expr::Select {
                    cond: Box::new(c2),
                    then: then.clone(),
                    els: els.clone(),
                });
            }
        }
        Expr::Eqz(a) => {
            out.push((**a).clone());
            for a2 in reduce_expr(a) {
                out.push(Expr::Eqz(Box::new(a2)));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Gadget mode
// ---------------------------------------------------------------------------

/// Seeded attacker-gadget generator — "gadget mode" for the speculative
/// harness (DESIGN.md §16). Same determinism contract as [`generate`]:
/// one seed, one module, forever.
///
/// Every output is a randomized bounds-check-bypass shape: a guard branch
/// trained in-bounds, then one hostile trial whose index lands in the
/// harness's planted secret region (`crate::gadgets::SECRET_INDEX` plus a
/// seed-dependent delta). The committed execution is architecturally
/// benign — the guard fails on the hostile trial, skipping the body — so
/// only the mispredicted window runs the secret read and its transmit
/// (load- or store-addressed by the stolen byte, per seed). The shapes
/// vary in training length, guard limit, strides, transmit kind and
/// access width; all stay within the window budget so an unmitigated
/// protected strategy demonstrably leaks and a declared-safe one must
/// not.
pub fn gadget(seed: u64) -> Module {
    let mut rng = Rng(seed ^ 0x53C5_7261_6E53_1E11);
    let trials = 16 + rng.below(32) as i32;
    let train_stride = [4, 8][rng.below(2) as usize];
    let limit = 0x400 + (rng.below(0xC00) as i32 & !3);
    let secret_index = crate::gadgets::SECRET_INDEX as i32 + (rng.below(0xF00) as i32 & !3);
    let probe_stride = [64, 128, 256][rng.below(3) as usize];
    let probe_offset = (rng.below(4) as u32) * 0x1000;
    let wide_read = rng.below(2) == 0;
    let store_transmit = rng.below(2) == 0;

    // Locals: 0 = trip counter, 1 = accumulator, 2 = stolen byte, 3 = index.
    let (t, acc, x, idx) = (0, 1, 2, 3);
    let mut ops = vec![Op::Block, Op::Loop];
    // while t <= trials
    ops.extend([Op::LocalGet(t), Op::I32Const(trials + 1), Op::I32GeU, Op::BrIf(1)]);
    // idx = t == trials ? secret : (t * stride) & 0xFFC   (branchless: the
    // guard below is the only trained branch)
    ops.extend([
        Op::I32Const(secret_index),
        Op::LocalGet(t),
        Op::I32Const(train_stride),
        Op::I32Mul,
        Op::I32Const(0xFFC),
        Op::I32And,
        Op::LocalGet(t),
        Op::I32Const(trials),
        Op::I32Eq,
        Op::Select,
        Op::LocalSet(idx),
    ]);
    // if idx < limit { x = mem[idx]; transmit(mem[f(x)]) }
    ops.extend([Op::LocalGet(idx), Op::I32Const(limit), Op::I32LtU, Op::If, Op::LocalGet(idx)]);
    ops.push(if wide_read { Op::I32Load { offset: 0 } } else { Op::I32Load8U { offset: 0 } });
    ops.push(Op::LocalSet(x));
    let addr = [
        Op::LocalGet(x),
        Op::I32Const(63),
        Op::I32And,
        Op::I32Const(probe_stride),
        Op::I32Mul,
    ];
    if store_transmit {
        ops.extend(addr);
        ops.extend([Op::I32Const(1), Op::I32Store8 { offset: probe_offset }]);
    } else {
        ops.push(Op::LocalGet(acc));
        ops.extend(addr);
        ops.extend([Op::I32Load { offset: probe_offset }, Op::I32Add, Op::LocalSet(acc)]);
    }
    ops.push(Op::End);
    // acc += idx & 0xFF; t += 1
    ops.extend([
        Op::LocalGet(acc),
        Op::LocalGet(idx),
        Op::I32Const(0xFF),
        Op::I32And,
        Op::I32Add,
        Op::LocalSet(acc),
        Op::LocalGet(t),
        Op::I32Const(1),
        Op::I32Add,
        Op::LocalSet(t),
        Op::Br(0),
        Op::End,
        Op::End,
        Op::LocalGet(acc),
        Op::End,
    ]);

    let mut m = Module::new(1);
    let f = m.push_func(
        FuncBuilder::new("run")
            .result(ValType::I32)
            .locals(&[ValType::I32; 4])
            .body(ops)
            .build(),
    );
    m.export("run", f);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gadget_mode_is_deterministic_and_valid() {
        for seed in 0..50 {
            let m1 = gadget(seed);
            let m2 = gadget(seed);
            assert_eq!(
                format!("{:?}", m1.defined_func(0).map(|f| &f.body)),
                format!("{:?}", m2.defined_func(0).map(|f| &f.body)),
                "gadget seed {seed} must be reproducible"
            );
            sfi_wasm::validate(&m1).unwrap_or_else(|e| panic!("gadget seed {seed}: {e}"));
            // Architecturally benign: the interpreter runs it to completion.
            let mut interp = sfi_wasm::interp::Interpreter::new(&m1).expect("instantiate");
            interp
                .invoke_export("run", &[])
                .unwrap_or_else(|e| panic!("gadget seed {seed} must not trap: {e:?}"));
        }
    }

    #[test]
    fn generation_is_deterministic_and_valid() {
        for seed in 0..50 {
            let p1 = generate(seed);
            let p2 = generate(seed);
            let m1 = p1.module();
            let m2 = p2.module();
            assert_eq!(format!("{:?}", m1.defined_func(0).map(|f| &f.body)),
                       format!("{:?}", m2.defined_func(0).map(|f| &f.body)),
                       "seed {seed} must be reproducible");
            sfi_wasm::validate(&m1).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn generated_programs_terminate_in_the_interpreter() {
        for seed in 0..30 {
            let p = generate(seed);
            let m = p.module();
            let mut interp = sfi_wasm::interp::Interpreter::new(&m).expect("instantiate");
            // Ok or a (division) trap — anything but a hang.
            let _ = interp.invoke_export("run", &[]);
        }
    }

    #[test]
    fn shrinking_reaches_a_local_minimum() {
        // Plant a synthetic "bug": any program whose result expression
        // contains a multiplication fails. The shrinker must strip
        // everything else away.
        fn has_mul_expr(e: &Expr) -> bool {
            match e {
                Expr::Bin(op, a, b) | Expr::Wide(op, a, b) => {
                    *op == BinOp::Mul || has_mul_expr(a) || has_mul_expr(b)
                }
                Expr::Load { addr, .. } | Expr::Load8 { addr, .. } => has_mul_expr(addr),
                Expr::Select { cond, then, els } => {
                    has_mul_expr(cond) || has_mul_expr(then) || has_mul_expr(els)
                }
                Expr::Eqz(a) => has_mul_expr(a),
                _ => false,
            }
        }
        fn has_mul(p: &RandomProgram) -> bool {
            fn in_stmts(stmts: &[Stmt]) -> bool {
                stmts.iter().any(|s| match s {
                    Stmt::Set(_, e) => has_mul_expr(e),
                    Stmt::Store { addr, val, .. } => has_mul_expr(addr) || has_mul_expr(val),
                    Stmt::If { cond, then, els } => {
                        has_mul_expr(cond) || in_stmts(then) || in_stmts(els)
                    }
                    Stmt::Loop { body, .. } => in_stmts(body),
                })
            }
            in_stmts(&p.stmts) || has_mul_expr(&p.result)
        }

        let p = generate(3); // the fold-in of locals guarantees a Mul
        assert!(has_mul(&p));
        let before = p.size();
        let shrunk = p.shrink(has_mul);
        assert!(has_mul(&shrunk), "shrinking must preserve the failure");
        assert!(shrunk.size() <= before);
        assert_eq!(shrunk.size(), 0, "all statements are irrelevant to the planted bug");
        // And the minimal program still lowers to a valid module.
        sfi_wasm::validate(&shrunk.module()).unwrap();
    }
}
