//! Criterion: ColorGuard allocator performance — layout computation, slot
//! allocate/recycle, and the bounded-exhaustive verifier (the paper's Flux
//! proof "checks in under a second"; our model checker should too).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfi_pool::{compute_layout, MemoryPool, PoolConfig};
use sfi_vm::AddressSpace;

fn bench_layout(c: &mut Criterion) {
    let mut group = c.benchmark_group("layout");
    for keys in [0u8, 15] {
        let cfg = PoolConfig::scaling_benchmark(keys);
        group.bench_with_input(BenchmarkId::from_parameter(keys), &cfg, |b, cfg| {
            b.iter(|| compute_layout(cfg).expect("valid config"));
        });
    }
    group.finish();
}

fn bench_alloc_recycle(c: &mut Criterion) {
    let cfg = PoolConfig {
        num_slots: 64,
        max_memory_bytes: 65536,
        expected_slot_bytes: 4 * 65536,
        guard_bytes: 4 * 65536,
        guard_before_slots: true,
        num_pkeys_available: 15,
        total_memory_bytes: 1 << 31,
    };
    let mut space = AddressSpace::new_48bit();
    let mut pool = MemoryPool::create(&mut space, &cfg).expect("pool");
    c.bench_function("pool/alloc_recycle", |b| {
        b.iter(|| {
            let h = pool.allocate(&mut space).expect("slot");
            pool.deallocate(&mut space, h).expect("recycles");
        });
    });
}

fn bench_verifier(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify");
    group.sample_size(10);
    group.bench_function("bounded_exhaustive_fixed", |b| {
        b.iter(|| {
            assert!(sfi_pool::verify::find_violation(sfi_pool::compute_layout).is_none());
        });
    });
    group.finish();
}

criterion_group!(benches, bench_layout, bench_alloc_recycle, bench_verifier);
criterion_main!(benches);
