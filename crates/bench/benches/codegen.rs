//! Criterion: compiler throughput per SFI strategy, plus the vectorizer
//! ablation (how much compile time the WAMR-style pass costs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfi_core::{compile, Strategy};

fn bench_compile(c: &mut Criterion) {
    let w = sfi_workloads::sightglass()
        .into_iter()
        .find(|w| w.name == "heapsort")
        .expect("corpus has heapsort");
    let module = w.module();
    let mut group = c.benchmark_group("compile_heapsort");
    group.sample_size(20);
    for strategy in [Strategy::Native, Strategy::GuardRegion, Strategy::Segue, Strategy::BoundsCheck]
    {
        let cfg = sfi_bench::config_for(strategy, module.mem_min_pages, false);
        group.bench_with_input(BenchmarkId::from_parameter(strategy), &cfg, |b, cfg| {
            b.iter(|| compile(&module, cfg).expect("compiles"));
        });
    }
    group.finish();
}

fn bench_vectorizer(c: &mut Criterion) {
    let w = sfi_workloads::sightglass()
        .into_iter()
        .find(|w| w.name == "memmove")
        .expect("corpus has memmove");
    let module = w.module();
    let mut group = c.benchmark_group("vectorizer_ablation");
    group.sample_size(20);
    for vectorize in [false, true] {
        let cfg = sfi_bench::config_for(Strategy::GuardRegion, module.mem_min_pages, vectorize);
        group.bench_with_input(
            BenchmarkId::from_parameter(if vectorize { "on" } else { "off" }),
            &cfg,
            |b, cfg| {
                b.iter(|| compile(&module, cfg).expect("compiles"));
            },
        );
    }
    group.finish();
}

fn bench_encode(c: &mut Criterion) {
    let w = sfi_workloads::spec2006()
        .into_iter()
        .find(|w| w.name == "445_gobmk")
        .expect("corpus has gobmk");
    let module = w.module();
    let cm = compile(&module, &sfi_bench::config_for(Strategy::Segue, module.mem_min_pages, false))
        .expect("compiles");
    let program = cm.image.program().clone();
    let mut group = c.benchmark_group("encode");
    group.sample_size(30);
    group.bench_function("gobmk_segue", |b| {
        b.iter(|| sfi_x86::encode::encode_program(&program).expect("encodes"));
    });
    group.finish();
}

criterion_group!(benches, bench_compile, bench_vectorizer, bench_encode);
criterion_main!(benches);
