//! Criterion: end-to-end invocation cost through the multi-instance runtime
//! with and without ColorGuard — the §6.4.1 microbenchmark's real-code
//! counterpart (the paper uses wasmtime/benches/call.rs).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfi_core::{compile, CompilerConfig, Strategy};
use sfi_runtime::{Runtime, RuntimeConfig};

fn bench_invoke(c: &mut Criterion) {
    let module = sfi_wasm::wat::parse(
        r#"(module (memory 1)
             (func (export "noop") (result i32) i32.const 1))"#,
    )
    .expect("static module");
    let cm = Arc::new(
        compile(&module, &CompilerConfig::for_strategy(Strategy::Segue)).expect("compiles"),
    );

    let mut group = c.benchmark_group("invoke_noop");
    group.sample_size(30);
    for colorguard in [false, true] {
        let mut rt = Runtime::new(RuntimeConfig::small_test(colorguard)).expect("runtime");
        let inst = rt.instantiate(Arc::clone(&cm)).expect("slot");
        group.bench_with_input(
            BenchmarkId::from_parameter(if colorguard { "colorguard" } else { "plain" }),
            &inst,
            |b, &inst| {
                b.iter(|| rt.invoke(inst, "noop", &[]).expect("runs"));
            },
        );
    }
    group.finish();
}

fn bench_instantiate(c: &mut Criterion) {
    let module = sfi_wasm::wat::parse(
        r#"(module (memory 1)
             (data (i32.const 0) "seed")
             (func (export "noop") (result i32) i32.const 1))"#,
    )
    .expect("static module");
    let cm = Arc::new(
        compile(&module, &CompilerConfig::for_strategy(Strategy::Segue)).expect("compiles"),
    );
    let mut rt = Runtime::new(RuntimeConfig::small_test(true)).expect("runtime");
    c.bench_function("instantiate_terminate", |b| {
        b.iter(|| {
            let id = rt.instantiate(Arc::clone(&cm)).expect("slot");
            rt.terminate(id).expect("recycles");
        });
    });
}

criterion_group!(benches, bench_invoke, bench_instantiate);
criterion_main!(benches);
