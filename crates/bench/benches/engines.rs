//! Criterion: the from-scratch FaaS workload engines (regex, templating,
//! consistent hashing) — real host performance of the §6.4.3 building
//! blocks.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sfi_faas::hashlb::HashRing;
use sfi_faas::regex::Regex;
use sfi_faas::template::{render, Context};

fn bench_regex(c: &mut Criterion) {
    let re = Regex::new("^/api/v[0-9]+/users/[0-9]+$").expect("static pattern");
    let hit = "/api/v2/users/1234567";
    let miss = "/static/assets/app.bundle.min.js";
    let mut group = c.benchmark_group("regex");
    group.throughput(Throughput::Bytes((hit.len() + miss.len()) as u64));
    group.bench_function("url_filter", |b| {
        b.iter(|| (re.is_match(hit), re.is_match(miss)));
    });
    group.finish();
}

fn bench_template(c: &mut Criterion) {
    let mut ctx = Context::new();
    ctx.insert("title".into(), "Bench".into());
    ctx.insert(
        "rows".into(),
        (0..50).map(|i| format!("row-{i}")).collect::<Vec<_>>().join("|"),
    );
    let tpl = "<h1>{{title}}</h1><ul>{{#each rows}}<li>{{item}}</li>{{/each}}</ul>";
    c.bench_function("template/50_rows", |b| {
        b.iter(|| render(tpl, &ctx).expect("renders"));
    });
}

fn bench_hashring(c: &mut Criterion) {
    let ring = HashRing::new((0..16).map(|i| format!("origin-{i}")).collect::<Vec<_>>(), 64);
    c.bench_function("hashring/route", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            ring.route(&format!("/tenant/{}/obj/{i}", i % 512))
        });
    });
}

criterion_group!(benches, bench_regex, bench_template, bench_hashring);
criterion_main!(benches);
