//! Criterion: emulator throughput — how fast the deterministic x86 model
//! retires instructions (the laboratory's own performance, not the paper's).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sfi_core::Strategy;

fn bench_emulator(c: &mut Criterion) {
    let w = sfi_workloads::sightglass()
        .into_iter()
        .find(|w| w.name == "nestedloop")
        .expect("corpus has nestedloop");
    let cm = sfi_bench::compile_workload(&w, Strategy::Segue, false);
    // One dry run to learn the instruction count.
    let insts = sfi_bench::run_compiled(&w, &cm).insts;

    let mut group = c.benchmark_group("emulator");
    group.sample_size(10);
    group.throughput(Throughput::Elements(insts));
    group.bench_function("nestedloop_segue", |b| {
        b.iter(|| sfi_core::harness::execute_export(&cm, "run", &[]).expect("runs"));
    });
    group.finish();
}

fn bench_interpreter(c: &mut Criterion) {
    let w = sfi_workloads::sightglass()
        .into_iter()
        .find(|w| w.name == "fib2")
        .expect("corpus has fib2");
    let module = w.module();
    let mut group = c.benchmark_group("interpreter");
    group.sample_size(10);
    group.bench_function("fib2", |b| {
        b.iter(|| {
            let mut i = sfi_wasm::interp::Interpreter::new(&module).expect("instantiates");
            i.invoke_export("run", &[]).expect("runs")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_emulator, bench_interpreter);
criterion_main!(benches);
