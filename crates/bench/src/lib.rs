//! # sfi-bench: the evaluation harness
//!
//! One binary per table/figure of the paper (see `src/bin/`), plus the
//! Criterion microbenchmarks in `benches/`. This library holds the shared
//! measurement plumbing: compile a corpus workload under a strategy, run it
//! on the deterministic emulator, and report modeled cycles, instruction
//! counts and code size.
//!
//! Reproduce everything with:
//!
//! ```text
//! cargo run --release -p sfi-bench --bin fig3_spec2006
//! cargo run --release -p sfi-bench --bin table2_binsize
//! cargo run --release -p sfi-bench --bin fig4_sightglass
//! cargo run --release -p sfi-bench --bin sec61_firefox
//! cargo run --release -p sfi-bench --bin sec62_wamr_suites
//! cargo run --release -p sfi-bench --bin fig5_lfi_spec2017
//! cargo run --release -p sfi-bench --bin sec641_transitions
//! cargo run --release -p sfi-bench --bin sec642_scaling
//! cargo run --release -p sfi-bench --bin fig6_throughput
//! cargo run --release -p sfi-bench --bin fig7_ctx_dtlb
//! cargo run --release -p sfi-bench --bin table1_invariants
//! cargo run --release -p sfi-bench --bin sec7_mte
//! ```

#![forbid(unsafe_code)]

use sfi_core::{compile, CompiledModule, CompilerConfig, MemLayout, OptLevel, RuntimeRegions, Strategy};
use sfi_wasm::PAGE_SIZE;
use sfi_workloads::Workload;
use sfi_x86::cost::RunStats;

/// One measured execution.
#[derive(Debug, Clone)]
pub struct Measured {
    /// Modeled cycles.
    pub cycles: f64,
    /// Retired instructions.
    pub insts: u64,
    /// Encoded code bytes.
    pub code_bytes: usize,
    /// The checksum the workload returned (for cross-strategy agreement).
    pub result: u64,
    /// Full counters.
    pub stats: RunStats,
}

/// Builds the compiler configuration for a module of `mem_pages` pages.
pub fn config_for(strategy: Strategy, mem_pages: u32, vectorize: bool) -> CompilerConfig {
    let mem_size = (u64::from(mem_pages) * PAGE_SIZE).next_power_of_two();
    if strategy == Strategy::Native {
        // Native code addresses its data directly: the heap sits at the
        // bottom of the address space (small displacements, as real
        // compiled C has), with the runtime regions above it.
        return CompilerConfig {
            strategy,
            vectorize,
            stack_check: false,
            lfi_reserved_regs: false,
            segment_entry_protocol: false,
            opt_level: OptLevel::Baseline,
            mitigation: sfi_core::MitigationLevel::None,
            layout: MemLayout { heap_base: 0, mem_size, guard_size: 0 },
            regions: RuntimeRegions {
                header_base: 0x14_0000 + mem_size as u32,
                globals_base: 0x14_1000 + mem_size as u32,
                table_base: 0x15_0000 + mem_size as u32,
                stack_limit: 0x16_0000 + mem_size as u32,
                stack_top: 0x1C_0000 + mem_size as u32,
            },
        };
    }
    CompilerConfig {
        strategy,
        vectorize,
        stack_check: true,
        lfi_reserved_regs: false,
        segment_entry_protocol: false,
        opt_level: OptLevel::Baseline,
        mitigation: sfi_core::MitigationLevel::None,
        layout: MemLayout { heap_base: 0x10_0000, mem_size, guard_size: 0x1_0000 },
        regions: RuntimeRegions::small_test(),
    }
}

/// Compiles a workload under `strategy` (the `Native` strategy uses the
/// 64-bit-pointer variant of the module where one exists).
pub fn compile_workload(w: &Workload, strategy: Strategy, vectorize: bool) -> CompiledModule {
    let module = if strategy == Strategy::Native { w.native_module() } else { w.module() };
    let cfg = config_for(strategy, module.mem_min_pages, vectorize);
    compile(&module, &cfg).unwrap_or_else(|e| panic!("{} under {strategy}: {e}", w.name))
}

/// Compiles and runs a workload under `strategy`.
pub fn measure(w: &Workload, strategy: Strategy, vectorize: bool) -> Measured {
    let cm = compile_workload(w, strategy, vectorize);
    run_compiled(w, &cm)
}

/// Runs an already-compiled workload.
pub fn run_compiled(w: &Workload, cm: &CompiledModule) -> Measured {
    let out = sfi_core::harness::execute_export(cm, "run", &[])
        .unwrap_or_else(|e| panic!("{} under {}: {e}", w.name, cm.config.strategy));
    Measured {
        cycles: out.stats.cycles,
        insts: out.stats.insts,
        code_bytes: cm.code_size(),
        result: out.result.map(|r| r & 0xFFFF_FFFF).unwrap_or(0),
        stats: out.stats,
    }
}

/// Formats a ratio as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Geometric mean.
pub fn geomean(xs: &[f64]) -> f64 {
    sfi_faas::stats::geomean(xs)
}

/// Prints a crude fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{c:>w$}  ", w = *w));
    }
    println!("{}", line.trim_end());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategies_agree_on_fast_workloads() {
        let sg = sfi_workloads::sightglass();
        let fib = sg.iter().find(|w| w.name == "fib2").expect("corpus has fib2");
        let nested = sg.iter().find(|w| w.name == "nestedloop").expect("corpus has nestedloop");
        for w in [fib, nested] {
            let native = measure(w, Strategy::Native, false);
            let guard = measure(w, Strategy::GuardRegion, false);
            let segue = measure(w, Strategy::Segue, false);
            assert_eq!(native.result, guard.result, "{}", w.name);
            assert_eq!(guard.result, segue.result, "{}", w.name);
            assert!(native.cycles > 0.0);
        }
    }

    #[test]
    fn segue_beats_guard_on_matrix() {
        let sg = sfi_workloads::sightglass();
        let matrix = sg.iter().find(|w| w.name == "matrix").expect("corpus has matrix");
        let native = measure(matrix, Strategy::Native, false);
        let guard = measure(matrix, Strategy::GuardRegion, false);
        let segue = measure(matrix, Strategy::Segue, false);
        assert_eq!(guard.result, segue.result);
        assert!(guard.cycles > native.cycles, "SFI costs something");
        assert!(segue.cycles < guard.cycles, "Segue reduces the cost");
    }
}
