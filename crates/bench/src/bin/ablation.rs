//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. stripe-count sweep — how ColorGuard's density scales with the number
//!    of available protection keys (the "up to 15×" claim, §3.2);
//! 2. guard-size sweep — the guard-pages-vs-bounds-checks trade-off that
//!    motivates ColorGuard in the first place (§2, §8);
//! 3. Segue component ablation — loads-only vs stores-only vs full, and
//!    with/without the vectorizer, on the interaction benchmark.

use sfi_bench::{measure, row};
use sfi_core::Strategy;
use sfi_pool::{compute_layout, PoolConfig};

fn main() {
    // ---- 1. density vs available keys ----
    println!("Ablation 1: instances per 47-bit address space vs available MPK keys\n");
    let widths = [6, 12, 10];
    row(&["keys".into(), "slots".into(), "vs none".into()], &widths);
    let base = compute_layout(&PoolConfig::scaling_benchmark(0)).expect("layout").num_slots;
    for keys in [0u8, 2, 4, 8, 15] {
        let l = compute_layout(&PoolConfig::scaling_benchmark(keys)).expect("layout");
        row(
            &[
                format!("{keys}"),
                format!("{}", l.num_slots),
                format!("{:.1}×", l.num_slots as f64 / base as f64),
            ],
            &widths,
        );
    }

    // ---- 2. guard size vs density (no striping) ----
    println!("\nAblation 2: guard size vs density (4 GiB reservations, no MPK)\n");
    row(&["guard".into(), "slots".into(), "".into()], &widths);
    for guard_gib in [1u64, 2, 4, 6, 8] {
        let cfg = PoolConfig {
            guard_bytes: guard_gib << 30,
            num_pkeys_available: 0,
            ..PoolConfig::scaling_benchmark(0)
        };
        let l = compute_layout(&cfg).expect("layout");
        row(&[format!("{guard_gib} GiB"), format!("{}", l.num_slots), String::new()], &widths);
    }
    println!("(smaller guards need explicit bounds checks — Strategy::BoundsCheck — which");
    println!(" cost runtime instead of address space; ColorGuard escapes the trade-off)");

    // ---- 3. Segue component ablation on the vectorizer benchmark ----
    println!("\nAblation 3: Segue variants on memmove (vectorizer on/off), cycles normalized to native\n");
    let w = sfi_workloads::sightglass()
        .into_iter()
        .find(|w| w.name == "memmove")
        .expect("corpus has memmove");
    let widths = [14, 16, 16];
    row(&["strategy".into(), "vectorizer off".into(), "vectorizer on".into()], &widths);
    for s in [Strategy::GuardRegion, Strategy::SegueLoads, Strategy::Segue] {
        let n_off = measure(&w, Strategy::Native, false).cycles;
        let n_on = measure(&w, Strategy::Native, true).cycles;
        let off = measure(&w, s, false).cycles / n_off * 100.0;
        let on = measure(&w, s, true).cycles / n_on * 100.0;
        row(
            &[s.to_string(), format!("{off:.1}%"), format!("{on:.1}%")],
            &widths,
        );
    }
    println!("\n(full Segue loses its advantage exactly when the vectorizer is on —");
    println!(" the §4.2 interaction; loads-only keeps both optimizations)");
}
