//! §8 (related work): why bigger virtual address spaces don't obsolete
//! ColorGuard.
//!
//! 57-bit user address spaces would fit far more guard-region sandboxes —
//! but require 5-level page tables, making every TLB miss ~25% more
//! expensive (the paper: "TLB misses are already a significant source of
//! overhead in high-performance Wasm-FaaS platforms"). ColorGuard gets the
//! density *without* the extra walk level.

use sfi_pool::{compute_layout, PoolConfig};
use sfi_vm::tlb::Tlb;
use sfi_vm::AddressSpace;

fn main() {
    println!("§8: scaling via larger address spaces vs ColorGuard\n");

    let s48 = AddressSpace::new_48bit();
    let s57 = AddressSpace::new_57bit();

    // Capacity: guard-region sandboxes per address space.
    let mut rows = Vec::new();
    for (name, span, keys) in [
        ("48-bit, guard regions", s48.user_span(), 0u8),
        ("57-bit, guard regions", s57.user_span(), 0),
        ("48-bit + ColorGuard", s48.user_span(), 15),
    ] {
        let cfg = PoolConfig { total_memory_bytes: span, ..PoolConfig::scaling_benchmark(keys) };
        let slots = compute_layout(&cfg).expect("layout").num_slots;
        rows.push((name, slots));
    }
    println!("instances with 408 MiB memories + 4 GiB reservations + 6 GiB guards:");
    for (name, slots) in &rows {
        println!("  {name:<24} {slots:>10}");
    }

    // Cost: the page-walk depth.
    let t48 = Tlb::for_va_bits(48);
    let t57 = Tlb::for_va_bits(57);
    println!("\ndTLB miss cost: {} levels → {:.0} cycles (48-bit) vs {} levels → {:.0} cycles (57-bit, +{:.0}%)",
        t48.walk_levels,
        t48.miss_cycles(),
        t57.walk_levels,
        t57.miss_cycles(),
        (t57.miss_cycles() / t48.miss_cycles() - 1.0) * 100.0
    );

    // A FaaS node constantly maps/unmaps Wasm heaps: put the walk cost in
    // context with the Figure 7b miss counts.
    let misses_per_run = 57.2e6; // multiprocess, 15 procs, 60 s (fig7)
    let extra = misses_per_run * (t57.miss_cycles() - t48.miss_cycles()) / 2.2e9;
    println!(
        "at Figure 7b's multiprocess miss rate, 5-level paging would add ~{extra:.2} s \
         of walk time per 60 s run"
    );
    println!(
        "\n57-bit spaces fit more raw reservations ({} vs ColorGuard's {}), but pay the\n\
         5-level-walk tax on every miss and need opt-in kernels/hardware; ColorGuard\n\
         lifts the 48-bit limit 15× on today's CPUs with 4-level walks — and the two\n\
         compose (ColorGuard on 57 bits would stripe {}).",
        rows[1].1,
        rows[2].1,
        rows[1].1 * 15
    );
}
