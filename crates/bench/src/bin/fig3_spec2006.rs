//! Figure 3: SPEC CPU 2006 on Wasm2c, normalized to native.
//!
//! Reproduces the paper's headline Segue result: per-benchmark runtime of
//! the guard-region baseline and Segue, normalized to native execution, plus
//! the geomean and the fraction of Wasm's overhead Segue eliminates
//! (the paper reports 44.7% on this suite, with 429_mcf faster than native
//! and 473_astar slightly slower under Segue).

use sfi_bench::{geomean, measure, row};
use sfi_core::Strategy;

fn main() {
    println!("Figure 3: SPEC CPU 2006 on Wasm2c (normalized runtime, native = 100%)\n");
    let widths = [16, 10, 12, 12, 10];
    row(
        &[
            "benchmark".into(),
            "native".into(),
            "wasm2c".into(),
            "wasm2c+segue".into(),
            "Δsegue".into(),
        ],
        &widths,
    );

    let mut base_norm = Vec::new();
    let mut segue_norm = Vec::new();
    for w in sfi_workloads::spec2006() {
        let native = measure(&w, Strategy::Native, false);
        let guard = measure(&w, Strategy::GuardRegion, false);
        let segue = measure(&w, Strategy::Segue, false);
        assert_eq!(guard.result, segue.result, "{}: strategies must agree", w.name);
        let bn = guard.cycles / native.cycles;
        let sn = segue.cycles / native.cycles;
        base_norm.push(bn);
        segue_norm.push(sn);
        row(
            &[
                w.name.into(),
                "100.0%".into(),
                format!("{:.1}%", bn * 100.0),
                format!("{:.1}%", sn * 100.0),
                format!("{:+.1}%", (sn - bn) * 100.0),
            ],
            &widths,
        );
    }

    let gb = geomean(&base_norm);
    let gs = geomean(&segue_norm);
    row(
        &[
            "geomean".into(),
            "100.0%".into(),
            format!("{:.1}%", gb * 100.0),
            format!("{:.1}%", gs * 100.0),
            format!("{:+.1}%", (gs - gb) * 100.0),
        ],
        &widths,
    );
    let eliminated = (gb - gs) / (gb - 1.0) * 100.0;
    println!(
        "\nWasm overhead: {:.1}% baseline → {:.1}% with Segue; Segue eliminates {:.1}% of the overhead",
        (gb - 1.0) * 100.0,
        (gs - 1.0) * 100.0,
        eliminated
    );
    println!("(paper: geomean reduced by 8.3 points, 44.7% of overhead eliminated)");
}
