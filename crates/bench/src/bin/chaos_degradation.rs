//! Chaos degradation: throughput and goodput under an escalating per-stage
//! trap rate, in both scaling modes.
//!
//! The containment claim this table backs: with poisoning, quarantine and
//! per-request retry in place, injected sandbox crashes cost throughput
//! *proportionally* — the platform degrades, it does not collapse. Every
//! row is a pure function of the seed, so the table is byte-stable across
//! runs.

use sfi_bench::row;
use sfi_faas::{simulate, FaasWorkload, FailureModel, ScalingMode, SimConfig};

const RATES: [f64; 7] = [0.0, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50];

fn run(mode: ScalingMode, rate: f64) -> sfi_faas::SimReport {
    let mut cfg = SimConfig::paper_rig(FaasWorkload::HashLoadBalance, mode);
    cfg.duration_ms = 2_000;
    cfg.failures = FailureModel::with_trap_rate(rate);
    simulate(&cfg)
}

fn table(label: &str, mode: ScalingMode) {
    println!("{label}\n");
    let widths = [8, 12, 12, 10, 8, 8, 8, 12];
    row(
        &[
            "trap".into(),
            "thr (rps)".into(),
            "goodput".into(),
            "avail".into(),
            "faults".into(),
            "retries".into(),
            "dead".into(),
            "vs clean".into(),
        ],
        &widths,
    );

    let clean = run(mode, 0.0).throughput_rps;
    for &rate in &RATES {
        let r = run(mode, rate);
        row(
            &[
                format!("{:.0}%", rate * 100.0),
                format!("{:.0}", r.throughput_rps),
                format!("{:.0}", r.goodput_rps),
                format!("{:.3}", r.availability),
                format!("{}", r.faults),
                format!("{}", r.retries),
                format!("{}", r.dead_lettered),
                format!("{:+.1}%", (r.throughput_rps - clean) / clean * 100.0),
            ],
            &widths,
        );
    }
    println!();
}

fn main() {
    println!(
        "Chaos degradation: per-stage trap injection with recycle + retry\n\
         (workload: {}, 2 s simulated, deterministic seed)\n",
        FaasWorkload::HashLoadBalance.name()
    );

    table("ColorGuard (single address space, MPK stripes)", ScalingMode::ColorGuard);
    table(
        "Multiprocess (15 processes)",
        ScalingMode::MultiProcess { processes: 15 },
    );

    // The acceptance bar: graceful degradation. Check it here so the
    // binary doubles as a smoke test — a collapse prints loudly.
    for (label, mode) in [
        ("ColorGuard", ScalingMode::ColorGuard),
        ("Multiprocess", ScalingMode::MultiProcess { processes: 15 }),
    ] {
        let clean = run(mode, 0.0).throughput_rps;
        let worst = RATES
            .iter()
            .filter(|&&r| r < 0.50)
            .map(|&r| run(mode, r).throughput_rps)
            .fold(f64::INFINITY, f64::min);
        let status = if worst > 0.25 * clean { "graceful" } else { "COLLAPSE" };
        println!(
            "{label}: worst throughput below 50% trap rate = {:.0} rps \
             ({:.0}% of clean) — {status}",
            worst,
            worst / clean * 100.0
        );
    }
}
