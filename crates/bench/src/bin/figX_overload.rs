//! Overload sweep: open-loop Poisson arrivals from half the saturation
//! rate to 2× past it, with multi-tenant QoS and admission control on
//! (ColorGuard, warm cache, 2 cores). Emits `BENCH_overload.json`
//! (byte-identical across same-seed runs): goodput, shed rate, occupancy
//! and per-SLO-class latency percentiles at every offered rate.
//!
//! `--check` asserts the overload contract (DESIGN.md §12):
//!
//! 1. **Graceful degradation** — past saturation the latency-sensitive
//!    class sheds nothing, batch absorbs the majority of the shedding,
//!    latency-sensitive p99 stays bounded, and goodput does not collapse.
//! 2. **Elastic determinism** — an autoscaling fleet whose member is
//!    killed mid-round and recovered by checkpoint replay produces the
//!    same size trajectory and byte-identical modeled snapshot as the
//!    uninterrupted run.
//! 3. **Legacy byte-compatibility** — the closed-loop sweep recomputed
//!    with QoS off is byte-identical to the `BENCH_multicore.json` on
//!    disk: the overload layer changed nothing it didn't opt into.

use sfi_bench::row;
use sfi_faas::{
    multicore_sweep_json, overload_sweep_json, AutoscalePolicy, ArrivalModel, FleetConfig,
    FleetSupervisor, ServeConfig,
};
use sfi_telemetry::json_is_valid;
use sfi_vm::{EngineFault, FaultPlan};

const SEED: u64 = 0x5E65E9;
const DURATION_MS: u64 = 200;
const CORES: u32 = 2;
/// Offered rates in requests/second. The closed-loop paper rig drives
/// 40 req per 1 ms epoch per core = 40k rps/core, so 80k rps saturates
/// 2 cores; the sweep runs from half saturation to 2× past it.
const RATES: [f64; 7] =
    [20_000.0, 40_000.0, 60_000.0, 80_000.0, 100_000.0, 120_000.0, 160_000.0];

/// Constants of the `figX_multicore` bench, used by the legacy
/// byte-compatibility gate to recompute `BENCH_multicore.json`.
const MC_DURATION_MS: u64 = 400;
const MC_CORES: [u32; 4] = [1, 2, 4, 8];

fn json_field(row: &str, field: &str) -> Option<f64> {
    let pat = format!("\"{field}\": ");
    let start = row.find(&pat)? + pat.len();
    let rest = &row[start..];
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// An elastic single-member fleet under ~2.5× overload: the unit gate 2
/// kills and recovers — its size trajectory must not care.
fn elastic_fleet() -> FleetConfig {
    let mut cfg = FleetConfig::paper_rig(1, CORES);
    let shape = |c: &mut ServeConfig| {
        c.engine.duration_ms = 10;
        c.probe.duration_ms = 5;
        c.engine.arrivals = ArrivalModel::Poisson { rate_rps: 200_000.0 };
    };
    for m in &mut cfg.members {
        shape(m);
    }
    let mut template = ServeConfig::paper_rig(CORES);
    shape(&mut template);
    cfg.autoscale = Some(AutoscalePolicy::paper_rig(template));
    cfg
}

/// Gate 2: a mid-round kill during scale-out, recovered by checkpoint
/// replay, must leave the fleet's size trajectory and modeled snapshot
/// byte-identical to the uninterrupted run.
fn check_elastic_determinism() {
    // The injected panic is caught by the supervisor; keep the default
    // hook from spraying its backtrace over the bench output.
    std::panic::set_hook(Box::new(|info| {
        let msg =
            info.payload().downcast_ref::<String>().map(String::as_str).unwrap_or_default();
        if !msg.starts_with("chaos: injected") {
            eprintln!("{info}");
        }
    }));
    let run = |chaos: Option<FaultPlan>| {
        let mut cfg = elastic_fleet();
        if let Some(plan) = chaos {
            cfg.chaos = plan;
        }
        let mut fleet = FleetSupervisor::new(cfg);
        for _ in 0..6 {
            fleet.run_round();
        }
        fleet
    };
    let quiet = run(None);
    let killed =
        run(Some(FaultPlan::new().engine_fail_at(0, 1, EngineFault::MidRoundPanic)));
    let _ = std::panic::take_hook();
    assert!(quiet.members_live() > 1, "overloaded fleet must have scaled out");
    assert_eq!(killed.members()[0].restarts, 1, "the kill must really have happened");
    assert_eq!(
        killed.members_live(),
        quiet.members_live(),
        "crash recovery bent the autoscale trajectory"
    );
    assert_eq!(
        killed.snapshot_json(),
        quiet.snapshot_json(),
        "killed-then-respawned fleet diverged from the uninterrupted run"
    );
    println!(
        "elastic OK: scale-out to {} members, kill+replay byte-equal to uninterrupted",
        quiet.members_live()
    );
}

fn check(json: &str) {
    // Determinism: a second same-seed sweep reproduces the bytes.
    let rerun = overload_sweep_json(SEED, DURATION_MS, CORES, &RATES);
    assert_eq!(json, rerun, "same seed must reproduce BENCH_overload.json byte-identically");
    assert!(json_is_valid(json), "BENCH_overload.json must parse as JSON");
    assert!(json.contains("\"telemetry\""), "sweep JSON must embed a telemetry section");
    assert!(json.contains("sfi_qos_shed_total"), "snapshot must carry QoS counters");

    // Gate 1: graceful degradation past saturation.
    let derived_field = |name: &str| {
        let line = json.lines().find(|l| l.contains(name)).expect("derived line");
        json_field(line, name).expect("derived field")
    };
    let ls_ratio = derived_field("ls_p99_peak_over_light");
    let batch_rate = derived_field("batch_shed_rate_at_peak");
    let std_rate = derived_field("standard_shed_rate_at_peak");
    let ls_shed = derived_field("ls_shed_at_peak");
    assert_eq!(ls_shed, 0.0, "latency-sensitive must not shed at 2x overload");
    assert!(
        batch_rate > std_rate,
        "batch must shed harder than standard at peak: {batch_rate:.2} vs {std_rate:.2}"
    );
    assert!(batch_rate >= 0.9, "2x overload must shed nearly all batch: {batch_rate:.2}");
    assert!(
        ls_ratio > 0.0 && ls_ratio <= 5.0,
        "latency-sensitive p99 must stay bounded past saturation: {ls_ratio:.2}x light load"
    );
    let goodputs: Vec<f64> = json
        .lines()
        .filter(|l| l.contains("\"offered_rps\""))
        .map(|l| json_field(l, "goodput_rps").expect("goodput field"))
        .collect();
    assert_eq!(goodputs.len(), RATES.len(), "one row per offered rate");
    let best = goodputs.iter().cloned().fold(0.0, f64::max);
    let at_peak = *goodputs.last().expect("rows");
    assert!(
        at_peak >= 0.8 * best,
        "goodput must not collapse past saturation: {at_peak:.0} vs best {best:.0}"
    );
    let shed_at_peak = json
        .lines()
        .rfind(|l| l.contains("\"offered_rps\""))
        .and_then(|l| json_field(l, "shed_total"))
        .expect("shed field");
    assert!(shed_at_peak > 0.0, "2x overload must actually shed");

    // Gate 2: elastic determinism through a kill.
    check_elastic_determinism();

    // Gate 3: the closed-loop legacy path is byte-identical to the
    // artifact figX_multicore wrote (run `figX_multicore` first).
    let on_disk = std::fs::read_to_string("BENCH_multicore.json")
        .expect("BENCH_multicore.json on disk (run figX_multicore first)");
    let legacy = multicore_sweep_json(SEED, MC_DURATION_MS, &MC_CORES);
    assert_eq!(
        legacy, on_disk,
        "closed-loop sweep must stay byte-identical to BENCH_multicore.json"
    );

    println!(
        "check OK: ls p99 {ls_ratio:.2}x light, shed rates batch {batch_rate:.2} > \
         std {std_rate:.2} > ls 0, goodput holds {at_peak:.0}/{best:.0} rps, \
         legacy bytes unchanged"
    );
}

fn main() {
    let check_mode = std::env::args().any(|a| a == "--check");
    let json = overload_sweep_json(SEED, DURATION_MS, CORES, &RATES);
    std::fs::write("BENCH_overload.json", &json).expect("write BENCH_overload.json");

    println!(
        "Figure X (overload): open-loop sweep, {DURATION_MS} ms, {CORES} cores, \
         QoS + admission control\n"
    );
    let widths = [10, 10, 10, 10, 10, 9, 9, 9];
    row(
        &[
            "offered".into(),
            "goodput".into(),
            "shed".into(),
            "shed rate".into(),
            "occupancy".into(),
            "ls p99".into(),
            "std p99".into(),
            "batch p99".into(),
        ],
        &widths,
    );
    for line in json.lines().filter(|l| l.contains("\"offered_rps\"")) {
        let class_p99: Vec<f64> = line
            .match_indices("\"p99_ms\": ")
            .map(|(at, pat)| {
                let rest = &line[at + pat.len()..];
                let end = rest.find([',', '}']).unwrap_or(rest.len());
                rest[..end].trim().parse().expect("p99 field")
            })
            .collect();
        row(
            &[
                format!("{:.0}", json_field(line, "offered_rps").expect("rate")),
                format!("{:.0}", json_field(line, "goodput_rps").expect("goodput")),
                format!("{:.0}", json_field(line, "shed_total").expect("shed")),
                format!("{:.3}", json_field(line, "shed_rate").expect("shed rate")),
                format!("{:.3}", json_field(line, "occupancy").expect("occupancy")),
                format!("{:.2}", class_p99[0]),
                format!("{:.2}", class_p99[1]),
                format!("{:.2}", class_p99[2]),
            ],
            &widths,
        );
    }
    println!("\nwrote BENCH_overload.json");

    if check_mode {
        check(&json);
    }
}
