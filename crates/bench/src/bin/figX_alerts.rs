//! Incident-detection bench for the deterministic alerting plane: seeded
//! incidents (overload burn, admission-control shedding, a member fault
//! storm) driven through the serve- and fleet-level rule engines with the
//! closed loop (alert-driven scale-out and quarantine) on. Emits
//! `BENCH_alerts.json` — byte-identical across same-seed runs; wall times
//! stay on stdout.
//!
//! `--check` asserts the alerting contract (DESIGN.md §15):
//!
//! 1. **Zero false positives** — two clean seeds at half saturation log no
//!    alert transitions at all.
//! 2. **Bounded detection** — every injected incident fires its alert
//!    within [`DETECT_BUDGET`] rounds of onset, and the closed loop acts:
//!    the burn alert scales the fleet out, the availability alert
//!    quarantines the failing member.
//! 3. **Byte-identical timelines** — the alert log replays byte-for-byte
//!    across reruns and through a mid-round kill recovered from
//!    checkpoint, and the whole artifact reproduces byte-identically.
//! 4. **Bounded self-overhead** — driving the same overloaded fleet with
//!    alerting on costs at most [`OVERHEAD_BUDGET`]× the alerting-off run
//!    (best of [`OVERHEAD_REPS`] each).

use std::time::Instant;

use sfi_faas::{
    ArrivalModel, FleetAlertPolicy, FleetConfig, FleetSupervisor, QosConfig, RetireReason,
    ServeConfig, ServeEngine, FLEET_BURN_RULE, MEMBER_AVAILABILITY_RULE,
};
use sfi_pool::QuarantinePolicy;
use sfi_telemetry::{json_is_valid, AlertEvent, AlertTransition, RetryPolicy};
use sfi_vm::{EngineFault, FaultPlan};

const CORES: u32 = 2;
const CLEAN_ROUNDS: u64 = 8;
const INCIDENT_ROUNDS: u64 = 6;
/// Rounds an injected incident may take to reach `firing` (incidents start
/// at round 0, so this is also the firing round's ceiling).
const DETECT_BUDGET: u64 = 6;
/// Alerting-on over alerting-off wall-time budget.
const OVERHEAD_BUDGET: f64 = 1.35;
const OVERHEAD_REPS: usize = 3;
/// Burn threshold tuned under the 10 ms-round ceiling: modeled p999 never
/// exceeds the round duration, so burn tops out near 200 permille of the
/// 50 ms latency-sensitive target. Clean 20 krps seeds peak at 106 in any
/// single round (so no averaging window can reach 115), while sustained
/// overload holds ~135.
const BURN_THRESHOLD: f64 = 115.0;

fn shape(c: &mut ServeConfig, rate_rps: f64) {
    c.engine.duration_ms = 10;
    c.probe.duration_ms = 5;
    c.engine.qos = Some(QosConfig::paper_rig());
    c.engine.arrivals = ArrivalModel::Poisson { rate_rps };
}

/// A QoS fleet with the closed alerting loop on: `members` members at
/// `rate_rps` each, seeds decorrelated by `salt`.
fn alerting_fleet(members: u32, rate_rps: f64, salt: u64) -> FleetConfig {
    let mut cfg = FleetConfig::paper_rig(members, CORES);
    for m in &mut cfg.members {
        shape(m, rate_rps);
        m.engine.seed = sfi_faas::round_seed(m.engine.seed, salt);
        m.probe.seed = sfi_faas::round_seed(m.probe.seed, salt);
    }
    let mut policy = FleetAlertPolicy::paper_rig(cfg.members[0].clone());
    policy.burn_threshold_permille = BURN_THRESHOLD;
    policy.max_members = 3;
    cfg.alerting = Some(policy);
    cfg
}

/// The fault-storm fleet: member 1's polls hang every incident round and
/// the aggregator probes one-shot, so each storm round is a failed poll.
/// Burn scale-out is off to isolate the quarantine loop.
fn storm_fleet() -> FleetConfig {
    let mut cfg = alerting_fleet(2, 20_000.0, 0x570F);
    cfg.retry = RetryPolicy::one_shot();
    cfg.policy = QuarantinePolicy { ring_capacity: 2, max_faults: 32 };
    let mut chaos = FaultPlan::new();
    for r in 0..INCIDENT_ROUNDS {
        chaos = chaos.engine_fail_at(1, r, EngineFault::HangOnAccept);
    }
    cfg.chaos = chaos;
    if let Some(p) = &mut cfg.alerting {
        p.scale_out_on_burn = false;
    }
    cfg
}

fn run_fleet(cfg: FleetConfig, rounds: u64) -> FleetSupervisor {
    let mut fleet = FleetSupervisor::new(cfg);
    for _ in 0..rounds {
        fleet.run_round();
    }
    fleet
}

/// Round of the first `firing` transition of `rule` in an alert log.
fn first_firing(events: &[&AlertEvent], rule: &str) -> Option<u64> {
    events
        .iter()
        .find(|e| e.rule == rule && e.transition == AlertTransition::Firing)
        .map(|e| e.round)
}

fn opt_json(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_owned(), |n| n.to_string())
}

/// Runs every deterministic scenario and renders `BENCH_alerts.json`.
/// Returns `(json, fleet-burn timeline)`; the timeline is the rerun /
/// kill-recovery byte-equality unit.
fn build() -> (String, String) {
    let mut scenarios: Vec<String> = Vec::new();

    // 1. Clean seeds: no transitions of any kind allowed.
    for (i, salt) in [0xC1EA_0001u64, 0xC1EA_0002].iter().enumerate() {
        let fleet = run_fleet(alerting_fleet(2, 20_000.0, *salt), CLEAN_ROUNDS);
        scenarios.push(format!(
            "{{\"scenario\": \"clean_{i}\", \"rounds\": {CLEAN_ROUNDS}, \"transitions\": {}, \
             \"firing\": {}}}",
            fleet.alerts().next_seq(),
            fleet.alerts().firing().len(),
        ));
    }

    // 2. Serve-level shed incident: one overloaded engine, the built-in
    // shed-rate rule must fire.
    let mut cfg = ServeConfig::paper_rig(CORES);
    shape(&mut cfg, 200_000.0);
    let mut eng = ServeEngine::new(cfg);
    for _ in 0..INCIDENT_ROUNDS {
        eng.run_round();
    }
    let (events, _, _) = eng.alerts().log_since(0);
    let shed_detect = first_firing(&events, "shed_rate");
    scenarios.push(format!(
        "{{\"scenario\": \"serve_shed\", \"rule\": \"shed_rate\", \"detect_round\": {}, \
         \"budget\": {DETECT_BUDGET}}}",
        opt_json(shed_detect),
    ));

    // 3. Fleet burn incident: 2.5× overload, the burn alert must fire and
    // scale the fleet out.
    let burn = run_fleet(alerting_fleet(1, 200_000.0, 0xB00_0001), INCIDENT_ROUNDS);
    let (events, _, _) = burn.alerts().log_since(0);
    let burn_detect = first_firing(&events, FLEET_BURN_RULE);
    let timeline = burn.alerts_body(0);
    scenarios.push(format!(
        "{{\"scenario\": \"fleet_burn\", \"rule\": \"{FLEET_BURN_RULE}\", \
         \"detect_round\": {}, \"budget\": {DETECT_BUDGET}, \"members_live\": {}}}",
        opt_json(burn_detect),
        burn.members_live(),
    ));

    // 4. Fault storm: the availability alert must fire and quarantine the
    // failing member.
    let storm = run_fleet(storm_fleet(), INCIDENT_ROUNDS);
    let (events, _, _) = storm.alerts().log_since(0);
    let storm_detect = first_firing(&events, MEMBER_AVAILABILITY_RULE);
    let quarantined = storm
        .members()
        .iter()
        .filter(|m| m.retire_reason == Some(RetireReason::Quarantined))
        .count();
    scenarios.push(format!(
        "{{\"scenario\": \"fault_storm\", \"rule\": \"{MEMBER_AVAILABILITY_RULE}\", \
         \"detect_round\": {}, \"budget\": {DETECT_BUDGET}, \"quarantined\": {quarantined}}}",
        opt_json(storm_detect),
    ));

    // Determinism: the fleet-burn timeline through a rerun and through a
    // mid-round kill recovered from checkpoint.
    let rerun = run_fleet(alerting_fleet(1, 200_000.0, 0xB00_0001), INCIDENT_ROUNDS);
    let rerun_ok = rerun.alerts_body(0) == timeline && rerun.snapshot_json() == burn.snapshot_json();
    let mut killed_cfg = alerting_fleet(1, 200_000.0, 0xB00_0001);
    killed_cfg.chaos = FaultPlan::new().engine_fail_at(0, 2, EngineFault::MidRoundPanic);
    let killed = run_fleet(killed_cfg, INCIDENT_ROUNDS);
    let kill_ok = killed.members()[0].restarts == 1
        && killed.alerts_body(0) == timeline
        && killed.snapshot_json() == burn.snapshot_json();

    let json = format!(
        "{{\n\"bench\": \"alerts\",\n\"budget_rounds\": {DETECT_BUDGET},\n\
         \"overhead_budget\": {OVERHEAD_BUDGET},\n\"scenarios\": [\n{}\n],\n\
         \"determinism\": {{\"rerun_timeline_identical\": {rerun_ok}, \
         \"kill_recovery_timeline_identical\": {kill_ok}}},\n\"telemetry\": {}\n}}\n",
        scenarios.join(",\n"),
        timeline.trim_end(),
    );
    (json, timeline)
}

/// Gate 4: wall-time of the clean fleet with alerting on vs off, best of
/// [`OVERHEAD_REPS`] each. The clean fleet never fires, so this isolates
/// the pure observation cost (ingest + rule evaluation) from the closed
/// loop legitimately growing the fleet on incidents.
fn check_overhead() {
    let time = |alerting: bool| {
        let mut best = f64::INFINITY;
        for _ in 0..OVERHEAD_REPS {
            let mut cfg = alerting_fleet(2, 20_000.0, 0xC1EA_0001);
            if !alerting {
                cfg.alerting = None;
            }
            let t = Instant::now();
            let fleet = run_fleet(cfg, CLEAN_ROUNDS);
            assert!(fleet.rounds() == CLEAN_ROUNDS);
            best = best.min(t.elapsed().as_secs_f64() * 1e3);
        }
        best
    };
    let off = time(false).max(1e-6);
    let on = time(true);
    let ratio = on / off;
    assert!(
        ratio <= OVERHEAD_BUDGET,
        "alerting overhead {ratio:.3}x exceeds {OVERHEAD_BUDGET}x ({on:.2} ms vs {off:.2} ms)"
    );
    println!("[check] overhead OK: alerting on {on:.2} ms vs off {off:.2} ms ({ratio:.3}x)");
}

fn field(json: &str, scenario: &str, key: &str) -> Option<f64> {
    let line = json.lines().find(|l| l.contains(&format!("\"scenario\": \"{scenario}\"")))?;
    let pat = format!("\"{key}\": ");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn check(json: &str, timeline: &str) {
    assert!(json_is_valid(json), "BENCH_alerts.json must parse as JSON");

    // Gate 1: zero false positives on clean seeds.
    for s in ["clean_0", "clean_1"] {
        let transitions = field(json, s, "transitions").expect("transitions field");
        assert_eq!(transitions, 0.0, "{s}: clean seeds must log no alert transitions");
    }

    // Gate 2: bounded detection plus closed-loop actions.
    for s in ["serve_shed", "fleet_burn", "fault_storm"] {
        let detect = field(json, s, "detect_round")
            .unwrap_or_else(|| panic!("{s}: incident was never detected"));
        assert!(
            detect <= DETECT_BUDGET as f64,
            "{s}: detected at round {detect}, budget {DETECT_BUDGET}"
        );
    }
    let live = field(json, "fleet_burn", "members_live").expect("members_live");
    assert!(live > 1.0, "burn alert must scale the fleet out, got {live} live");
    let quarantined = field(json, "fault_storm", "quarantined").expect("quarantined");
    assert_eq!(quarantined, 1.0, "availability alert must quarantine the storm member");

    // Gate 3: byte-identical timelines and artifact.
    assert!(
        json.contains("\"rerun_timeline_identical\": true"),
        "rerun timeline diverged"
    );
    assert!(
        json.contains("\"kill_recovery_timeline_identical\": true"),
        "kill/recovery timeline diverged"
    );
    let (rebuilt, timeline2) = build();
    assert_eq!(json, rebuilt, "BENCH_alerts.json must reproduce byte-identically");
    assert_eq!(timeline, timeline2, "alert timeline must reproduce byte-identically");
    println!("[check] detection OK: all incidents within {DETECT_BUDGET} rounds, timelines byte-identical");

    // Gate 4: self-overhead.
    check_overhead();
}

fn main() {
    let check_mode = std::env::args().any(|a| a == "--check");
    // Injected panics are caught by the supervisor; keep the default hook
    // from spraying backtraces over the bench output.
    std::panic::set_hook(Box::new(|info| {
        let msg =
            info.payload().downcast_ref::<String>().map(String::as_str).unwrap_or_default();
        if !msg.starts_with("chaos: injected") {
            eprintln!("{info}");
        }
    }));
    let (json, timeline) = build();
    let _ = std::panic::take_hook();

    std::fs::write("BENCH_alerts.json", &json).expect("write BENCH_alerts.json");
    println!("Figure X (alerts): seeded incidents through the deterministic alerting plane\n");
    for line in json.lines().filter(|l| l.contains("\"scenario\"")) {
        println!("  {}", line.trim_end_matches(','));
    }
    println!("\nwrote BENCH_alerts.json");

    if check_mode {
        std::panic::set_hook(Box::new(|info| {
            let msg =
                info.payload().downcast_ref::<String>().map(String::as_str).unwrap_or_default();
            if !msg.starts_with("chaos: injected") {
                eprintln!("{info}");
            }
        }));
        check(&json, &timeline);
        let _ = std::panic::take_hook();
    }
}
