//! §6.4.1: the transition microbenchmark.
//!
//! The paper measures Wasmtime's per-transition cost at 30.34 ns, rising to
//! 51.52 ns with ColorGuard (one `wrpkru` per direction, ≈44 cycles at the
//! pinned 2.2 GHz). This binary reports the model's transition costs and
//! cross-checks them against an actual end-to-end invocation through the
//! multi-instance runtime.

use std::sync::Arc;

use sfi_core::{compile, CompilerConfig, Strategy};
use sfi_runtime::{Runtime, RuntimeConfig, TransitionKind, TransitionModel};

fn main() {
    println!("§6.4.1: transition microbenchmark\n");
    let tm = TransitionModel::default();
    let plain = TransitionKind::default();
    let cg = TransitionKind { colorguard: true, ..TransitionKind::default() };
    let seg = TransitionKind { set_segment_base: true, ..TransitionKind::default() };
    let seg_syscall = TransitionKind {
        set_segment_base: true,
        segment_base_via_syscall: true,
        ..TransitionKind::default()
    };

    println!("modelled per-transition costs (2.2 GHz):");
    println!("  baseline                     {:6.2} ns ({:5.1} cycles)", tm.ns(plain), tm.cycles(plain));
    println!("  + ColorGuard (wrpkru)        {:6.2} ns ({:5.1} cycles)", tm.ns(cg), tm.cycles(cg));
    println!("  + Segue (wrgsbase)           {:6.2} ns ({:5.1} cycles)", tm.ns(seg), tm.cycles(seg));
    println!("  + Segue via arch_prctl       {:6.2} ns ({:5.1} cycles)", tm.ns(seg_syscall), tm.cycles(seg_syscall));
    println!("  (paper: 30.34 ns baseline, 51.52 ns with ColorGuard — a ~44-cycle increase)\n");

    // End-to-end cross-check: invoke a trivial export through the runtime
    // and read back the charged transition cycles.
    let module = sfi_wasm::wat::parse(
        r#"(module (memory 1)
             (func (export "noop") (result i32) i32.const 1))"#,
    )
    .expect("static module");
    let cm = Arc::new(
        compile(&module, &CompilerConfig::for_strategy(Strategy::Segue)).expect("compiles"),
    );

    let mut snapshots: Vec<String> = Vec::new();
    for colorguard in [false, true] {
        let mut rt = Runtime::new(RuntimeConfig::small_test(colorguard)).expect("runtime");
        let inst = rt.instantiate(Arc::clone(&cm)).expect("slot available");
        let reps = 10;
        for _ in 0..reps {
            rt.invoke(inst, "noop", &[]).expect("runs");
        }
        println!(
            "runtime, colorguard={colorguard}: {} transitions over {reps} invocations, \
             mean {:.2} ns/transition",
            rt.transitions.count,
            rt.transitions.mean_ns(&rt.config_transition())
        );
        snapshots
            .push(format!("    {{\"colorguard\": {colorguard}, \"telemetry\": {}}}", rt.telemetry_snapshot()));
    }

    // The cross-check runs' full runtime metric registries — transition op
    // counters, the invocation-transition cycle histogram, pool gauges —
    // exported per configuration, the same `"telemetry"` shape
    // `figX_multicore` embeds.
    let json = format!(
        "{{\n  \"bench\": \"sec641_transitions\",\n  \"modeled_ns\": {{\
         \"baseline\": {:.3}, \"colorguard\": {:.3}, \"segue_wrgsbase\": {:.3}, \
         \"segue_arch_prctl\": {:.3}}},\n  \"runs\": [\n{}\n  ]\n}}\n",
        tm.ns(plain),
        tm.ns(cg),
        tm.ns(seg),
        tm.ns(seg_syscall),
        snapshots.join(",\n"),
    );
    std::fs::write("BENCH_sec641.json", &json).expect("write BENCH_sec641.json");
    println!("\nwrote BENCH_sec641.json");
}

trait RtExt {
    fn config_transition(&self) -> TransitionModel;
}

impl RtExt for Runtime {
    fn config_transition(&self) -> TransitionModel {
        TransitionModel::default()
    }
}
