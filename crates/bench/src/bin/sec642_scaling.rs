//! §6.4.2: the scaling microbenchmark.
//!
//! The paper instantiates Wasmtime's pooling allocator with 408 MB slots on
//! a 47-bit user address space: 14,582 slots without ColorGuard, 218,716
//! with — a ≈15× increase. This binary computes the same layouts, then
//! actually *builds* both pools in the virtual-memory model (with the
//! `vm.max_map_count` sysctl raised, as §5.1 requires) and allocates from
//! them.

use sfi_pool::{compute_layout, MemoryPool, PoolConfig};
use sfi_vm::AddressSpace;

fn main() {
    println!("§6.4.2: pool scaling with 408 MiB slots on a 47-bit user address space\n");

    let without = compute_layout(&PoolConfig::scaling_benchmark(0)).expect("layout");
    let with = compute_layout(&PoolConfig::scaling_benchmark(15)).expect("layout");
    println!(
        "without ColorGuard: {:>9} slots (stride {:.2} GiB, {} stripe)",
        without.num_slots,
        without.slot_bytes as f64 / (1 << 30) as f64,
        without.num_stripes
    );
    println!(
        "with    ColorGuard: {:>9} slots (stride {:.2} GiB, {} stripes)",
        with.num_slots,
        with.slot_bytes as f64 / (1 << 30) as f64,
        with.num_stripes
    );
    println!(
        "increase: {:.1}×   (paper: 14,582 → 218,716 slots, ≈15×)\n",
        with.num_slots as f64 / without.num_slots as f64
    );

    // Now build the ColorGuard pool for real in the VM model: reserve the
    // slab, allocate a batch of slots, and show the VMA pressure.
    let mut space = AddressSpace::new_48bit();
    space.set_max_map_count(1_000_000); // the sysctl §5.1 says to raise
    let mut cfg = PoolConfig::scaling_benchmark(15);
    cfg.num_slots = 100_000; // cap the demo to keep it snappy
    let mut pool = MemoryPool::create_with(&mut space, &cfg, false).expect("pool");
    println!(
        "built a ColorGuard pool with {} committed-on-demand slots in one mapping",
        pool.capacity()
    );
    let mut handles = Vec::new();
    for _ in 0..20_000 {
        handles.push(pool.allocate(&mut space).expect("slot"));
    }
    println!(
        "allocated {} instances; address space now holds {} VMAs \
         (default vm.max_map_count is {}, hence the sysctl)",
        handles.len(),
        space.map_count(),
        sfi_vm::DEFAULT_MAX_MAP_COUNT
    );
    let stripes: std::collections::BTreeSet<u8> = handles.iter().map(|h| h.pkey).collect();
    println!("instances span {} distinct MPK colors", stripes.len());

    // Export the built pool's occupancy through the runtime telemetry
    // bundle (scrape syncs the pool/VM gauges), embedding the same
    // `"telemetry"` section `figX_multicore` carries.
    let mut telem = sfi_runtime::RuntimeTelemetry::new(0, 0);
    telem.scrape(&pool, &space, handles.len());
    let json = format!(
        "{{\n  \"bench\": \"sec642_scaling\",\n  \"slots_without_colorguard\": {},\n  \
         \"slots_with_colorguard\": {},\n  \"built_capacity\": {},\n  \"allocated\": {},\n  \
         \"vmas\": {},\n  \"colors\": {},\n  \"telemetry\": {}\n}}\n",
        without.num_slots,
        with.num_slots,
        pool.capacity(),
        handles.len(),
        space.map_count(),
        stripes.len(),
        sfi_telemetry::json_snapshot(telem.registry()),
    );
    std::fs::write("BENCH_sec642.json", &json).expect("write BENCH_sec642.json");
    println!("wrote BENCH_sec642.json");
}
