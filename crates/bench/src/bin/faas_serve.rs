//! `faas_serve`: the multi-core FaaS engine behind a live telemetry
//! endpoint (DESIGN.md §8).
//!
//! Runs [`sfi_faas::ServeEngine`] rounds on a driver thread while a
//! std-only HTTP/1.1 loop serves:
//!
//! - `GET /metrics`   — Prometheus text (modeled registry + scrape meta)
//! - `GET /snapshot`  — the modeled registry as JSON (no meta: byte-equal
//!   to an offline replay of the same config and round count)
//! - `GET /trace?since=<cursor>` — incremental chrome-trace lines from the
//!   cumulative flight-recorder stream
//! - `GET /healthz`   — failure-model availability + quarantine (the one
//!   endpoint allowed wall time: its uptime field)
//! - `GET /alerts?since=<cursor>` — alert states + incremental transition
//!   log from the in-memory rule engine
//! - `GET /query?expr=<expr>` — one tsdb query (DESIGN.md §15 grammar)
//! - `GET /quit`      — answer, then shut the server down cleanly
//!
//! Modes:
//!
//! - `faas_serve [--port N] [--rounds N]` — serve until `/quit` (port 0
//!   picks an ephemeral port and prints it; `--rounds` caps the driver).
//! - `faas_serve --get ADDR PATH [--timeout-ms N]` — one-shot scrape
//!   client (exit 0 on HTTP 200), used by the CI smoke step instead of
//!   curl; the optional deadline bounds each attempt's connect/read/write
//!   so a hung server cannot wedge the scrape.
//! - `faas_serve --check` — self-contained acceptance gate: all six
//!   endpoints respond on a loopback server; the drained `/trace` stream
//!   re-wraps byte-identically to the batch export; the served `/snapshot`
//!   equals a server-off replay byte-for-byte; and scraping under load
//!   stays within the overhead budget.

use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use sfi_faas::{serve_blocking, ServeConfig, ServeEngine};
use sfi_telemetry::{
    chrome_trace_wrap, http_get, http_get_retry_with_timeout, json_is_valid, RetryPolicy,
};

/// Documented scrape-under-load budget (DESIGN.md §8): driving the engine
/// with a scraper attached may cost at most this factor over driving it
/// dark, best-of-3 wall clock.
const OVERHEAD_BUDGET: f64 = 1.35;

/// Rounds per timed check pass (short rounds: ServeConfig::paper_rig).
const CHECK_ROUNDS: u64 = 3;

fn arg_after(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--check") {
        check();
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--get") {
        let addr = args.get(i + 1).expect("--get ADDR PATH");
        let path = args.get(i + 2).expect("--get ADDR PATH");
        // Bounded deterministic retries: a refused connection or timeout is
        // retried with backoff, and the exit is nonzero only once the
        // budget is exhausted — a server still binding its port no longer
        // fails the CI smoke scrape. `--timeout-ms` bounds each attempt's
        // connect/read/write deadline so a server that accepts and hangs
        // cannot wedge a CI scrape either.
        let timeout = std::time::Duration::from_millis(
            arg_after("--timeout-ms").map(|t| t.parse().expect("numeric timeout")).unwrap_or(10_000),
        );
        let (status, body, _attempts) =
            http_get_retry_with_timeout(addr, path, &RetryPolicy::default(), timeout)
                .expect("request failed");
        // Rust ignores SIGPIPE, so a downstream `| head` surfaces as EPIPE
        // on the write — the exit code must still reflect the HTTP status.
        use std::io::Write;
        if let Err(e) = std::io::stdout().write_all(body.as_bytes()) {
            assert_eq!(e.kind(), std::io::ErrorKind::BrokenPipe, "write body: {e}");
        }
        std::process::exit(if status == 200 { 0 } else { 1 });
    }

    let port: u16 = arg_after("--port").map(|p| p.parse().expect("numeric port")).unwrap_or(9100);
    let max_rounds: Option<u64> = arg_after("--rounds").map(|r| r.parse().expect("numeric rounds"));

    let listener = TcpListener::bind(("127.0.0.1", port)).expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let engine = Arc::new(Mutex::new(ServeEngine::new(ServeConfig::paper_rig(4))));
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    println!("faas_serve: listening on http://{addr}  (GET /metrics /snapshot /trace /healthz /alerts /query /quit)");

    let driver = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut rounds = 0u64;
            while !stop.load(Ordering::Relaxed) {
                engine.lock().expect("engine lock").run_round();
                rounds += 1;
                if max_rounds.is_some_and(|m| rounds >= m) {
                    break;
                }
            }
        })
    };

    serve_blocking(&listener, &engine, started).expect("serve loop");
    stop.store(true, Ordering::Relaxed);
    driver.join().expect("driver thread");
    let eng = engine.lock().expect("engine lock");
    println!("faas_serve: quit after {} rounds, {} trace events", eng.rounds(), eng.stream().total_recorded());
}

/// Drives `rounds` engine rounds; when `addr` is given, performs a full
/// scrape set (all six endpoints) between rounds — the "under load"
/// configuration of the overhead gate. Returns elapsed wall time.
fn drive(engine: &Mutex<ServeEngine>, rounds: u64, addr: Option<&str>) -> std::time::Duration {
    let t0 = Instant::now();
    for _ in 0..rounds {
        engine.lock().expect("engine lock").run_round();
        if let Some(a) = addr {
            for path in [
                "/metrics",
                "/snapshot",
                "/trace?since=0",
                "/healthz",
                "/alerts?since=0",
                "/query?expr=increase(sfi_shard_completed_total%5B4r%5D)",
            ] {
                let (status, _) = http_get(a, path).expect("scrape");
                assert_eq!(status, 200, "{path} under load");
            }
        }
    }
    t0.elapsed()
}

fn check() {
    let mut cfg = ServeConfig::paper_rig(2);
    // Longer rounds than the interactive default: the overhead gate
    // compares per-round scrape cost against round cost, and CI machines
    // vary — headroom comes from amortizing over a realistic round length.
    cfg.engine.duration_ms = 150;

    // Server-off reference: a pure replay of the same config and rounds.
    let mut offline = ServeEngine::new(cfg.clone());
    for _ in 0..CHECK_ROUNDS {
        offline.run_round();
    }
    let offline_snapshot = offline.snapshot_json();
    let offline_trace = offline.trace_batch();

    // Live server on an ephemeral loopback port.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr").to_string();
    let engine = Arc::new(Mutex::new(ServeEngine::new(cfg.clone())));
    let started = Instant::now();
    let server = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || serve_blocking(&listener, &engine, started).expect("serve"))
    };

    // Run rounds, draining /trace incrementally after each one.
    let mut cursor = 0u64;
    let mut streamed: Vec<String> = Vec::new();
    for _ in 0..CHECK_ROUNDS {
        engine.lock().expect("engine lock").run_round();
        let (status, body) = http_get(&addr, &format!("/trace?since={cursor}")).expect("trace");
        assert_eq!(status, 200, "/trace must respond");
        let mut lines = body.lines();
        let head = lines.next().expect("metadata line");
        assert!(head.contains("\"dropped\": 0"), "stream deep enough: {head}");
        cursor = head
            .split("\"next\": ")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.parse().ok())
            .expect("next cursor");
        streamed.extend(lines.map(str::to_owned));
    }

    // 1. All six endpoints respond.
    let (ms, metrics) = http_get(&addr, "/metrics").expect("metrics");
    let (ss, snapshot) = http_get(&addr, "/snapshot").expect("snapshot");
    let (hs, health) = http_get(&addr, "/healthz").expect("healthz");
    let (als, alerts) = http_get(&addr, "/alerts?since=0").expect("alerts");
    let (qrs, query) =
        http_get(&addr, "/query?expr=increase(sfi_shard_completed_total%5B4r%5D)").expect("query");
    assert_eq!((ms, ss, hs), (200, 200, 200), "endpoints must respond");
    assert_eq!((als, qrs), (200, 200), "alerting endpoints must respond");
    assert!(json_is_valid(&alerts), "/alerts must be valid JSON");
    assert!(alerts.contains("\"states\""), "{alerts}");
    assert!(json_is_valid(&query), "/query must be valid JSON");
    assert!(query.contains("\"results\""), "{query}");
    let (bs, _) = http_get(&addr, "/query").expect("query without expr");
    assert_eq!(bs, 400, "/query without expr must 400");
    let (bs, _) = http_get(&addr, "/alerts?since=abc").expect("malformed cursor");
    assert_eq!(bs, 400, "/alerts with a malformed cursor must 400");
    assert!(metrics.contains("sfi_shard_completed_total"), "metrics carries shard counters");
    assert!(metrics.contains("sfi_serve_scrapes_total"), "metrics carries scrape meta");
    assert!(metrics.contains("sample_rate=\"64\""), "sampled series declares its rate");
    assert!(json_is_valid(&snapshot), "/snapshot must be valid JSON");
    assert!(json_is_valid(&health), "/healthz must be valid JSON");
    assert!(health.contains("\"availability\""), "{health}");

    // 2. The drained stream re-wraps byte-identically to the batch export.
    let rewrapped = chrome_trace_wrap(&streamed);
    assert_eq!(rewrapped, offline_trace, "streamed trace must equal the batch export");

    // 3. Serving has zero observer effect on modeled telemetry: the served
    // snapshot equals the server-off replay byte-for-byte (scrape meta is
    // excluded from /snapshot by construction).
    assert_eq!(snapshot, offline_snapshot, "served snapshot must equal offline replay");
    assert!(snapshot.contains("sfi_shard_request_latency_ns"), "latency histograms present");
    assert!(snapshot.contains("\"p99\""), "histogram quantiles present");

    // 4. Scrape-under-load overhead: best-of-3, scraped vs dark rounds.
    let dark = (0..3)
        .map(|_| drive(&Mutex::new(ServeEngine::new(cfg.clone())), CHECK_ROUNDS, None))
        .min()
        .expect("timed runs");
    let scraped = (0..3)
        .map(|_| {
            let eng = Mutex::new(ServeEngine::new(cfg.clone()));
            drive(&eng, CHECK_ROUNDS, Some(&addr))
        })
        .min()
        .expect("timed runs");
    // The scraped runs above hit the live server (fixed state) while
    // driving a local engine: the cost measured is the full scrape set per
    // round — client, server lock, render — landing on the driver's clock.
    let factor = scraped.as_secs_f64() / dark.as_secs_f64().max(1e-9);
    assert!(
        factor <= OVERHEAD_BUDGET,
        "scrape-under-load overhead {factor:.2}x exceeds {OVERHEAD_BUDGET:.2}x \
         (scraped {scraped:?} vs dark {dark:?})"
    );

    // 5. Clean shutdown via /quit.
    let (qs, _) = http_get(&addr, "/quit").expect("quit");
    assert_eq!(qs, 200, "/quit must answer before stopping");
    server.join().expect("server thread");

    println!(
        "check OK: 6 endpoints live, streamed trace == batch export ({} events), \
         snapshot == offline replay, scrape overhead {factor:.2}x (budget {OVERHEAD_BUDGET:.2}x)",
        streamed.len()
    );
}
