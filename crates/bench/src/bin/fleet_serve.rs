//! `fleet_serve`: a supervised multi-engine fleet behind one federated
//! scrape surface (DESIGN.md §11).
//!
//! Runs a [`sfi_faas::FleetSupervisor`] — N in-process `ServeEngine`
//! members with engine-level fault budgets, deterministic crash-recovery
//! by checkpoint replay, and seeded engine-grade chaos — on a driver
//! thread, while the std-only HTTP/1.1 loop serves the fleet surface:
//!
//! - `GET /metrics`  — Prometheus text: member registries merged under
//!   `engine="<id>"` labels, plus the fleet supervision meta registry
//! - `GET /snapshot` — the federated modeled registry as JSON (no meta:
//!   equal to the label-disambiguated sum of member snapshots)
//! - `GET /trace?since=<cursor>` — the supervision trace (member crashes,
//!   restarts, retirements, poll attempts; gap-marked on overflow)
//! - `GET /fleet`    — per-member liveness, restart and quarantine state
//! - `GET /healthz`  — fleet availability (503 once no member is live)
//! - `GET /alerts?since=<cursor>` — fleet alert states + transition log
//! - `GET /query?expr=<expr>` — one query over the fleet tsdb
//! - `GET /quit`     — answer, then shut down cleanly
//!
//! Modes:
//!
//! - `fleet_serve [--port N] [--members N] [--rounds N] [--chaos RATE]` —
//!   serve until `/quit`.
//! - `fleet_serve --get ADDR PATH` — scrape client with the hardened
//!   bounded-retry policy; exits nonzero only after the budget is spent.
//! - `fleet_serve --check` — the federation acceptance gate: K=3 seeded
//!   member kills out of N=4 engines, fleet availability ≥ 0.75, every
//!   recovered member byte-equal to an uninterrupted same-seed replay, the
//!   merged fleet `/snapshot` equal to the label-disambiguated sum of
//!   member snapshots, chaos on/off differing only in injected-fault
//!   series, and the TCP surface live end-to-end.

use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use sfi_faas::{fleet_serve_blocking, FleetConfig, FleetSupervisor, MemberState};
use sfi_telemetry::{
    http_get_retry, http_get_retry_with_timeout, json_is_valid, json_snapshot, Registry,
    RetryPolicy,
};
use sfi_vm::{EngineFault, FaultPlan};

/// Fleet size for `--check` (N engines, K=3 of them killed).
const CHECK_MEMBERS: u32 = 4;

/// Rounds per `--check` run — enough that every scheduled kill lands and
/// every victim serves recovered rounds afterwards.
const CHECK_ROUNDS: u64 = 6;

/// The availability floor the killed fleet must stay above.
const AVAILABILITY_FLOOR: f64 = 0.75;

fn arg_after(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

/// Suppresses the default panic hook's output for the chaos layer's
/// injected (and caught) mid-round panics; everything else still prints.
fn silence_injected_panics() {
    std::panic::set_hook(Box::new(|info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .unwrap_or_default();
        if !msg.starts_with("chaos: injected") {
            eprintln!("{info}");
        }
    }));
}

/// A small check-scale fleet: short rounds, N members.
fn check_fleet(members: u32) -> FleetConfig {
    let mut cfg = FleetConfig::paper_rig(members, 2);
    for m in &mut cfg.members {
        m.engine.duration_ms = 20;
        m.probe.duration_ms = 10;
    }
    cfg
}

/// The K=3 scheduled kills for `--check`: one of each engine-grade fault
/// kind, on three different members, in three different rounds.
fn check_kills() -> [(u64, u64, EngineFault); 3] {
    [
        (0, 1, EngineFault::MidRoundPanic),
        (1, 2, EngineFault::HangOnAccept),
        (2, 3, EngineFault::TornResponse),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--check") {
        check();
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--get") {
        let addr = args.get(i + 1).expect("--get ADDR PATH");
        let path = args.get(i + 2).expect("--get ADDR PATH");
        // `--timeout-ms` bounds each attempt's connect/read/write deadline
        // so a member hung on accept cannot wedge a CI scrape.
        let timeout = std::time::Duration::from_millis(
            arg_after("--timeout-ms").map(|t| t.parse().expect("numeric timeout")).unwrap_or(10_000),
        );
        let (status, body, _attempts) =
            http_get_retry_with_timeout(addr, path, &RetryPolicy::default(), timeout)
                .expect("request failed");
        use std::io::Write;
        if let Err(e) = std::io::stdout().write_all(body.as_bytes()) {
            assert_eq!(e.kind(), std::io::ErrorKind::BrokenPipe, "write body: {e}");
        }
        std::process::exit(if status == 200 { 0 } else { 1 });
    }

    silence_injected_panics();
    let port: u16 = arg_after("--port").map(|p| p.parse().expect("numeric port")).unwrap_or(9200);
    let members: u32 =
        arg_after("--members").map(|m| m.parse().expect("numeric members")).unwrap_or(4);
    let max_rounds: Option<u64> = arg_after("--rounds").map(|r| r.parse().expect("numeric rounds"));
    let chaos_rate: f64 =
        arg_after("--chaos").map(|c| c.parse().expect("numeric chaos rate")).unwrap_or(0.0);

    let mut cfg = FleetConfig::paper_rig(members, 2);
    if chaos_rate > 0.0 {
        cfg.chaos = FaultPlan::seeded(
            0xF1EE7,
            sfi_vm::ChaosConfig { engine_fault_rate: chaos_rate, ..Default::default() },
        );
    }
    let listener = TcpListener::bind(("127.0.0.1", port)).expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let fleet = Arc::new(Mutex::new(FleetSupervisor::new(cfg)));
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    println!(
        "fleet_serve: listening on http://{addr}  ({members} members; \
         GET /metrics /snapshot /trace /fleet /healthz /alerts /query /quit)"
    );

    let driver = {
        let fleet = Arc::clone(&fleet);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut rounds = 0u64;
            while !stop.load(Ordering::Relaxed) {
                fleet.lock().unwrap_or_else(|p| p.into_inner()).run_round();
                rounds += 1;
                if max_rounds.is_some_and(|m| rounds >= m) {
                    break;
                }
            }
        })
    };

    fleet_serve_blocking(&listener, &fleet, started).expect("serve loop");
    stop.store(true, Ordering::Relaxed);
    driver.join().expect("driver thread");
    let sup = fleet.lock().unwrap_or_else(|p| p.into_inner());
    println!(
        "fleet_serve: quit after {} rounds, availability {:.4}, {}/{} members live",
        sup.rounds(),
        sup.availability(),
        sup.members_live(),
        sup.members().len(),
    );
}

fn check() {
    silence_injected_panics();

    // Chaos-off reference: the same fleet, nothing injected.
    let mut quiet = FleetSupervisor::new(check_fleet(CHECK_MEMBERS));
    for _ in 0..CHECK_ROUNDS {
        quiet.run_round();
    }
    let quiet_snapshot = quiet.snapshot_json();
    assert_eq!(quiet.availability(), 1.0, "chaos-off fleet must be fully available");

    // Chaos-on run: K=3 scheduled member kills, one per fault kind.
    let mut cfg = check_fleet(CHECK_MEMBERS);
    for (member, round, fault) in check_kills() {
        cfg.chaos = cfg.chaos.engine_fail_at(member, round, fault);
    }
    let mut fleet = FleetSupervisor::new(cfg);
    for _ in 0..CHECK_ROUNDS {
        fleet.run_round();
    }

    // 1. The fleet survives: availability above the floor, every member
    //    live again (all three kills recovered within budget).
    let availability = fleet.availability();
    assert!(
        availability >= AVAILABILITY_FLOOR,
        "availability {availability:.4} under the {AVAILABILITY_FLOOR} floor"
    );
    assert_eq!(fleet.members_live(), CHECK_MEMBERS as usize, "every member must recover");
    let statuses = fleet.members();
    assert_eq!(statuses[0].restarts, 1, "member 0's panic must force a checkpoint restart");
    assert!(statuses.iter().all(|s| s.state == MemberState::Live));
    assert!(statuses.iter().all(|s| s.rounds == CHECK_ROUNDS), "no round may be skipped");

    // 2. Every recovered member is byte-equal to an uninterrupted
    //    same-seed replay of its (config, rounds) checkpoint.
    for s in &statuses {
        let (mcfg, rounds) = fleet.member_checkpoint(s.id).expect("member exists");
        let mut replay = sfi_faas::ServeEngine::new(mcfg);
        for _ in 0..rounds {
            replay.run_round();
        }
        assert_eq!(
            fleet.member_snapshot(s.id).expect("member exists"),
            replay.snapshot_json(),
            "member {} diverged from its uninterrupted replay",
            s.id
        );
    }

    // 3. The merged fleet /snapshot equals the label-disambiguated sum of
    //    the member snapshots.
    let mut manual = Registry::new();
    for s in &statuses {
        let (mcfg, rounds) = fleet.member_checkpoint(s.id).expect("member exists");
        let mut replay = sfi_faas::ServeEngine::new(mcfg);
        for _ in 0..rounds {
            replay.run_round();
        }
        manual.merge_labeled_from(replay.registry(), "engine", &s.id.to_string());
    }
    let snapshot = fleet.snapshot_json();
    assert_eq!(snapshot, json_snapshot(&manual), "fleet snapshot != sum of member snapshots");
    assert!(json_is_valid(&snapshot));

    // 4. Zero observer effect, fleet-grade: chaos on vs off differ only in
    //    the injected-fault series (modeled snapshots byte-equal; the meta
    //    fault counters differ).
    assert_eq!(snapshot, quiet_snapshot, "chaos leaked into the modeled snapshot");
    let chaos_metrics = fleet.metrics_text();
    let quiet_metrics = quiet.metrics_text();
    for kind in ["mid_round_panic", "hang_on_accept", "torn_response"] {
        let series = format!("sfi_fleet_member_faults_total{{kind=\"{kind}\"}}");
        assert!(chaos_metrics.contains(&format!("{series} 1")), "{series} missing");
        assert!(quiet_metrics.contains(&format!("{series} 0")), "quiet {series} not zero");
    }
    assert!(chaos_metrics.contains("sfi_fleet_restarts_total 1"));
    assert!(quiet_metrics.contains("sfi_fleet_restarts_total 0"));

    // 5. The recovery timeline is byte-reproducible: a second chaos run
    //    with the same plan replays the identical supervision trace.
    let mut cfg2 = check_fleet(CHECK_MEMBERS);
    for (member, round, fault) in check_kills() {
        cfg2.chaos = cfg2.chaos.engine_fail_at(member, round, fault);
    }
    let mut rerun = FleetSupervisor::new(cfg2);
    for _ in 0..CHECK_ROUNDS {
        rerun.run_round();
    }
    assert_eq!(rerun.trace_batch(), fleet.trace_batch(), "recovery trace not reproducible");
    assert_eq!(rerun.clock().now(), fleet.clock().now(), "virtual timelines diverged");

    // 6. The TCP surface serves the federation end-to-end: run the same
    //    chaos fleet behind a live listener, scrape every endpoint with the
    //    hardened client, quit cleanly.
    let mut cfg3 = check_fleet(CHECK_MEMBERS);
    for (member, round, fault) in check_kills() {
        cfg3.chaos = cfg3.chaos.engine_fail_at(member, round, fault);
    }
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr").to_string();
    let live = Arc::new(Mutex::new(FleetSupervisor::new(cfg3)));
    let started = Instant::now();
    let server = {
        let live = Arc::clone(&live);
        std::thread::spawn(move || {
            fleet_serve_blocking(&listener, &live, started).expect("serve")
        })
    };
    for _ in 0..CHECK_ROUNDS {
        live.lock().unwrap_or_else(|p| p.into_inner()).run_round();
    }
    let policy = RetryPolicy::default();
    let (status, body, _) = http_get_retry(&addr, "/fleet", &policy).expect("/fleet");
    assert_eq!(status, 200);
    assert!(json_is_valid(&body), "{body}");
    assert!(body.contains("\"members_live\": 4"), "{body}");
    let (status, body, _) = http_get_retry(&addr, "/snapshot", &policy).expect("/snapshot");
    assert_eq!(status, 200);
    assert_eq!(body, snapshot, "served snapshot must equal the in-process run");
    let (status, body, _) = http_get_retry(&addr, "/metrics", &policy).expect("/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("engine=\"3\""), "member labels must survive the wire");
    assert!(body.contains("sfi_fleet_polls_total"));
    let (status, body, _) = http_get_retry(&addr, "/healthz", &policy).expect("/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"availability\""), "{body}");
    let (status, body, _) =
        http_get_retry(&addr, "/trace?since=0", &policy).expect("/trace");
    assert_eq!(status, 200);
    assert!(body.starts_with("{\"next\": "), "{body}");
    let (status, body, _) = http_get_retry(&addr, "/alerts?since=0", &policy).expect("/alerts");
    assert_eq!(status, 200);
    assert!(json_is_valid(&body), "{body}");
    assert!(body.contains("\"states\""), "{body}");
    let (status, body, _) =
        http_get_retry(&addr, "/query?expr=sfi_fleet_members_live", &policy).expect("/query");
    assert_eq!(status, 200);
    assert!(json_is_valid(&body), "{body}");
    assert!(body.contains("\"results\""), "{body}");
    let (status, _, _) = http_get_retry(&addr, "/query?expr=%ZZ", &policy).expect("bad expr");
    assert_eq!(status, 400, "/query with malformed percent-encoding must 400");
    let (status, _, _) = http_get_retry(&addr, "/quit", &policy).expect("/quit");
    assert_eq!(status, 200);
    server.join().expect("server thread");

    println!(
        "check OK: {} members survived {} kills (availability {availability:.4} ≥ \
         {AVAILABILITY_FLOOR}), recovered members == uninterrupted replays, fleet snapshot == \
         labeled member sum, chaos on/off modeled-identical, TCP surface live",
        CHECK_MEMBERS,
        check_kills().len(),
    );
}
