//! Figure 7: context switches (a) and dTLB misses (b), ColorGuard vs
//! multi-process scaling, over the simulated run.
//!
//! The paper's shape: ColorGuard's rates stay flat as the process count
//! grows; multi-process rates climb (to ~700 K switches and tens of
//! millions of dTLB misses over the run).
//!
//! Emits `BENCH_fig7.json` with the sweep plus a `"telemetry"` section
//! (per-run registries labeled by mode and process count, merged — the
//! same shape `figX_multicore` embeds).

use sfi_bench::row;
use sfi_faas::{sim_registry, simulate, FaasWorkload, ScalingMode, SimConfig};
use sfi_telemetry::{json_snapshot, Registry};

fn main() {
    println!("Figure 7: context switches and dTLB misses vs process count\n");
    let widths = [6, 14, 14, 16, 16];
    row(
        &[
            "procs".into(),
            "mp ctx (K)".into(),
            "cg ctx (K)".into(),
            "mp dTLB (M)".into(),
            "cg dTLB (M)".into(),
        ],
        &widths,
    );
    let w = FaasWorkload::RegexFilter;
    let cg = simulate(&SimConfig::paper_rig(w, ScalingMode::ColorGuard));
    let mut telemetry = Registry::new();
    telemetry.merge_from(&sim_registry(&cg, &[("mode", "colorguard")]));
    let mut rows_json: Vec<String> = Vec::new();
    for k in [1u32, 2, 4, 6, 8, 10, 12, 15] {
        let mp = simulate(&SimConfig::paper_rig(w, ScalingMode::MultiProcess { processes: k }));
        let procs = k.to_string();
        telemetry
            .merge_from(&sim_registry(&mp, &[("mode", "multiprocess"), ("processes", &procs)]));
        rows_json.push(format!(
            "    {{\"processes\": {k}, \"mp_ctx_switches\": {}, \"cg_ctx_switches\": {}, \
             \"mp_dtlb_misses\": {}, \"cg_dtlb_misses\": {}}}",
            mp.context_switches, cg.context_switches, mp.dtlb_misses, cg.dtlb_misses,
        ));
        row(
            &[
                format!("{k}"),
                format!("{:.0}", mp.context_switches as f64 / 1e3),
                format!("{:.0}", cg.context_switches as f64 / 1e3),
                format!("{:.1}", mp.dtlb_misses as f64 / 1e6),
                format!("{:.1}", cg.dtlb_misses as f64 / 1e6),
            ],
            &widths,
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"fig7_ctx_dtlb\",\n  \"workload\": \"{}\",\n  \"rows\": [\n{}\n  ],\n  \
         \"telemetry\": {}\n}}\n",
        w.name(),
        rows_json.join(",\n"),
        json_snapshot(&telemetry)
    );
    std::fs::write("BENCH_fig7.json", &json).expect("write BENCH_fig7.json");

    println!("\nAll three workloads behave alike; per-workload numbers at 15 processes:");
    for wl in FaasWorkload::ALL {
        let cg = simulate(&SimConfig::paper_rig(wl, ScalingMode::ColorGuard));
        let mp = simulate(&SimConfig::paper_rig(wl, ScalingMode::MultiProcess { processes: 15 }));
        println!(
            "  {:>18}: mp {:>4.0}K switches / {:>5.1}M dTLB misses;  cg {:>4.0}K / {:>4.1}M",
            wl.name(),
            mp.context_switches as f64 / 1e3,
            mp.dtlb_misses as f64 / 1e6,
            cg.context_switches as f64 / 1e3,
            cg.dtlb_misses as f64 / 1e6,
        );
    }
    println!("\nwrote BENCH_fig7.json");
    println!("(paper: multiprocess grows to ~700K switches / tens of millions of dTLB\n\
              misses while ColorGuard stays flat)");
}
