//! Table 1: the ColorGuard safety invariants, and §5.2's verification
//! result — rediscovered executably.
//!
//! The fixed allocator (`sfi_pool::compute_layout`) passes bounded-
//! exhaustive checking of all ten invariants; the preserved pre-fix
//! implementation (`sfi_pool::buggy`) yields concrete counterexamples of
//! the same classes the paper's Flux verification found: the missing
//! alignment/budget preconditions (rows 7–10) and the saturating-add bug.

use sfi_pool::invariants::Invariant;
use sfi_pool::verify::{find_violation, violation_classes};
use sfi_pool::{buggy, compute_layout};

fn main() {
    println!("Table 1: ColorGuard safety invariants in the pooling allocator\n");
    let rows: [(u8, &str); 10] = [
        (1, "total slab bytes == pre + slot_bytes * num_slots + post"),
        (2, "slot_bytes >= max_memory_bytes"),
        (3, "all layout parameters page-aligned"),
        (4, "1 <= num_stripes <= min(pkeys available, num_slots)"),
        (5, "num_stripes <= guard_bytes / max_memory_bytes + 2"),
        (6, "same-stripe distance >= max(expected, max_memory) + guard; last slot keeps a real guard"),
        (7, "[missing] expected_slot_bytes multiple of the Wasm page size"),
        (8, "[missing] max_memory_bytes multiple of the Wasm page size"),
        (9, "[missing] pre-guards multiple of the OS page size"),
        (10, "[missing] slab fits total_memory_bytes"),
    ];
    for (n, desc) in rows {
        println!("  {n:>2}. {desc}");
    }

    println!("\nBounded-exhaustive verification over the structured input space:");
    match find_violation(compute_layout) {
        None => println!("  fixed allocator:  no invariant violations (all accepted inputs safe)"),
        Some(v) => println!("  fixed allocator:  UNEXPECTED violation {v:?}"),
    }
    match find_violation(buggy::compute_layout) {
        Some(v) => {
            println!("  pre-fix allocator: counterexample found");
            println!("    config:    {:?}", v.config);
            println!("    layout:    {:?}", v.layout);
            println!("    violates:  {:?}", v.invariants);
        }
        None => println!("  pre-fix allocator: UNEXPECTEDLY clean"),
    }

    let classes = violation_classes(buggy::compute_layout);
    println!("\nDistinct defect classes in the pre-fix allocator: {classes:?}");
    let has_alignment = classes.iter().any(|c| {
        matches!(
            c,
            Invariant::SlotWasmPageAligned
                | Invariant::MemoryWasmPageAligned
                | Invariant::GuardOsPageAligned
                | Invariant::PageAlignment
        )
    });
    let has_arith = classes.iter().any(|c| {
        matches!(
            c,
            Invariant::TotalAccounting
                | Invariant::FitsBudget
                | Invariant::SlotHoldsMemory
                | Invariant::StripeProtection
        )
    });
    println!(
        "  → alignment-precondition class present: {has_alignment}; \
         arithmetic/saturation class present: {has_arith}"
    );
    println!(
        "\n(paper §5.2: verification found one saturating-add bug plus four missing\n\
         preconditions — Table 1 rows 7–10 — in code that was already reviewed and fuzzed)"
    );
}
