//! Figure 4: Sightglass on WAMR, normalized to native, with WAMR's
//! vectorization pass enabled.
//!
//! WAMR's "limited" Segue frees the register and uses gs addressing but
//! keeps the reserved GPR for stores in the loads-only configuration. The
//! paper's headline here is the *regression*: full Segue breaks the
//! store-vectorization pattern and slows memmove (+35.6%) and sieve
//! (+48.7%), while Segue-on-loads-only shows no slowdowns.

use sfi_bench::{measure, row};
use sfi_core::Strategy;

fn main() {
    println!("Figure 4: Sightglass on WAMR (normalized runtime, native = 100%, vectorizer on)\n");
    let widths = [12, 10, 12, 16, 18];
    row(
        &[
            "benchmark".into(),
            "wamr".into(),
            "wamr+segue".into(),
            "segue-on-loads".into(),
            "segue vs wamr".into(),
        ],
        &widths,
    );
    for w in sfi_workloads::sightglass() {
        let native = measure(&w, Strategy::Native, true);
        let guard = measure(&w, Strategy::GuardRegion, true);
        let segue = measure(&w, Strategy::Segue, true);
        let loads = measure(&w, Strategy::SegueLoads, true);
        assert_eq!(guard.result, segue.result, "{}", w.name);
        assert_eq!(guard.result, loads.result, "{}", w.name);
        let bn = guard.cycles / native.cycles * 100.0;
        let sn = segue.cycles / native.cycles * 100.0;
        let ln = loads.cycles / native.cycles * 100.0;
        let delta = (segue.cycles - guard.cycles) / guard.cycles * 100.0;
        row(
            &[
                w.name.into(),
                format!("{bn:.1}%"),
                format!("{sn:.1}%"),
                format!("{ln:.1}%"),
                format!("{delta:+.1}%"),
            ],
            &widths,
        );
    }
    println!(
        "\n(paper: memmove +35.6% and sieve +48.7% slower with full Segue — the\n\
         store-vectorizer interaction of §4.2; Segue-on-loads shows no slowdowns)"
    );
}
