//! Figure 6: ColorGuard throughput gain over multi-process scaling, for
//! 1–15 processes and the three FaaS workloads (the paper reports gains
//! growing with process count up to ≈29%).

use sfi_bench::row;
use sfi_faas::{simulate, FaasWorkload, ScalingMode, SimConfig};

fn main() {
    println!("Figure 6: ColorGuard throughput gain vs multi-process scaling (single core)\n");
    let widths = [6, 18, 18, 18];
    row(
        &[
            "procs".into(),
            FaasWorkload::HashLoadBalance.name().into(),
            FaasWorkload::RegexFilter.name().into(),
            FaasWorkload::HtmlTemplate.name().into(),
        ],
        &widths,
    );

    // One ColorGuard run per workload; the request stream is identical
    // across modes (same seed).
    let cg: Vec<f64> = FaasWorkload::ALL
        .iter()
        .map(|&w| simulate(&SimConfig::paper_rig(w, ScalingMode::ColorGuard)).throughput_rps)
        .collect();

    for k in 1..=15u32 {
        let mut cells = vec![format!("{k}")];
        for (i, &w) in FaasWorkload::ALL.iter().enumerate() {
            let mp = simulate(&SimConfig::paper_rig(w, ScalingMode::MultiProcess { processes: k }));
            let gain = (cg[i] - mp.throughput_rps) / mp.throughput_rps * 100.0;
            cells.push(format!("{gain:+.1}%"));
        }
        row(&cells, &widths);
    }
    println!("\n(paper: gain grows with process count, up to ≈29% at 15 processes,\n\
              with all three workloads within a few percent of each other)");
}
