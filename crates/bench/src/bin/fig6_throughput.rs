//! Figure 6: ColorGuard throughput gain over multi-process scaling, for
//! 1–15 processes and the three FaaS workloads (the paper reports gains
//! growing with process count up to ≈29%).
//!
//! Emits `BENCH_fig6.json` with the gain table plus a `"telemetry"`
//! section — the per-run metrics registries (labeled by workload and mode)
//! merged into one snapshot, the same shape `figX_multicore` embeds.

use sfi_bench::row;
use sfi_faas::{sim_registry, simulate, FaasWorkload, ScalingMode, SimConfig};
use sfi_telemetry::{json_snapshot, Registry};

fn main() {
    println!("Figure 6: ColorGuard throughput gain vs multi-process scaling (single core)\n");
    let widths = [6, 18, 18, 18];
    row(
        &[
            "procs".into(),
            FaasWorkload::HashLoadBalance.name().into(),
            FaasWorkload::RegexFilter.name().into(),
            FaasWorkload::HtmlTemplate.name().into(),
        ],
        &widths,
    );

    let mut telemetry = Registry::new();

    // One ColorGuard run per workload; the request stream is identical
    // across modes (same seed).
    let cg: Vec<f64> = FaasWorkload::ALL
        .iter()
        .map(|&w| {
            let r = simulate(&SimConfig::paper_rig(w, ScalingMode::ColorGuard));
            telemetry
                .merge_from(&sim_registry(&r, &[("workload", w.name()), ("mode", "colorguard")]));
            r.throughput_rps
        })
        .collect();

    let mut rows_json: Vec<String> = Vec::new();
    for k in 1..=15u32 {
        let mut cells = vec![format!("{k}")];
        for (i, &w) in FaasWorkload::ALL.iter().enumerate() {
            let mp = simulate(&SimConfig::paper_rig(w, ScalingMode::MultiProcess { processes: k }));
            let gain = (cg[i] - mp.throughput_rps) / mp.throughput_rps * 100.0;
            cells.push(format!("{gain:+.1}%"));
            rows_json.push(format!(
                "    {{\"workload\": \"{}\", \"processes\": {k}, \
                 \"multiprocess_rps\": {:.3}, \"colorguard_rps\": {:.3}, \
                 \"gain_percent\": {gain:.3}}}",
                w.name(),
                mp.throughput_rps,
                cg[i],
            ));
            if k == 15 {
                telemetry.merge_from(&sim_registry(
                    &mp,
                    &[("workload", w.name()), ("mode", "multiprocess")],
                ));
            }
        }
        row(&cells, &widths);
    }

    let json = format!(
        "{{\n  \"bench\": \"fig6_throughput\",\n  \"rows\": [\n{}\n  ],\n  \"telemetry\": {}\n}}\n",
        rows_json.join(",\n"),
        json_snapshot(&telemetry)
    );
    std::fs::write("BENCH_fig6.json", &json).expect("write BENCH_fig6.json");
    println!("\nwrote BENCH_fig6.json");
    println!("(paper: gain grows with process count, up to ≈29% at 15 processes,\n\
              with all three workloads within a few percent of each other)");
}
