//! Figure 5: SPEC CPU 2017 under LFI, normalized to native.
//!
//! The paper's LFI x86-64 backend costs 17.4% (geomean) over native;
//! applying Segue to its memory sandboxing cuts that to 9.4%, eliminating
//! 46% of the overhead — while the control-flow pinning (which cannot use
//! segment registers, §4.3) stays.

use sfi_bench::{compile_workload, geomean, row};
use sfi_core::Strategy;
use sfi_lfi::{execute_rewritten, LfiConfig};

fn main() {
    println!("Figure 5: SPEC CPU 2017 on LFI (normalized runtime, native = 100%)\n");
    let widths = [18, 10, 10, 12, 10];
    row(
        &["benchmark".into(), "native".into(), "lfi".into(), "lfi+segue".into(), "Δsegue".into()],
        &widths,
    );

    let mut base_norm = Vec::new();
    let mut segue_norm = Vec::new();
    for w in sfi_workloads::spec2017() {
        // The native baseline is the unconstrained build; the LFI input is
        // built with %r14/%r10 reserved (à la -ffixed-r14), whose cost is
        // part of LFI's overhead.
        let cm = compile_workload(&w, Strategy::Native, false);
        let native = sfi_bench::run_compiled(&w, &cm);
        let module = w.native_module();
        let mut lfi_build_cfg = sfi_bench::config_for(Strategy::Native, module.mem_min_pages, false);
        lfi_build_cfg.lfi_reserved_regs = true;
        let cm_lfi = sfi_core::compile(&module, &lfi_build_cfg).expect("corpus compiles");
        let lfi_cfg = LfiConfig { sandbox_base: 0, ..LfiConfig::default() };
        let segue_cfg = LfiConfig { sandbox_base: 0, ..LfiConfig::with_segue() };
        let (r_base, s_base) = execute_rewritten(&cm_lfi, &lfi_cfg, "run", &[]);
        let (r_segue, s_segue) = execute_rewritten(&cm_lfi, &segue_cfg, "run", &[]);
        assert_eq!(r_base, r_segue, "{}: LFI modes must agree", w.name);
        assert_eq!(r_base, native.result, "{}: LFI must match native", w.name);
        let bn = s_base.cycles / native.cycles;
        let sn = s_segue.cycles / native.cycles;
        base_norm.push(bn);
        segue_norm.push(sn);
        row(
            &[
                w.name.into(),
                "100.0%".into(),
                format!("{:.1}%", bn * 100.0),
                format!("{:.1}%", sn * 100.0),
                format!("{:+.1}%", (sn - bn) * 100.0),
            ],
            &widths,
        );
    }
    let gb = geomean(&base_norm);
    let gs = geomean(&segue_norm);
    row(
        &[
            "geomean".into(),
            "100.0%".into(),
            format!("{:.1}%", gb * 100.0),
            format!("{:.1}%", gs * 100.0),
            format!("{:+.1}%", (gs - gb) * 100.0),
        ],
        &widths,
    );
    println!(
        "\nLFI overhead: {:.1}% → {:.1}% with Segue; {:.1}% of the overhead eliminated",
        (gb - 1.0) * 100.0,
        (gs - 1.0) * 100.0,
        (gb - gs) / (gb - 1.0) * 100.0
    );
    println!("(paper: 17.4% → 9.4%, eliminating 46%)");
}
