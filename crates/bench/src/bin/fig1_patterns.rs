//! Figure 1 of the paper, regenerated: the two memory-access patterns
//! compiled without and with Segue, with real encodings and byte counts.

use sfi_core::{compile, CompilerConfig, Strategy};
use sfi_x86::encode::encode_inst;

fn main() {
    println!("Figure 1: Segue in practice\n");

    // Pattern 1: int-to-pointer conversion, then dereference.
    let p1 = sfi_wasm::wat::parse(
        r#"(module (memory 1)
             (func (export "f") (param $val i64) (result i32)
               local.get $val
               i32.wrap_i64
               i32.load))"#,
    )
    .expect("parses");

    // Pattern 2: read an array element inside a struct (obj->arr[idx],
    // arr at byte offset 8) — with the +8 in i32 arithmetic, exactly as
    // wasm2c's generated C computes it.
    let p2 = sfi_wasm::wat::parse(
        r#"(module (memory 1)
             (func (export "f") (param $obj i32) (param $idx i32) (result i32)
               local.get $obj
               local.get $idx i32.const 4 i32.mul
               i32.add
               i32.const 8
               i32.add
               i32.load))"#,
    )
    .expect("parses");

    for (name, module) in [("Pattern 1: int→ptr, deref", &p1), ("Pattern 2: obj->arr[idx]", &p2)] {
        println!("── {name} ──");
        for strategy in [Strategy::GuardRegion, Strategy::Segue] {
            let cm = compile(module, &CompilerConfig::for_strategy(strategy)).expect("compiles");
            println!("  {strategy}:");
            let insts = cm.image.program().insts();
            // Show just the memory-access sequence (skip prologue/epilogue).
            for inst in insts {
                let is_access = inst.mem().is_some()
                    || matches!(inst, sfi_x86::Inst::Lea { .. })
                    || matches!(
                        inst,
                        sfi_x86::Inst::MovRR { width: sfi_x86::Width::D, dst, src } if dst == src
                    );
                if is_access && !matches!(inst, sfi_x86::Inst::Load { mem, .. } if mem.base == Some(sfi_x86::Gpr::Rbp))
                {
                    let bytes = encode_inst(inst).expect("encodes");
                    println!("    {inst:<40} ; {} bytes: {bytes:02x?}", bytes.len());
                }
            }
        }
        println!();
    }
    println!("Without Segue each pattern needs two instructions and the reserved %r15;");
    println!("with Segue each is a single gs-relative access (the 0x65 prefix) with the");
    println!("address-size override (0x67) providing the 32-bit truncation for free.");
}
