//! §6.1 (text): Firefox library sandboxing — font rendering and XML
//! parsing.
//!
//! Firefox sandboxes libgraphite (font shaping) and libexpat (XML parsing)
//! with Wasm2c. The font benchmark invokes the sandboxed library once per
//! glyph run, so it also pays a transition (including the segment-base set
//! that Segue adds) per invocation. The paper measures:
//!
//! - font rendering: 264 ms native, 356 ms sandboxed, 287 ms with Segue
//!   (Segue eliminates 75% of the overhead);
//! - XML parsing: 331 ms native, 381 ms sandboxed, 347 ms with Segue
//!   (68% eliminated).

use sfi_bench::measure;
use sfi_core::Strategy;
use sfi_runtime::{TransitionKind, TransitionModel};

fn main() {
    println!("§6.1: Firefox sandboxed library workloads (Wasm2c)\n");
    let tm = TransitionModel::default();

    for (w, invocations, label) in [
        (sfi_workloads::firefox_font(), 800u64, "font rendering"),
        (sfi_workloads::firefox_xml(), 40u64, "XML parsing"),
    ] {
        let native = measure(&w, Strategy::Native, false);
        let guard = measure(&w, Strategy::GuardRegion, false);
        let segue = measure(&w, Strategy::Segue, false);
        assert_eq!(guard.result, segue.result, "{label}: strategies agree");

        // Firefox re-enters the sandbox per glyph run / parse chunk; Segue
        // additionally sets the segment base on each entry.
        let plain_tr = tm.cycles(TransitionKind::default()) * 2.0;
        let segue_tr = tm.cycles(TransitionKind {
            set_segment_base: true,
            ..TransitionKind::default()
        }) + tm.cycles(TransitionKind::default());
        let native_c = native.cycles;
        let guard_c = guard.cycles + invocations as f64 * plain_tr;
        let segue_c = segue.cycles + invocations as f64 * segue_tr;

        let overhead_guard = guard_c - native_c;
        let overhead_segue = segue_c - native_c;
        let eliminated = (overhead_guard - overhead_segue) / overhead_guard * 100.0;
        println!(
            "{label}: native {:.2} Mcycles, sandboxed {:.2}, sandboxed+Segue {:.2}",
            native_c / 1e6,
            guard_c / 1e6,
            segue_c / 1e6
        );
        println!(
            "  overhead {:.2} → {:.2} Mcycles: Segue eliminates {:.0}% \
             ({} sandbox entries incl. per-entry segment-base sets)\n",
            overhead_guard / 1e6,
            overhead_segue / 1e6,
            eliminated,
            invocations
        );
    }
    println!("(paper: Segue eliminates 75% of font-rendering and 68% of XML-parsing overhead)");
}
