//! Table 2: compiled binary sizes of the SPEC benchmarks, stock Wasm vs
//! Wasm with Segue (the paper reports a median reduction of 5.9%, max
//! 12.3%).

use sfi_bench::{compile_workload, row};
use sfi_core::Strategy;

fn main() {
    println!("Table 2: SPEC CPU 2006 compiled code size, Wasm2c vs Wasm2c+Segue\n");
    let widths = [16, 12, 14, 12];
    row(
        &["benchmark".into(), "wasm2c".into(), "wasm2c+segue".into(), "reduction".into()],
        &widths,
    );
    let mut reductions = Vec::new();
    for w in sfi_workloads::spec2006() {
        let base = compile_workload(&w, Strategy::GuardRegion, false).code_size();
        let segue = compile_workload(&w, Strategy::Segue, false).code_size();
        let red = (base as f64 - segue as f64) / base as f64 * 100.0;
        reductions.push(red);
        row(
            &[
                w.name.into(),
                format!("{base} B"),
                format!("{segue} B"),
                format!("{red:.1}%"),
            ],
            &widths,
        );
    }
    reductions.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let median = reductions[reductions.len() / 2];
    let max = reductions.last().expect("nonempty");
    println!("\nmedian reduction {median:.1}%, max {max:.1}% (paper: median 5.9%, max 12.3%)");
}
