//! §7: ColorGuard on ARM MTE — the two system-call observations.
//!
//! Observation 1: user-level bulk tagging is slow (two 16-byte granules per
//! instruction); striping forty 64 KiB linear memories goes from 79 µs to
//! 2,182 µs per instance.
//!
//! Observation 2: `madvise(MADV_DONTNEED)` discards MTE tags (but not MPK
//! keys), so recycling a slot forces a full re-tag: deallocation goes from
//! 29 µs to 377 µs per instance.

use sfi_vm::mte::{TagStore, GRANULE, GRANULES_PER_INST};
use sfi_vm::{AddressSpace, Prot};

const INSTANCES: u64 = 40;
const MEM_BYTES: u64 = 65536;

/// Baseline per-instance init cost without MTE (mmap + page table setup
/// for 16 pages), calibrated to the paper's 79 µs.
const BASE_INIT_US: f64 = 79.0;
/// Baseline per-instance teardown (madvise) cost, calibrated to 29 µs.
const BASE_FREE_US: f64 = 29.0;

fn main() {
    println!("§7: ColorGuard with ARM MTE (Pixel 8 Pro model)\n");

    // ---- Observation 1: bulk tagging cost ----
    let mut space = AddressSpace::new_48bit();
    let mut tag_insts_total = 0u64;
    let mut bases = Vec::new();
    for i in 0..INSTANCES {
        let base = space.mmap(MEM_BYTES, Prot::READ_WRITE).expect("mmap");
        space.set_mte(base, MEM_BYTES, true).expect("mte");
        tag_insts_total += space.tags.set_range(base, MEM_BYTES, (i % 15 + 1) as u8);
        bases.push(base);
    }
    let tag_us_per_instance = TagStore::user_tag_cost_ns(MEM_BYTES) / 1000.0;
    println!(
        "Observation 1 — initializing {INSTANCES} × {} KiB linear memories:",
        MEM_BYTES / 1024
    );
    println!("  granules per memory: {}   (16-byte granules)", MEM_BYTES / GRANULE);
    println!(
        "  user-level tag instructions per memory: {}   ({} granules per st2g)",
        (MEM_BYTES / GRANULE) / GRANULES_PER_INST,
        GRANULES_PER_INST
    );
    println!("  total tagging instructions executed: {tag_insts_total}");
    println!(
        "  per-instance init: {BASE_INIT_US:.0} µs without MTE → {:.0} µs with MTE",
        BASE_INIT_US + tag_us_per_instance
    );
    println!("  (paper: 79 µs → 2,182 µs)\n");

    // ---- Observation 2: madvise discards tags ----
    println!("Observation 2 — recycling the {INSTANCES} instances with madvise(MADV_DONTNEED):");
    let tagged_before = space.tags.tag_at(bases[0]);
    for &b in &bases {
        space.madvise_dontneed(b, MEM_BYTES).expect("madvise");
    }
    let tagged_after = space.tags.tag_at(bases[0]);
    println!(
        "  MTE tag of instance 0's first granule: {tagged_before:#x} before madvise, \
         {tagged_after:#x} after (discarded by the kernel)"
    );
    // Re-tagging cost is the same bulk-tagging bill all over again; the
    // paper also measures the deallocation itself slowing (tag clearing).
    println!(
        "  per-instance teardown: {BASE_FREE_US:.0} µs without MTE → {:.0} µs with MTE \
         (tag clearing)",
        BASE_FREE_US + TagStore::kernel_tag_clear_cost_ns(MEM_BYTES) / 1000.0
    );
    println!(
        "  and every reuse must re-stripe: +{:.0} µs per recycled instance",
        tag_us_per_instance
    );
    println!("  (paper: 29 µs → 377 µs per instance)\n");

    // MPK contrast: keys live in PTEs and survive.
    let mut mpk_space = AddressSpace::new_48bit();
    let key = mpk_space.keys.pkey_alloc().expect("keys available");
    let base = mpk_space.mmap(MEM_BYTES, Prot::READ_WRITE).expect("mmap");
    mpk_space.pkey_mprotect(base, MEM_BYTES, Prot::READ_WRITE, key).expect("pkey");
    mpk_space.madvise_dontneed(base, MEM_BYTES).expect("madvise");
    let still = mpk_space.vma_at(base).expect("mapped").pkey;
    println!(
        "MPK contrast: after the same madvise, the slot's protection key is still {still} \
         — no re-striping needed (the ColorGuard-MPK advantage)"
    );
}
