//! Multi-core sharded-engine sweep: 1–8 cores × {cold, warm-cache} ×
//! {multiprocess, ColorGuard}, on the hash-load-balance workload. Emits
//! `BENCH_multicore.json` (byte-identical across same-seed runs).
//!
//! `--check` re-runs the sweep and asserts the acceptance criteria:
//! warm-cache ColorGuard throughput scales ≥ 3× from 1→4 cores, a warm
//! spawn is ≥ 5× cheaper than a cold compile, warm-cache throughput beats
//! the cold path at 1 core, and two same-seed runs are byte-identical.

use sfi_bench::row;
use sfi_faas::{multicore_sweep_json, simulate_multicore, CacheMode, MultiCoreConfig, ScalingMode};

const SEED: u64 = 0x5E65E9;
const DURATION_MS: u64 = 400;
const CORES: [u32; 4] = [1, 2, 4, 8];

fn json_field(row: &str, field: &str) -> Option<f64> {
    let pat = format!("\"{field}\": ");
    let start = row.find(&pat)? + pat.len();
    let rest = &row[start..];
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn check(json: &str) {
    let rerun = multicore_sweep_json(SEED, DURATION_MS, &CORES);
    assert_eq!(json, rerun, "same seed must reproduce BENCH_multicore.json byte-identically");

    let throughput = |cores: u32, mode: &str, cache: &str| -> f64 {
        let tag = format!("\"cores\": {cores}, \"mode\": \"{mode}\", \"cache\": \"{cache}\"");
        let line = json.lines().find(|l| l.contains(&tag)).expect("sweep row present");
        json_field(line, "throughput_rps").expect("throughput field")
    };
    let warm1 = throughput(1, "colorguard", "warm");
    let cold1 = throughput(1, "colorguard", "cold");
    let warm4 = throughput(4, "colorguard", "warm");
    assert!(
        warm1 >= cold1,
        "warm-cache throughput must beat the cold path at 1 core: {warm1:.0} vs {cold1:.0}"
    );
    let scaling = warm4 / warm1;
    assert!(scaling >= 3.0, "warm ColorGuard 1→4 core scaling {scaling:.2}× (need ≥ 3×)");

    let derived = json.lines().find(|l| l.contains("cold_over_warm_spawn_cost")).expect("derived");
    let ratio = json_field(derived, "cold_over_warm_spawn_cost").expect("ratio field");
    assert!(ratio >= 5.0, "warm spawn must be ≥ 5× cheaper than cold compile: {ratio:.2}×");

    println!(
        "check OK: scaling 1→4 = {scaling:.2}x, cold/warm spawn = {ratio:.1}x, \
         warm {warm1:.0} rps >= cold {cold1:.0} rps at 1 core, output reproducible"
    );
}

fn main() {
    let check_mode = std::env::args().any(|a| a == "--check");
    let json = multicore_sweep_json(SEED, DURATION_MS, &CORES);
    std::fs::write("BENCH_multicore.json", &json).expect("write BENCH_multicore.json");

    println!("Figure X: sharded multi-core engine, {DURATION_MS} ms, hash load-balance\n");
    let widths = [6, 14, 6, 12, 14, 8, 12, 12];
    row(
        &[
            "cores".into(),
            "mode".into(),
            "cache".into(),
            "throughput".into(),
            "rps/core".into(),
            "steals".into(),
            "cold spawns".into(),
            "warm spawns".into(),
        ],
        &widths,
    );
    for &cores in &CORES {
        for mode in [ScalingMode::ColorGuard, ScalingMode::MultiProcess { processes: 15 }] {
            for cache in [CacheMode::Cold, CacheMode::Warm] {
                let mut cfg = MultiCoreConfig::paper_rig(
                    sfi_faas::FaasWorkload::HashLoadBalance,
                    mode,
                    cache,
                    cores,
                );
                cfg.seed = SEED;
                cfg.duration_ms = DURATION_MS;
                let r = simulate_multicore(&cfg);
                row(
                    &[
                        format!("{cores}"),
                        match mode {
                            ScalingMode::ColorGuard => "colorguard".into(),
                            ScalingMode::MultiProcess { .. } => "multiproc".into(),
                        },
                        cache.name().into(),
                        format!("{:.0}", r.throughput_rps),
                        format!("{:.0}", r.throughput_rps / f64::from(cores)),
                        format!("{}", r.totals.steals),
                        format!("{}", r.totals.cold_spawns),
                        format!("{}", r.totals.warm_spawns),
                    ],
                    &widths,
                );
            }
        }
    }
    println!("\nwrote BENCH_multicore.json");

    if check_mode {
        check(&json);
    }
}
