//! Multi-core sharded-engine sweep: 1–8 cores × {cold, warm-cache} ×
//! {multiprocess, ColorGuard}, on the hash-load-balance workload. Emits
//! `BENCH_multicore.json` (byte-identical across same-seed runs).
//!
//! Also emits `TRACE_multicore.json` — the headline run's flight-recorder
//! rings rendered as a chrome://tracing (`about:tracing`) event stream.
//!
//! `--check` re-runs the sweep and asserts the acceptance criteria:
//! warm-cache ColorGuard throughput scales ≥ 3× from 1→4 cores, a warm
//! spawn is ≥ 5× cheaper than a cold compile, warm-cache throughput beats
//! the cold path at 1 core, and two same-seed runs are byte-identical.
//! It then gates the telemetry layer itself: the embedded snapshot must be
//! present and parse, tracing on-vs-off must not change a single modeled
//! number, measured self-overhead must stay within the §8 budget (≤ 35 %
//! wall-clock, best-of-3), and the runtime metric schema must register
//! without a name collision.

use std::time::Instant;

use sfi_bench::row;
use sfi_faas::{multicore_sweep_json, simulate_multicore, CacheMode, MultiCoreConfig, ScalingMode};
use sfi_runtime::RuntimeTelemetry;
use sfi_telemetry::{chrome_trace, json_is_valid};

/// Documented telemetry self-overhead budget (DESIGN.md §8): tracing on may
/// cost at most this factor over tracing off, best-of-3 wall clock.
const OVERHEAD_BUDGET: f64 = 1.35;

const SEED: u64 = 0x5E65E9;
const DURATION_MS: u64 = 400;
const CORES: [u32; 4] = [1, 2, 4, 8];

fn json_field(row: &str, field: &str) -> Option<f64> {
    let pat = format!("\"{field}\": ");
    let start = row.find(&pat)? + pat.len();
    let rest = &row[start..];
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn check(json: &str) {
    let rerun = multicore_sweep_json(SEED, DURATION_MS, &CORES);
    assert_eq!(json, rerun, "same seed must reproduce BENCH_multicore.json byte-identically");

    let throughput = |cores: u32, mode: &str, cache: &str| -> f64 {
        let tag = format!("\"cores\": {cores}, \"mode\": \"{mode}\", \"cache\": \"{cache}\"");
        let line = json.lines().find(|l| l.contains(&tag)).expect("sweep row present");
        json_field(line, "throughput_rps").expect("throughput field")
    };
    let warm1 = throughput(1, "colorguard", "warm");
    let cold1 = throughput(1, "colorguard", "cold");
    let warm4 = throughput(4, "colorguard", "warm");
    assert!(
        warm1 >= cold1,
        "warm-cache throughput must beat the cold path at 1 core: {warm1:.0} vs {cold1:.0}"
    );
    let scaling = warm4 / warm1;
    assert!(scaling >= 3.0, "warm ColorGuard 1→4 core scaling {scaling:.2}× (need ≥ 3×)");

    let derived = json.lines().find(|l| l.contains("cold_over_warm_spawn_cost")).expect("derived");
    let ratio = json_field(derived, "cold_over_warm_spawn_cost").expect("ratio field");
    assert!(ratio >= 5.0, "warm spawn must be ≥ 5× cheaper than cold compile: {ratio:.2}×");

    check_telemetry(json);

    println!(
        "check OK: scaling 1→4 = {scaling:.2}x, cold/warm spawn = {ratio:.1}x, \
         warm {warm1:.0} rps >= cold {cold1:.0} rps at 1 core, output reproducible"
    );
}

/// The telemetry acceptance gates (ISSUE §tentpole): snapshot embedded and
/// parseable, observation is free of observer effects, self-overhead within
/// the documented budget, and the metric schema collision-free.
fn check_telemetry(json: &str) {
    // 1. The sweep JSON embeds a parseable metrics snapshot.
    assert!(json.contains("\"telemetry\""), "sweep JSON must embed a telemetry section");
    assert!(json.contains("sfi_shard_completed_total"), "snapshot must carry shard counters");
    assert!(json_is_valid(json), "BENCH_multicore.json must parse as JSON");

    // 2. Tracing must not perturb the model: the same run with the flight
    // recorder disabled reports identical numbers everywhere but the trace
    // fields themselves.
    let headline = |trace_capacity: usize| {
        let mut cfg = MultiCoreConfig::paper_rig(
            sfi_faas::FaasWorkload::HashLoadBalance,
            ScalingMode::ColorGuard,
            CacheMode::Warm,
            4,
        );
        cfg.seed = SEED;
        cfg.duration_ms = DURATION_MS;
        cfg.trace_capacity = trace_capacity;
        cfg
    };
    let on = simulate_multicore(&headline(512));
    let off = simulate_multicore(&headline(0));
    assert!(off.traces.iter().all(Vec::is_empty), "capacity 0 must disable tracing");
    assert_eq!(on.completed, off.completed, "tracing changed completions");
    assert_eq!(on.totals, off.totals, "tracing changed aggregate counters");
    assert_eq!(on.per_core, off.per_core, "tracing changed per-core counters");
    assert_eq!(on.throughput_rps, off.throughput_rps, "tracing changed throughput");
    assert_eq!(on.mean_latency_ms, off.mean_latency_ms, "tracing changed mean latency");
    assert_eq!(on.p99_latency_ms, off.p99_latency_ms, "tracing changed p99 latency");

    // 3. Self-overhead gate: best-of-3 wall clock, tracing on vs off.
    let time = |capacity: usize| {
        (0..3)
            .map(|_| {
                let cfg = headline(capacity);
                let t0 = Instant::now();
                let r = simulate_multicore(&cfg);
                assert!(r.completed > 0);
                t0.elapsed()
            })
            .min()
            .expect("three timed runs")
    };
    let off_t = time(0);
    let on_t = time(512);
    let factor = on_t.as_secs_f64() / off_t.as_secs_f64().max(1e-9);
    assert!(
        factor <= OVERHEAD_BUDGET,
        "telemetry self-overhead {factor:.2}x exceeds the {OVERHEAD_BUDGET:.2}x budget \
         (on {on_t:?} vs off {off_t:?})"
    );

    // 4. Metric-name collision gate: registering the full runtime schema
    // panics on any duplicate series, so constructing it IS the check.
    let rt = RuntimeTelemetry::new(16, 0);
    assert!(json_is_valid(&sfi_telemetry::json_snapshot(rt.registry())));

    println!(
        "telemetry OK: snapshot embedded, zero observer effect, overhead {factor:.2}x \
         (budget {OVERHEAD_BUDGET:.2}x), runtime schema collision-free"
    );
}

fn main() {
    let check_mode = std::env::args().any(|a| a == "--check");
    let json = multicore_sweep_json(SEED, DURATION_MS, &CORES);
    std::fs::write("BENCH_multicore.json", &json).expect("write BENCH_multicore.json");

    println!("Figure X: sharded multi-core engine, {DURATION_MS} ms, hash load-balance\n");
    let widths = [6, 14, 6, 12, 14, 8, 12, 12];
    row(
        &[
            "cores".into(),
            "mode".into(),
            "cache".into(),
            "throughput".into(),
            "rps/core".into(),
            "steals".into(),
            "cold spawns".into(),
            "warm spawns".into(),
        ],
        &widths,
    );
    for &cores in &CORES {
        for mode in [ScalingMode::ColorGuard, ScalingMode::MultiProcess { processes: 15 }] {
            for cache in [CacheMode::Cold, CacheMode::Warm] {
                let mut cfg = MultiCoreConfig::paper_rig(
                    sfi_faas::FaasWorkload::HashLoadBalance,
                    mode,
                    cache,
                    cores,
                );
                cfg.seed = SEED;
                cfg.duration_ms = DURATION_MS;
                let r = simulate_multicore(&cfg);
                row(
                    &[
                        format!("{cores}"),
                        match mode {
                            ScalingMode::ColorGuard => "colorguard".into(),
                            ScalingMode::MultiProcess { .. } => "multiproc".into(),
                        },
                        cache.name().into(),
                        format!("{:.0}", r.throughput_rps),
                        format!("{:.0}", r.throughput_rps / f64::from(cores)),
                        format!("{}", r.totals.steals),
                        format!("{}", r.totals.cold_spawns),
                        format!("{}", r.totals.warm_spawns),
                    ],
                    &widths,
                );
            }
        }
    }
    // Render the headline run's flight-recorder rings for about:tracing.
    let mut cfg = MultiCoreConfig::paper_rig(
        sfi_faas::FaasWorkload::HashLoadBalance,
        ScalingMode::ColorGuard,
        CacheMode::Warm,
        *CORES.iter().max().expect("core list"),
    );
    cfg.seed = SEED;
    cfg.duration_ms = DURATION_MS;
    let headline = simulate_multicore(&cfg);
    let events: Vec<_> = headline.traces.iter().flatten().copied().collect();
    // Trace ticks are already simulated nanoseconds.
    let trace = chrome_trace(&events, 1.0);
    std::fs::write("TRACE_multicore.json", &trace).expect("write TRACE_multicore.json");

    println!("\nwrote BENCH_multicore.json, TRACE_multicore.json ({} events)", events.len());

    if check_mode {
        check(&json);
    }
}
