//! Figure X (tiers): the tiered optimizing compiler.
//!
//! Reports the per-module cycle win of the optimizing tier on the fig6
//! FaaS hot modules (the population the promotion policy targets), then
//! drives the promotion flow end-to-end through the runtime's tiered
//! spawn path and embeds the resulting telemetry in `BENCH_tiers.json`.
//!
//! `--check` additionally runs the equivalence and performance gates:
//!
//! 1. the optimizing tier is interpreter-equal on the **full corpus**
//!    under every protection strategy,
//! 2. 500 seeded random programs are differentially equal across
//!    interpreter, baseline and optimized tiers (failures shrink to a
//!    minimal counterexample before panicking),
//! 3. each fig6 hot module gains ≥10% cycles at the optimizing tier, and
//! 4. with tiering off, compiled artifacts are byte-identical to the
//!    default configuration's — the baseline tier is the pre-tiering
//!    compiler, bit for bit.

use sfi_bench::{config_for, geomean, row, run_compiled};
use sfi_core::{compile, OptLevel, Strategy};
use sfi_runtime::{Engine, Runtime, RuntimeConfig, Tier, TierPolicy};
use sfi_telemetry::json_snapshot;
use sfi_wasm::interp::Interpreter;

/// The protection strategies the equivalence gate sweeps (Native is
/// excluded from the runtime rows: it cannot be pooled).
const PROTECTED: [Strategy; 5] = [
    Strategy::GuardRegion,
    Strategy::Segue,
    Strategy::SegueLoads,
    Strategy::BoundsCheck,
    Strategy::BoundsCheckSegue,
];

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    println!("Figure X (tiers): optimizing tier vs baseline on the fig6 hot modules\n");

    // ---- Part 1: per-module cycle win under Segue ------------------------
    let widths = [20, 14, 14, 9, 11, 11];
    row(
        &[
            "module".into(),
            "base cycles".into(),
            "opt cycles".into(),
            "cut".into(),
            "base c/i".into(),
            "opt c/i".into(),
        ],
        &widths,
    );

    let mut rows_json = Vec::new();
    let mut cuts = Vec::new();
    for w in sfi_workloads::faas() {
        let module = w.module();
        let base_cfg = config_for(Strategy::Segue, module.mem_min_pages, false);
        let base = compile(&module, &base_cfg).expect("baseline compiles");
        let opt = compile(&module, &base_cfg.clone().optimized()).expect("optimized compiles");
        let mb = run_compiled(&w, &base);
        let mo = run_compiled(&w, &opt);
        assert_eq!(mb.result, mo.result, "{}: tiers must agree", w.name);
        let cut = 1.0 - mo.cycles / mb.cycles;
        cuts.push(cut);
        let (cpi_b, cpi_o) = (mb.cycles / mb.insts as f64, mo.cycles / mo.insts as f64);
        row(
            &[
                w.name.into(),
                format!("{:.0}", mb.cycles),
                format!("{:.0}", mo.cycles),
                format!("{:.1}%", cut * 100.0),
                format!("{cpi_b:.3}"),
                format!("{cpi_o:.3}"),
            ],
            &widths,
        );
        rows_json.push(format!(
            "    {{\"module\": \"{}\", \"baseline_cycles\": {:.3}, \"optimized_cycles\": {:.3}, \
             \"cycle_cut_percent\": {:.3}, \"baseline_cpi\": {cpi_b:.4}, \"optimized_cpi\": {cpi_o:.4}, \
             \"opt_rewrites\": {}}}",
            w.name,
            mb.cycles,
            mo.cycles,
            cut * 100.0,
            opt.opt_stats.total(),
        ));
    }
    let gm = geomean(&cuts.iter().map(|c| 1.0 - c).collect::<Vec<_>>());
    println!("\ngeomean cycle cut {:.1}% across the fig6 hot modules", (1.0 - gm) * 100.0);

    // ---- Part 2: the promotion flow through the runtime ------------------
    // Small-instance variants of the same three kernels (they must fit the
    // pool's test slots); spawned repeatedly so each crosses the hot-count
    // threshold and recompiles at the optimizing tier mid-run.
    println!("\ntiered execution: promote_after = 4, eight spawns per module\n");
    let hot = [
        ("hash_lb", sfi_workloads::kernels::hash_lb(2_000, 1024, 1)),
        ("regex_filter", sfi_workloads::kernels::regex_filter(20_000, 1)),
        ("html_template", sfi_workloads::kernels::html_template(16_000, 1)),
    ];
    let mut engine = Engine::with_tier_policy(64, TierPolicy { promote_after: 4 });
    let mut rt = Runtime::new(RuntimeConfig::small_test(true)).expect("runtime");
    let widths2 = [20, 10, 12, 12];
    row(&["module".into(), "spawns".into(), "baseline".into(), "optimized".into()], &widths2);
    for (name, wat) in &hot {
        let module = sfi_wasm::wat::parse(wat).expect("kernel parses");
        let cfg = sfi_core::CompilerConfig::for_strategy(Strategy::Segue);
        let (mut at_base, mut at_opt) = (0u32, 0u32);
        for _ in 0..8 {
            let (id, tier) = rt.spawn_tiered(&mut engine, &module, &cfg).expect("spawn");
            match tier {
                Tier::Baseline => at_base += 1,
                Tier::Optimized => at_opt += 1,
            }
            rt.invoke(id, "run", &[]).expect("runs");
            rt.terminate(id).expect("terminate");
        }
        row(
            &[(*name).into(), "8".into(), format!("{at_base}"), format!("{at_opt}")],
            &widths2,
        );
        assert_eq!(at_base, 4, "{name}: promote_after spawns stay at baseline");
        assert_eq!(at_opt, 4, "{name}: the rest are served optimized");
    }
    let stats = engine.tier_stats();
    println!(
        "\n{} promotions, {} demotions; cache holds both tiers under distinct keys",
        stats.promotions, stats.demotions
    );

    let telemetry = json_snapshot(rt.telemetry().registry());
    let json = format!(
        "{{\n  \"bench\": \"figX_tiers\",\n  \"rows\": [\n{}\n  ],\n  \
         \"geomean_cycle_cut_percent\": {:.3},\n  \"promotions\": {},\n  \"telemetry\": {}\n}}\n",
        rows_json.join(",\n"),
        (1.0 - gm) * 100.0,
        stats.promotions,
        telemetry
    );
    std::fs::write("BENCH_tiers.json", &json).expect("write BENCH_tiers.json");
    println!("wrote BENCH_tiers.json");

    if !check {
        return;
    }

    // ---- Gate 3: the headline win ----------------------------------------
    for (w, cut) in sfi_workloads::faas().iter().zip(&cuts) {
        assert!(
            *cut >= 0.10,
            "{}: optimizing tier must cut ≥10% of cycles, got {:.2}%",
            w.name,
            cut * 100.0
        );
    }
    println!("\n[check] fig6 hot modules: every cycle cut ≥10% ✓");

    // ---- Gate 1: full-corpus equivalence at the optimizing tier ----------
    let mut checked = 0u32;
    for w in sfi_workloads::all() {
        let module = w.module();
        let mut interp = Interpreter::new(&module).expect("instantiates");
        let expected = interp
            .invoke_export("run", &[])
            .expect("interprets")
            .expect("corpus returns a checksum");
        for strategy in PROTECTED {
            let cfg = config_for(strategy, module.mem_min_pages, false).optimized();
            let cm = compile(&module, &cfg).expect("compiles");
            let out = sfi_core::harness::execute_export(&cm, "run", &[]).expect("runs");
            assert_eq!(
                out.result.map(|r| r & 0xFFFF_FFFF),
                Some(expected),
                "{} diverged under {strategy} at the optimizing tier",
                w.name
            );
            let n = interp.memory.len().min(out.heap.len());
            assert_eq!(
                interp.memory[..n],
                out.heap[..n],
                "{} heap diverged under {strategy} at the optimizing tier",
                w.name
            );
            checked += 1;
        }
    }
    println!("[check] full corpus interpreter-equal at the optimizing tier ({checked} combos) ✓");

    // ---- Gate 2: 500 seeded random programs ------------------------------
    let diverges = |p: &sfi_workloads::genprog::RandomProgram| {
        let m = p.module();
        std::panic::catch_unwind(|| {
            sfi_core::harness::differential_check(&m, "run", &[]);
        })
        .is_err()
    };
    for seed in 0..500u64 {
        let program = sfi_workloads::genprog::generate(seed);
        if diverges(&program) {
            let hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let minimal = program.shrink(diverges);
            std::panic::set_hook(hook);
            panic!(
                "seed {seed} diverges across tiers; minimal counterexample ({} stmts): {:?}",
                minimal.size(),
                minimal.module().defined_func(0).map(|f| &f.body),
            );
        }
    }
    println!("[check] 500 seeded random programs differentially equal across tiers ✓");

    // ---- Gate 4: tiering off is byte-identical ---------------------------
    // The default configuration never names a tier; an explicit Baseline
    // must produce the same bytes, and the engine's cold (pre-promotion)
    // path must serve exactly that artifact.
    let mut engine = Engine::new(64);
    for w in sfi_workloads::all() {
        let module = w.module();
        for strategy in PROTECTED {
            let default_cfg = config_for(strategy, module.mem_min_pages, false);
            assert_eq!(default_cfg.opt_level, OptLevel::Baseline, "tiering is opt-in");
            let direct = compile(&module, &default_cfg).expect("compiles");
            let mut explicit_cfg = default_cfg.clone();
            explicit_cfg.opt_level = OptLevel::Baseline;
            let explicit = compile(&module, &explicit_cfg).expect("compiles");
            assert_eq!(
                direct.image.encoded().bytes,
                explicit.image.encoded().bytes,
                "{} under {strategy}: baseline bytes must not depend on tier plumbing",
                w.name
            );
            let (cold, tier) =
                engine.load_tiered(&module, &default_cfg, 0).expect("cold tiered load");
            assert_eq!(tier, Tier::Baseline, "cold spawns serve baseline");
            assert_eq!(
                cold.image.encoded().bytes,
                direct.image.encoded().bytes,
                "{} under {strategy}: the engine's cold path is the baseline artifact",
                w.name
            );
        }
    }
    println!("[check] baseline artifacts byte-identical with tiering off ✓");
    println!("\nfigX_tiers --check: all gates passed");
}
