//! §6.2 (text): PolybenchC and Dhrystone on WAMR.
//!
//! The paper reports PolybenchC running 6% *faster* than native under Wasm
//! (pointer compression), improving to 10% with Segue; Dhrystone 9.7%
//! faster, improving to 28.2%.

use sfi_bench::{geomean, measure, row};
use sfi_core::Strategy;

fn main() {
    println!("§6.2: PolybenchC and Dhrystone on WAMR (normalized runtime, native = 100%)\n");
    let widths = [12, 10, 12];
    row(&["benchmark".into(), "wamr".into(), "wamr+segue".into()], &widths);
    let mut base = Vec::new();
    let mut segue = Vec::new();
    for w in sfi_workloads::polybench() {
        let n = measure(&w, Strategy::Native, true);
        let g = measure(&w, Strategy::GuardRegion, true);
        let s = measure(&w, Strategy::Segue, true);
        assert_eq!(g.result, s.result, "{}", w.name);
        base.push(g.cycles / n.cycles);
        segue.push(s.cycles / n.cycles);
        row(
            &[
                w.name.into(),
                format!("{:.1}%", g.cycles / n.cycles * 100.0),
                format!("{:.1}%", s.cycles / n.cycles * 100.0),
            ],
            &widths,
        );
    }
    let gb = geomean(&base);
    let gs = geomean(&segue);
    row(
        &["geomean".into(), format!("{:.1}%", gb * 100.0), format!("{:.1}%", gs * 100.0)],
        &widths,
    );
    println!(
        "\nPolybenchC vs native: wasm {:+.1}%, wasm+segue {:+.1}% \
         (paper: wasm 6% faster, segue 10% faster)",
        (1.0 - gb) * 100.0,
        (1.0 - gs) * 100.0
    );

    let d = sfi_workloads::dhrystone();
    let n = measure(&d, Strategy::Native, true);
    let g = measure(&d, Strategy::GuardRegion, true);
    let s = measure(&d, Strategy::Segue, true);
    println!(
        "\nDhrystone vs native: wasm {:+.1}%, wasm+segue {:+.1}% \
         (paper: wasm 9.7% faster, segue 28.2% faster)",
        (1.0 - g.cycles / n.cycles) * 100.0,
        (1.0 - s.cycles / n.cycles) * 100.0
    );
}
