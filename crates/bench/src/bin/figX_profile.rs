//! Figure X (profile): the cycle-attribution profiler.
//!
//! Builds the attribution matrix of DESIGN.md §14 — every non-Native
//! protection strategy × both compiler tiers over the fig6 FaaS hot
//! modules — from the emulator's per-provenance cycle buckets, then
//! drives the pooled runtime to measure each strategy's transition-cycle
//! share end-to-end. The matrix, the per-strategy shares, a folded-stack
//! rendering of the whole matrix (flamegraph input) and the runtime's
//! profile telemetry land in `BENCH_profile.json`.
//!
//! `--check` additionally runs the profiler gates:
//!
//! 1. **exact attribution**: for every matrix cell the six provenance
//!    buckets plus the three penalty buckets sum to the run's modeled
//!    cycle total bit-for-bit (`RunStats::attributed_cycles`),
//! 2. **determinism**: rebuilding the whole artifact from scratch is
//!    byte-identical,
//! 3. **zero observer effect**: request spans on vs off changes no
//!    benchmark result field of the multi-core simulation,
//! 4. **self-overhead**: spans + exemplars may cost at most 1.35× over
//!    the profiler-off configuration (best-of-3 wall clock), and
//! 5. the per-strategy transition shares are printed for the DESIGN.md
//!    §14 calibration record (CI watches them for drift).

use std::time::Instant;

use sfi_bench::{compile_workload, row, run_compiled};
use sfi_core::{CompilerConfig, Strategy};
use sfi_faas::{simulate_multicore, CacheMode, FaasWorkload, MultiCoreConfig, ScalingMode};
use sfi_runtime::{Engine, Runtime, RuntimeConfig, PENALTY_NAMES};
use sfi_telemetry::{
    json_is_valid, json_snapshot, AlertEngine, FoldedStacks, RecordingRule, RuleSource, Selector,
    Tsdb,
};
use sfi_x86::Provenance;

/// The profiler's self-overhead budget (DESIGN.md §14, same 1.35× bar as
/// the §8 tracing budget): spans + exemplars + tracing on vs all off.
const OVERHEAD_BUDGET: f64 = 1.35;

/// The strategies the matrix covers — everything except `Native`, which
/// has no protection cycles to attribute and cannot be pooled.
const PROFILED: [Strategy; 6] = [
    Strategy::GuardRegion,
    Strategy::Segue,
    Strategy::SegueLoads,
    Strategy::BoundsCheck,
    Strategy::BoundsCheckSegue,
    Strategy::Masking,
];

const TIERS: [&str; 2] = ["baseline", "optimized"];

/// One matrix cell: cycles by provenance and penalty, aggregated over the
/// fig6 hot modules under one (strategy, tier).
struct Cell {
    strategy: Strategy,
    tier: &'static str,
    cycles: f64,
    prov: [f64; Provenance::COUNT],
    penalty: [f64; 3],
}

/// Builds the full attribution matrix, asserting the exact-sum invariant
/// for every underlying run.
fn build_matrix() -> Vec<Cell> {
    let mut cells = Vec::new();
    for strategy in PROFILED {
        for (t, tier) in TIERS.iter().enumerate() {
            let mut cell = Cell {
                strategy,
                tier,
                cycles: 0.0,
                prov: [0.0; Provenance::COUNT],
                penalty: [0.0; 3],
            };
            for w in sfi_workloads::faas() {
                let mut cm = compile_workload(&w, strategy, false);
                if t == 1 {
                    cm = sfi_core::compile(
                        &w.module(),
                        &cm.config.clone().optimized(),
                    )
                    .expect("optimized tier compiles");
                }
                let m = run_compiled(&w, &cm);
                assert_eq!(
                    m.stats.cycles.to_bits(),
                    m.stats.attributed_cycles().to_bits(),
                    "{} under {strategy}/{tier}: buckets must sum to the cycle total bit-for-bit",
                    w.name
                );
                cell.cycles += m.stats.cycles;
                for (i, c) in m.stats.prov_cycles.iter().enumerate() {
                    cell.prov[i] += c;
                }
                cell.penalty[0] += m.stats.icache_penalty_cycles;
                cell.penalty[1] += m.stats.dcache_penalty_cycles;
                cell.penalty[2] += m.stats.branch_penalty_cycles;
            }
            cells.push(cell);
        }
    }
    cells
}

/// Folds the matrix into flamegraph input: one stack per non-zero bucket,
/// rooted `strategy;tier;provenance` (penalties under `…;penalty;kind`).
fn fold_matrix(cells: &[Cell]) -> FoldedStacks {
    let mut folded = FoldedStacks::new();
    for cell in cells {
        for (p, cycles) in Provenance::ALL.iter().zip(&cell.prov) {
            if *cycles > 0.0 {
                folded.add(&[cell.strategy.name(), cell.tier, p.name()], cycles.round() as u64);
            }
        }
        for (name, cycles) in PENALTY_NAMES.iter().zip(&cell.penalty) {
            if *cycles > 0.0 {
                folded.add(&[cell.strategy.name(), cell.tier, "penalty", name], cycles.round() as u64);
            }
        }
    }
    folded
}

/// Drives each strategy through the pooled runtime — cold spawn plus four
/// invocations of each fig6 kernel — and returns the raw per-strategy
/// `(strategy, transition_cycles, total_cycles)` triples plus the final
/// runtime registry snapshot (profile counters included). The share is
/// `transition / total`.
fn transition_shares() -> (Vec<(Strategy, f64, f64)>, String) {
    // FaaS-granularity instances of the fig6 kernels: short enough that
    // the per-invoke transition protocol is a visible share of the total
    // (the population the near-zero-cost-transitions work targets).
    let hot = [
        sfi_workloads::kernels::hash_lb(100, 128, 1),
        sfi_workloads::kernels::regex_filter(500, 1),
        sfi_workloads::kernels::html_template(400, 1),
    ];
    let mut rt = Runtime::new(RuntimeConfig::small_test(true)).expect("runtime");
    let mut engine = Engine::new(64);
    let mut shares = Vec::new();
    for strategy in PROFILED {
        let (mut transition, mut total) = (0.0f64, 0.0f64);
        for wat in &hot {
            let module = sfi_wasm::wat::parse(wat).expect("kernel parses");
            let cfg = CompilerConfig::for_strategy(strategy);
            let id = rt.spawn(&mut engine, &module, &cfg).expect("spawn");
            for _ in 0..4 {
                let out = rt.invoke(id, "run", &[]).expect("runs");
                let b = out.breakdown;
                assert_eq!(
                    b.guest_cycles().to_bits(),
                    out.stats.cycles.to_bits(),
                    "{strategy}: breakdown must match the emulator total bit-for-bit"
                );
                transition += b.transition_cycles;
                total += b.total_cycles();
            }
            rt.terminate(id).expect("terminate");
        }
        shares.push((strategy, transition, total));
    }
    (shares, json_snapshot(rt.telemetry().registry()))
}

/// Builds the entire artifact. Pure function of the (fixed) inputs — the
/// determinism gate calls it twice and byte-compares.
fn build_report() -> String {
    let cells = build_matrix();
    let folded = fold_matrix(&cells);
    let (shares, telemetry) = transition_shares();

    let mut rows_json = Vec::new();
    for cell in &cells {
        let prov = Provenance::ALL
            .iter()
            .zip(&cell.prov)
            .map(|(p, c)| format!("\"{}\": {c:.3}", p.name()))
            .collect::<Vec<_>>()
            .join(", ");
        let pen = PENALTY_NAMES
            .iter()
            .zip(&cell.penalty)
            .map(|(n, c)| format!("\"{n}\": {c:.3}"))
            .collect::<Vec<_>>()
            .join(", ");
        rows_json.push(format!(
            "    {{\"strategy\": \"{}\", \"tier\": \"{}\", \"cycles\": {:.3}, \
             \"provenance\": {{{prov}}}, \"penalty\": {{{pen}}}}}",
            cell.strategy.name(),
            cell.tier,
            cell.cycles,
        ));
    }
    let shares_json = shares
        .iter()
        .map(|(s, tr, tot)| format!("\"{}\": {:.4}", s.name(), tr / tot))
        .collect::<Vec<_>>()
        .join(", ");
    let folded_json = folded
        .render()
        .lines()
        .map(|l| format!("\"{}\"", l.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect::<Vec<_>>()
        .join(",\n    ");
    format!(
        "{{\n  \"bench\": \"figX_profile\",\n  \"matrix\": [\n{}\n  ],\n  \
         \"transition_share\": {{{shares_json}}},\n  \"profile\": [\n    {folded_json}\n  ],\n  \
         \"telemetry\": {telemetry}\n}}\n",
        rows_json.join(",\n"),
    )
}

/// The spans-on/off observer-effect rig: the fig6 hash workload on the
/// ColorGuard warm path, big enough that every span level fires.
fn span_rig(trace_capacity: usize, spans: bool) -> MultiCoreConfig {
    let mut cfg = MultiCoreConfig::paper_rig(
        FaasWorkload::HashLoadBalance,
        ScalingMode::ColorGuard,
        CacheMode::Warm,
        4,
    );
    cfg.duration_ms = 200;
    cfg.trace_capacity = trace_capacity;
    cfg.spans = spans;
    cfg
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    println!("Figure X (profile): cycle attribution by provenance, strategy and tier\n");

    let cells = build_matrix();
    let widths = [14, 10, 12, 8, 8, 8, 8, 8, 9];
    row(
        &[
            "strategy".into(),
            "tier".into(),
            "cycles".into(),
            "guest".into(),
            "guard".into(),
            "addr".into(),
            "trunc".into(),
            "glue".into(),
            "penalty".into(),
        ],
        &widths,
    );
    for cell in &cells {
        let pctof = |c: f64| format!("{:.1}%", 100.0 * c / cell.cycles);
        row(
            &[
                cell.strategy.name().into(),
                cell.tier.into(),
                format!("{:.0}", cell.cycles),
                pctof(cell.prov[Provenance::GuestCompute.index()]),
                pctof(cell.prov[Provenance::BoundsGuard.index()]),
                pctof(cell.prov[Provenance::SegueAddressing.index()]),
                pctof(cell.prov[Provenance::Truncation.index()]),
                pctof(cell.prov[Provenance::TransitionGlue.index()]),
                pctof(cell.penalty.iter().sum()),
            ],
            &widths,
        );
    }

    let (shares, _) = transition_shares();
    println!("\npooled runtime: transition-cycle share of total attributed cycles\n");
    let widths2 = [14, 10];
    row(&["strategy".into(), "share".into()], &widths2);
    for (s, tr, tot) in &shares {
        row(&[s.name().into(), format!("{:.2}%", tr / tot * 100.0)], &widths2);
    }

    let report = build_report();
    assert!(json_is_valid(&report), "BENCH_profile.json must be valid JSON");
    std::fs::write("BENCH_profile.json", &report).expect("write BENCH_profile.json");
    println!("\nwrote BENCH_profile.json");

    if !check {
        return;
    }

    // ---- Gate 1: exact attribution ---------------------------------------
    // build_matrix asserted `cycles == attributed_cycles()` bit-for-bit on
    // every underlying run; summarize the coverage here.
    println!(
        "\n[check] attribution exact: {} cells × {} modules, buckets sum bit-for-bit ✓",
        cells.len(),
        sfi_workloads::faas().len()
    );

    // ---- Gate 2: determinism ---------------------------------------------
    let rerun = build_report();
    assert_eq!(report, rerun, "rebuilding BENCH_profile.json must be byte-identical");
    println!("[check] artifact deterministic: rebuild byte-identical ✓");

    // ---- Gate 3: zero observer effect ------------------------------------
    // Request spans change no benchmark result field: the only new series
    // is `sfi_shard_span_events_total`, and that lives in the telemetry
    // export, not in the report.
    let off = simulate_multicore(&span_rig(65_536, false));
    let on = simulate_multicore(&span_rig(65_536, true));
    assert_eq!(off.offered, on.offered);
    assert_eq!(off.completed, on.completed);
    assert_eq!(off.throughput_rps.to_bits(), on.throughput_rps.to_bits());
    assert_eq!(off.mean_latency_ms.to_bits(), on.mean_latency_ms.to_bits());
    assert_eq!(off.p99_latency_ms.to_bits(), on.p99_latency_ms.to_bits());
    assert_eq!(off.occupancy.to_bits(), on.occupancy.to_bits());
    assert_eq!(off.totals, on.totals);
    assert_eq!(off.per_core, on.per_core);
    assert_eq!(off.latency_per_core, on.latency_per_core);
    assert!(on.completed > 0, "the rig must complete work");
    println!("[check] spans on vs off: every benchmark result field identical ✓");

    // ---- Gate 4: self-overhead -------------------------------------------
    let time = |capacity: usize, spans: bool| {
        (0..3)
            .map(|_| {
                let cfg = span_rig(capacity, spans);
                let t0 = Instant::now();
                let r = simulate_multicore(&cfg);
                assert!(r.completed > 0);
                t0.elapsed()
            })
            .min()
            .expect("three timed runs")
    };
    // Profiler on vs profiler off at the production ring size (512, the
    // paper_rig default) — tracing's own cost is budgeted separately by
    // the §8 gate in figX_multicore.
    let off_t = time(512, false);
    let on_t = time(512, true);
    let factor = on_t.as_secs_f64() / off_t.as_secs_f64().max(1e-9);
    assert!(
        factor <= OVERHEAD_BUDGET,
        "profiler self-overhead {factor:.2}x exceeds the {OVERHEAD_BUDGET:.2}x budget \
         (on {on_t:?} vs off {off_t:?})"
    );
    println!(
        "[check] self-overhead {factor:.2}x (budget {OVERHEAD_BUDGET:.2}x, spans + exemplars vs profiler off) ✓"
    );

    // ---- Gate 5: the calibration record ----------------------------------
    // The drift-watch value flows through the telemetry plane itself: a
    // per-strategy RatioPermille recording rule over the raw profiler
    // counters in a scratch tsdb, verified here against the direct
    // computation. CI's awk comparison against the DESIGN.md §14 record
    // stays as the grep fallback (drift > 25% fails).
    let mut tsdb = Tsdb::new(8, 64);
    let mut rules = AlertEngine::new(16);
    for (s, _, _) in &shares {
        rules.add_recording(RecordingRule {
            record: "sfi_profile_transition_share_permille",
            labels: vec![("strategy", s.name().to_owned())],
            source: RuleSource::RatioPermille {
                num: format!(
                    "increase(sfi_profile_transition_cycles_total{{strategy=\"{}\"}}[2r])",
                    s.name()
                ),
                den: format!(
                    "increase(sfi_profile_attributed_cycles_total{{strategy=\"{}\"}}[2r])",
                    s.name()
                ),
            },
        });
    }
    for round in 1..=2u64 {
        // Round 1 is the zero baseline; round 2 carries the cumulative
        // cycle counters, so increase[2r] is exactly the per-strategy run.
        let scale = (round - 1) as f64;
        for (s, tr, tot) in &shares {
            tsdb.store_counter(
                &format!("sfi_profile_transition_cycles_total{{strategy=\"{}\"}}", s.name()),
                round,
                (tr * scale).round() as u64,
            );
            tsdb.store_counter(
                &format!("sfi_profile_attributed_cycles_total{{strategy=\"{}\"}}", s.name()),
                round,
                (tot * scale).round() as u64,
            );
        }
        rules.evaluate(round, &mut tsdb);
    }
    for (s, tr, tot) in &shares {
        let sel = format!("sfi_profile_transition_share_permille{{strategy=\"{}\"}}", s.name());
        let rows = tsdb.latest(&Selector::parse(&sel).expect("share selector"));
        assert_eq!(rows.len(), 1, "{}: recording rule must publish one series", s.name());
        let direct = 1000.0 * tr / tot;
        assert!(
            (rows[0].1 - direct).abs() <= 1.0,
            "{}: recorded share {} vs direct {direct:.3} permille",
            s.name(),
            rows[0].1
        );
    }
    println!("[check] transition shares recomputed by recording rules agree (±1 permille) ✓");
    let line = shares
        .iter()
        .map(|(s, tr, tot)| format!("{}={}", s.name(), (tr / tot * 10_000.0).round() as u64))
        .collect::<Vec<_>>()
        .join(" ");
    println!("[check] calibration: profile transition_share_bp {line}");
    println!("\nfigX_profile --check: all gates passed");
}
