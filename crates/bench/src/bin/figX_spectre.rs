//! Figure X (spectre): the security-vs-speed frontier of the strategy ×
//! mitigation matrix.
//!
//! Three views, all emitted into `BENCH_spectre.json`:
//!
//! 1. **Leak matrix** — the attacker-gadget corpus swept through every
//!    protected strategy × [`MitigationLevel`] cell under the bounded
//!    speculation window, reporting per-cell leak counts. Declared-safe
//!    cells (DESIGN.md §16) must measure zero.
//! 2. **Mitigation overhead** — architectural cycle cost of each level
//!    vs `None` on the fig6 FaaS hot modules (geomean per strategy, plus
//!    per-module deltas under Segue).
//! 3. **Runtime telemetry** — one gadget invocation per mitigation level
//!    through the runtime, embedding the `sfi_spec_*` series.
//!
//! `--check` additionally runs the security gates:
//!
//! 1. every declared-safe cell is leak-free over the full gadget corpus,
//! 2. ≥2 distinct leak classes reproduce under unmitigated Segue,
//! 3. 500 seeded genprog gadgets sweep clean at every declared-safe cell,
//! 4. lfence is the costliest mitigation under every strategy, and
//! 5. the whole artifact is byte-identical when re-measured (same-seed
//!    determinism), as are recompiled gadget images.

use sfi_bench::{config_for, geomean, row, run_compiled};
use sfi_core::harness::speculative_check;
use sfi_core::{compile, CompilerConfig, MitigationLevel, Strategy};
use sfi_runtime::{Engine, Runtime, RuntimeConfig};
use sfi_telemetry::json_snapshot;
use sfi_workloads::{gadgets, genprog};

/// The six protected strategies (Native sandboxes nothing and is never
/// declared safe; `speculative_check` skips it).
const PROTECTED: [Strategy; 6] = [
    Strategy::GuardRegion,
    Strategy::Segue,
    Strategy::SegueLoads,
    Strategy::BoundsCheck,
    Strategy::BoundsCheckSegue,
    Strategy::Masking,
];

/// One full deterministic measurement pass: returns the rendered JSON
/// artifact. `--check` calls it twice and requires byte equality.
fn measure() -> String {
    // ---- Part 1: leak matrix over the gadget corpus ----------------------
    let mut matrix_json = Vec::new();
    let mut totals = vec![[0u64; MitigationLevel::ALL.len()]; PROTECTED.len()];
    let mut segue_none_by_gadget = Vec::new();
    for w in gadgets::gadgets() {
        let module = w.module();
        for (strategy, level, leaked) in speculative_check(&module, "run", &[]) {
            let si = PROTECTED.iter().position(|&s| s == strategy).expect("protected");
            let li = MitigationLevel::ALL.iter().position(|&l| l == level).expect("level");
            totals[si][li] += leaked;
            if strategy == Strategy::Segue && level == MitigationLevel::None {
                segue_none_by_gadget.push((w.name, leaked));
            }
            matrix_json.push(format!(
                "    {{\"gadget\": \"{}\", \"strategy\": \"{}\", \"level\": \"{}\", \
                 \"declared_safe\": {}, \"leaks\": {leaked}}}",
                w.name,
                strategy.name(),
                level.name(),
                level.declared_safe(strategy),
            ));
        }
    }

    let widths = [18, 12, 12, 12, 12];
    println!("leak matrix: corpus-total transient leaks per strategy × mitigation\n");
    let mut header = vec!["strategy".to_owned()];
    header.extend(MitigationLevel::ALL.iter().map(|l| l.name().to_owned()));
    row(&header, &widths);
    for (si, strategy) in PROTECTED.iter().enumerate() {
        let mut cells = vec![strategy.name().to_owned()];
        for (li, level) in MitigationLevel::ALL.iter().enumerate() {
            let safe = if level.declared_safe(*strategy) { " ✓safe" } else { "" };
            cells.push(format!("{}{safe}", totals[si][li]));
        }
        row(&cells, &widths);
    }

    // ---- Part 2: mitigation overhead on the fig6 hot modules -------------
    println!("\nmitigation overhead: geomean cycles vs None on the fig6 hot modules\n");
    let widths2 = [18, 10, 10, 12];
    row(
        &["strategy".into(), "lfence".into(), "slh".into(), "index-mask".into()],
        &widths2,
    );
    let faas = sfi_workloads::faas();
    let mut overhead_json = Vec::new();
    let mut deltas_json = Vec::new();
    let mut lfence_costliest = true;
    for strategy in PROTECTED {
        let mut geomeans = [0.0f64; MitigationLevel::ALL.len()];
        for (li, level) in MitigationLevel::ALL.iter().enumerate() {
            let mut cycles = Vec::new();
            for w in &faas {
                let module = w.module();
                let cfg = config_for(strategy, module.mem_min_pages, false).mitigated(*level);
                let cm = compile(&module, &cfg).expect("compiles");
                let m = run_compiled(w, &cm);
                if strategy == Strategy::Segue {
                    deltas_json.push((w.name, *level, m.cycles));
                }
                cycles.push(m.cycles);
            }
            geomeans[li] = geomean(&cycles);
        }
        let base = geomeans[0];
        let over = |g: f64| (g / base - 1.0) * 100.0;
        row(
            &[
                strategy.name().into(),
                format!("{:+.1}%", over(geomeans[1])),
                format!("{:+.1}%", over(geomeans[2])),
                format!("{:+.1}%", over(geomeans[3])),
            ],
            &widths2,
        );
        lfence_costliest &= geomeans[1] >= geomeans[2] && geomeans[1] >= geomeans[3];
        for (li, level) in MitigationLevel::ALL.iter().enumerate() {
            overhead_json.push(format!(
                "    {{\"strategy\": \"{}\", \"level\": \"{}\", \"geomean_cycles\": {:.3}, \
                 \"overhead_percent_vs_none\": {:.3}}}",
                strategy.name(),
                level.name(),
                geomeans[li],
                over(geomeans[li]),
            ));
        }
    }
    assert!(lfence_costliest, "lfence must be the costliest mitigation everywhere");

    // Per-module Segue deltas (the fig6 population the paper's frontier
    // argument is about).
    let mut fig6_json = Vec::new();
    for w in &faas {
        let base = deltas_json
            .iter()
            .find(|(n, l, _)| *n == w.name && *l == MitigationLevel::None)
            .expect("baseline measured")
            .2;
        for (name, level, cycles) in &deltas_json {
            if *name != w.name {
                continue;
            }
            fig6_json.push(format!(
                "    {{\"module\": \"{name}\", \"level\": \"{}\", \"cycles\": {cycles:.3}, \
                 \"delta_percent\": {:.3}}}",
                level.name(),
                (cycles / base - 1.0) * 100.0,
            ));
        }
    }

    // ---- Part 3: runtime telemetry ---------------------------------------
    // One gadget invocation per mitigation level through the runtime spawn
    // path populates every `sfi_spec_mitigation_cycles_total{level=…}`
    // series; the snapshot is embedded in the artifact.
    let mut engine = Engine::new(64);
    let mut rt = Runtime::new(RuntimeConfig::small_test(true)).expect("runtime");
    let gadget = sfi_wasm::wat::parse(&gadgets::bounds_check_bypass(
        16,
        gadgets::SECRET_INDEX,
        64,
    ))
    .expect("gadget parses");
    for level in MitigationLevel::ALL {
        let cfg = CompilerConfig::for_strategy(Strategy::Segue).mitigated(level);
        let id = rt.spawn(&mut engine, &gadget, &cfg).expect("spawn");
        rt.invoke(id, "run", &[]).expect("runs");
        rt.terminate(id).expect("terminate");
    }
    let telemetry = json_snapshot(rt.telemetry().registry());

    format!(
        "{{\n  \"bench\": \"figX_spectre\",\n  \"leak_matrix\": [\n{}\n  ],\n  \
         \"mitigation_overhead\": [\n{}\n  ],\n  \"fig6_segue_deltas\": [\n{}\n  ],\n  \
         \"segue_none_leaks_by_gadget\": [\n{}\n  ],\n  \"telemetry\": {}\n}}\n",
        matrix_json.join(",\n"),
        overhead_json.join(",\n"),
        fig6_json.join(",\n"),
        segue_none_by_gadget
            .iter()
            .map(|(n, l)| format!("    {{\"gadget\": \"{n}\", \"leaks\": {l}}}"))
            .collect::<Vec<_>>()
            .join(",\n"),
        telemetry,
    )
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    println!("Figure X (spectre): speculative-leak matrix and the mitigation frontier\n");

    let json = measure();
    std::fs::write("BENCH_spectre.json", &json).expect("write BENCH_spectre.json");
    println!("\nwrote BENCH_spectre.json");

    if !check {
        return;
    }

    // ---- Gate 1 ran inside measure(): speculative_check asserts every
    // declared-safe cell is leak-free over the corpus, and the lfence-
    // costliest assertion ran per strategy.
    println!("\n[check] corpus declared-safe cells leak-free; lfence costliest ✓");

    // ---- Gate 2: ≥2 distinct leak classes under unmitigated Segue --------
    for (class, wat) in [
        ("bounds-check bypass", gadgets::bounds_check_bypass(64, gadgets::SECRET_INDEX, 64)),
        ("type confusion", gadgets::type_confusion(32, gadgets::SECRET_INDEX, 64)),
    ] {
        let m = sfi_wasm::wat::parse(&wat).expect("parses");
        let cfg = CompilerConfig::for_strategy(Strategy::Segue);
        let cm = compile(&m, &cfg).expect("compiles");
        let spec = sfi_core::harness::spec_config_for(&cm).expect("secret placement");
        let out =
            sfi_core::harness::execute_speculative(&cm, "run", &[], spec).expect("runs");
        assert!(out.stats.spec_leaks > 0, "{class} must leak under unmitigated Segue");
    }
    println!("[check] ≥2 leak classes reproduce under unmitigated Segue ✓");

    // ---- Gate 3: 500 genprog gadget seeds per declared-safe cell ---------
    // Each `speculative_check` call sweeps all 24 cells, so 500 seeds give
    // 500 gadgets per cell; the declared-safe zero-leak assertion is
    // inside the harness.
    for seed in 0..500u64 {
        let module = genprog::gadget(seed);
        speculative_check(&module, "run", &[]);
        if (seed + 1) % 100 == 0 {
            println!("[check]   genprog gadgets swept: {}/500", seed + 1);
        }
    }
    println!("[check] 500 genprog gadget seeds clean at every declared-safe cell ✓");

    // ---- Gate 4: same-seed determinism -----------------------------------
    let again = measure();
    assert_eq!(json, again, "BENCH_spectre.json must be byte-identical when re-measured");
    let gadget = sfi_wasm::wat::parse(&gadgets::bounds_check_bypass(
        64,
        gadgets::SECRET_INDEX,
        64,
    ))
    .expect("parses");
    let cfg = CompilerConfig::for_strategy(Strategy::Segue).mitigated(MitigationLevel::IndexMask);
    let a = compile(&gadget, &cfg).expect("compiles");
    let b = compile(&gadget, &cfg).expect("compiles");
    assert_eq!(
        a.image.encoded().bytes,
        b.image.encoded().bytes,
        "mitigated artifacts must be deterministic"
    );
    println!("[check] artifact byte-identical across re-measurement and recompiles ✓");
    println!("\nfigX_spectre --check: all gates passed");
}
