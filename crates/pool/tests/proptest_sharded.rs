//! Property-based verification of *sharded* pools: several per-core pools
//! carved out of one shared address space (the multi-core engine's layout),
//! driven through random allocate / deallocate / quarantine interleavings
//! with transient commit faults injected.
//!
//! Invariants, checked after every operation:
//!
//! - a slot's linear memory belongs to exactly one shard — no heap base is
//!   ever live in two pools, and live ranges never overlap;
//! - each pool's `in_use` matches the model exactly;
//! - a failed lazy commit (injected `mprotect`/`pkey_mprotect` fault) leaks
//!   nothing: after draining quarantines, allocate-until-exhausted yields
//!   precisely `capacity − retired` slots per shard.

use proptest::prelude::*;
use sfi_pool::{MemoryPool, PoolConfig, PoolError, SlotHandle};
use sfi_vm::{AddressSpace, FaultPlan, SyscallKind};

const WASM_PAGE: u64 = 65536;
const SHARDS: usize = 3;

fn shard_config(slots: u64, pkeys: u8) -> PoolConfig {
    PoolConfig {
        num_slots: slots,
        max_memory_bytes: WASM_PAGE,
        expected_slot_bytes: 2 * WASM_PAGE,
        guard_bytes: WASM_PAGE,
        guard_before_slots: true,
        num_pkeys_available: pkeys,
        total_memory_bytes: 1 << 40,
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Allocate from shard `.0`.
    Allocate(u8),
    /// Deallocate the `.1`-th live slot of shard `.0`.
    Deallocate(u8, u8),
    /// Quarantine (fault) the `.1`-th live slot of shard `.0`.
    Quarantine(u8, u8),
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u8..3, 0u8..SHARDS as u8, any::<u8>()).prop_map(|(op, s, k)| match op {
            0 => Op::Allocate(s),
            1 => Op::Deallocate(s, k),
            _ => Op::Quarantine(s, k),
        }),
        1..100,
    )
}

/// Checks the cross-shard exclusivity invariant: every live handle's range
/// is inside its own shard and disjoint from every other live range.
fn check_exclusive(pools: &[MemoryPool], live: &[Vec<SlotHandle>]) -> Result<(), TestCaseError> {
    let mut ranges: Vec<(u64, u64, usize)> = Vec::new();
    for (s, handles) in live.iter().enumerate() {
        for h in handles {
            prop_assert_eq!(
                pools[s].slot_base(h.index),
                h.heap_base,
                "shard {}'s handle {:?} does not map into its own slab",
                s,
                h
            );
            ranges.push((h.heap_base, h.heap_base + WASM_PAGE, s));
        }
    }
    ranges.sort_unstable();
    for w in ranges.windows(2) {
        prop_assert!(
            w[0].1 <= w[1].0,
            "live slots overlap: {:?} (shard {}) and {:?} (shard {})",
            (w[0].0, w[0].1),
            w[0].2,
            (w[1].0, w[1].1),
            w[1].2
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The sharded-pool state machine: any interleaving, with transient
    /// commit faults, preserves exclusivity and leaks nothing.
    #[test]
    fn sharded_pools_share_a_space_without_leaks_or_overlap(
        ops in ops_strategy(),
        slots_per_shard in 2u64..6,
        pkeys in (0u8..3).prop_map(|i| [0u8, 2, 4][i as usize]),
        fault_mprotect in 1u64..60,
        fault_pkey in 1u64..60,
    ) {
        let mut space = AddressSpace::new_48bit();
        // Lazy commit so allocation exercises the commit-fault path.
        let mut pools: Vec<MemoryPool> = (0..SHARDS)
            .map(|_| {
                MemoryPool::create_with(&mut space, &shard_config(slots_per_shard, pkeys), false)
                    .expect("shard creation")
            })
            .collect();
        // Transient faults: the nth mprotect / pkey_mprotect fails, once.
        space.set_fault_plan(Some(
            FaultPlan::new()
                .fail_at(SyscallKind::Mprotect, fault_mprotect)
                .fail_at(SyscallKind::PkeyMprotect, fault_pkey),
        ));

        let mut live: Vec<Vec<SlotHandle>> = vec![Vec::new(); SHARDS];

        for op in ops {
            match op {
                Op::Allocate(s) => {
                    let s = s as usize;
                    let before = pools[s].in_use();
                    match pools[s].allocate(&mut space) {
                        Ok(h) => live[s].push(h),
                        Err(PoolError::Exhausted) => {
                            prop_assert!(pools[s].in_use() == before, "failed allocate must not move in_use");
                        }
                        Err(PoolError::Map(_)) => {
                            // Injected commit fault: the slot must return to
                            // the free list (checked by the final drain).
                            prop_assert_eq!(pools[s].in_use(), before, "faulted commit must not leak");
                        }
                        Err(e) => prop_assert!(false, "unexpected allocate error: {e}"),
                    }
                }
                Op::Deallocate(s, k) => {
                    let s = s as usize;
                    if live[s].is_empty() { continue; }
                    let i = k as usize % live[s].len();
                    let h = live[s].remove(i);
                    pools[s].deallocate(&mut space, h).expect("deallocate live slot");
                }
                Op::Quarantine(s, k) => {
                    let s = s as usize;
                    if live[s].is_empty() { continue; }
                    let i = k as usize % live[s].len();
                    let h = live[s].remove(i);
                    // Quarantined or Retired — both take the slot out of the
                    // live set; neither may error for a live handle.
                    pools[s].quarantine(&mut space, h).expect("quarantine live slot");
                }
            }
            for (s, pool) in pools.iter().enumerate() {
                prop_assert_eq!(pool.in_use(), live[s].len() as u64, "shard {} in_use", s);
            }
            check_exclusive(&pools, &live)?;
        }

        // Leak accounting: clear faults, return everything, then drain every
        // shard to exactly capacity − retired.
        space.set_fault_plan(None);
        for (s, pool) in pools.iter_mut().enumerate() {
            for h in live[s].drain(..) {
                pool.deallocate(&mut space, h).expect("final deallocate");
            }
            pool.drain_quarantine(&mut space);
            let mut drained = 0u64;
            while pool.allocate(&mut space).is_ok() {
                drained += 1;
            }
            prop_assert_eq!(
                drained,
                pool.capacity() - pool.retired() as u64,
                "shard {} must drain to capacity − retired (nothing leaked)",
                s
            );
        }
    }
}
