//! Property-based verification of the layout contract: for *any* input the
//! fixed allocator either refuses or produces a layout satisfying all ten
//! Table 1 invariants — the paper's §5.2 attacker model ("called with
//! potentially unaligned, unsafe, or otherwise incorrect inputs").

use proptest::prelude::*;
use sfi_pool::invariants::check;
use sfi_pool::{compute_layout, PoolConfig, WASM_PAGE_SIZE};

fn config_strategy() -> impl Strategy<Value = PoolConfig> {
    (
        1u64..1000,
        0u64..64,          // max memory in wasm pages
        0u64..512,         // expected slot in wasm pages
        0u64..1024,        // guard in wasm pages
        any::<bool>(),
        0u8..=16,
        30u64..48,         // log2 of total budget
        // Raw byte jitter to generate unaligned values too.
        0u64..65536,
        0u64..65536,
        0u64..65536,
    )
        .prop_map(
            |(slots, mem_p, slot_p, guard_p, pre, keys, budget_log, j1, j2, j3)| PoolConfig {
                num_slots: slots,
                max_memory_bytes: mem_p * WASM_PAGE_SIZE + j1,
                expected_slot_bytes: slot_p * WASM_PAGE_SIZE + j2,
                guard_bytes: guard_p * WASM_PAGE_SIZE + j3,
                guard_before_slots: pre,
                num_pkeys_available: keys.min(15),
                total_memory_bytes: 1u64 << budget_log,
            },
        )
}

fn aligned_config_strategy() -> impl Strategy<Value = PoolConfig> {
    config_strategy().prop_map(|mut c| {
        c.max_memory_bytes = c.max_memory_bytes / WASM_PAGE_SIZE * WASM_PAGE_SIZE;
        c.expected_slot_bytes = c.expected_slot_bytes / WASM_PAGE_SIZE * WASM_PAGE_SIZE;
        c.guard_bytes = c.guard_bytes / WASM_PAGE_SIZE * WASM_PAGE_SIZE;
        c
    })
}

proptest! {
    #[test]
    fn accepted_layouts_satisfy_every_invariant(cfg in config_strategy()) {
        if let Ok(layout) = compute_layout(&cfg) {
            let violated = check(&cfg, &layout);
            prop_assert!(violated.is_empty(), "{cfg:?} → {layout:?} violates {violated:?}");
        }
    }

    #[test]
    fn aligned_reasonable_configs_are_accepted(cfg in aligned_config_strategy()) {
        // Well-formed inputs with room in the budget must not be refused
        // (no false rejections — the allocator is defensive, not paranoid).
        prop_assume!(cfg.expected_slot_bytes >= cfg.max_memory_bytes);
        prop_assume!(cfg.expected_slot_bytes > 0);
        prop_assume!(
            cfg.total_memory_bytes / 4 > cfg.expected_slot_bytes + 2 * cfg.guard_bytes
        );
        let layout = compute_layout(&cfg);
        prop_assert!(layout.is_ok(), "{cfg:?} → {layout:?}");
    }

    #[test]
    fn striping_never_loses_capacity(cfg in aligned_config_strategy()) {
        prop_assume!(cfg.expected_slot_bytes >= cfg.max_memory_bytes.max(WASM_PAGE_SIZE));
        prop_assume!(cfg.total_memory_bytes / 4 > cfg.expected_slot_bytes + 2 * cfg.guard_bytes);
        let mut no_keys = cfg;
        no_keys.num_pkeys_available = 0;
        let mut full_keys = cfg;
        full_keys.num_pkeys_available = 15;
        if let (Ok(plain), Ok(striped)) =
            (compute_layout(&no_keys), compute_layout(&full_keys))
        {
            prop_assert!(
                striped.num_slots >= plain.num_slots,
                "striping shrank capacity: {plain:?} → {striped:?}"
            );
        }
    }

    #[test]
    fn slots_never_overlap(cfg in aligned_config_strategy()) {
        if let Ok(layout) = compute_layout(&cfg) {
            let n = layout.num_slots.min(16);
            for i in 0..n {
                for j in (i + 1)..n {
                    let (a, b) = (layout.slot_offset(i), layout.slot_offset(j));
                    prop_assert!(
                        a + layout.max_memory_bytes <= b || b + layout.max_memory_bytes <= a,
                        "slots {i} and {j} overlap in {layout:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn adjacent_slots_use_different_stripes(cfg in aligned_config_strategy()) {
        if let Ok(layout) = compute_layout(&cfg) {
            if layout.num_stripes > 1 {
                for i in 0..layout.num_slots.min(32).saturating_sub(1) {
                    prop_assert_ne!(layout.stripe_of(i), layout.stripe_of(i + 1));
                }
            }
        }
    }
}

proptest! {
    #[test]
    fn chains_always_satisfy_the_safety_condition(
        sizes in proptest::collection::vec(1u64..8, 1..60),
        stripes in 2u8..=15,
        reach_pages in 2u64..64,
    ) {
        let sizes: Vec<u64> = sizes.iter().map(|s| s * WASM_PAGE_SIZE).collect();
        let chain = sfi_pool::chain::Chain::pack(&sizes, stripes, reach_pages * WASM_PAGE_SIZE)
            .expect("aligned sizes pack");
        prop_assert_eq!(chain.check(), None, "{:?}", chain);
        prop_assert_eq!(chain.slots().len(), sizes.len());
        // More stripes never hurts density.
        if stripes < 15 {
            let more = sfi_pool::chain::Chain::pack(
                &sizes,
                15,
                reach_pages * WASM_PAGE_SIZE,
            )
            .expect("packs");
            prop_assert!(more.total_bytes() <= chain.total_bytes());
        }
    }
}
