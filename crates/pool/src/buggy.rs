//! The pre-verification allocator: the upstream code as reviewed, fuzzed —
//! and still wrong (§5.2).
//!
//! Two defects are preserved here on purpose, so that [`crate::verify`] can
//! rediscover what the paper's Flux verification found:
//!
//! 1. **The saturating-add bug**: slab sizing uses `saturating_add` where a
//!    checked add was required. When the addition actually saturates, the
//!    computed layout no longer satisfies invariant 1 (exact accounting) —
//!    the slots the compiler assumes and the slab the runtime maps diverge.
//! 2. **The four missing preconditions** (Table 1, invariants 7–10): the
//!    function accepts unaligned slot/memory/guard sizes and slots larger
//!    than the budget, producing layouts that break page-alignment or
//!    budget invariants.

use crate::layout::{compute_layout_unchecked, LayoutError, PoolConfig, SlotLayout};

/// Computes a slot layout *without* the verified preconditions and *with*
/// saturating arithmetic — the upstream behaviour before the fixes.
pub fn compute_layout(cfg: &PoolConfig) -> Result<SlotLayout, LayoutError> {
    // No precondition checks (invariants 7–10 unenforced), saturating math.
    compute_layout_unchecked::<false>(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariants::{check, Invariant};
    use crate::WASM_PAGE_SIZE;

    #[test]
    fn buggy_accepts_what_fixed_rejects() {
        // Unaligned memory limit: fixed refuses, buggy computes a layout
        // that violates the alignment invariants.
        let cfg = PoolConfig {
            num_slots: 4,
            max_memory_bytes: WASM_PAGE_SIZE + 4096,
            expected_slot_bytes: 8 * WASM_PAGE_SIZE,
            guard_bytes: 8 * WASM_PAGE_SIZE,
            guard_before_slots: true,
            num_pkeys_available: 15,
            total_memory_bytes: 1 << 30,
        };
        assert!(crate::layout::compute_layout(&cfg).is_err());
        let l = compute_layout(&cfg).expect("buggy version accepts it");
        let v = check(&cfg, &l);
        assert!(v.contains(&Invariant::MemoryWasmPageAligned), "{v:?}");
    }

    #[test]
    fn saturating_add_breaks_accounting() {
        // Near-overflow sizes: the saturated span silently truncates.
        let cfg = PoolConfig {
            num_slots: 2,
            max_memory_bytes: WASM_PAGE_SIZE,
            expected_slot_bytes: u64::MAX / WASM_PAGE_SIZE * WASM_PAGE_SIZE,
            guard_bytes: 8 * WASM_PAGE_SIZE,
            guard_before_slots: false,
            num_pkeys_available: 0,
            total_memory_bytes: u64::MAX,
        };
        assert!(crate::layout::compute_layout(&cfg).is_err(), "the fixed version refuses");
        // With the budget check also missing upstream, force the math path:
        let mut cfg2 = cfg;
        cfg2.total_memory_bytes = u64::MAX;
        match compute_layout(&cfg2) {
            Ok(l) => {
                let v = check(&cfg2, &l);
                assert!(
                    v.contains(&Invariant::TotalAccounting)
                        || v.contains(&Invariant::StripeProtection)
                        || v.contains(&Invariant::FitsBudget)
                        || v.contains(&Invariant::SlotHoldsMemory),
                    "saturation must break an invariant: {v:?} / {l:?}"
                );
            }
            Err(e) => panic!("buggy version should not notice the overflow: {e}"),
        }
    }
}
