//! The runtime pooling allocator: slabs, stripes and instance slots on top
//! of the `sfi-vm` address space.
//!
//! Mirrors the Wasmtime flow ColorGuard instruments (§5.1): the pool
//! `mmap`s one large slab at startup, carves it into slots per the computed
//! [`SlotLayout`], colors each slot's memory with `pkey_mprotect`, and
//! recycles finished slots with `madvise(MADV_DONTNEED)` — which keeps MPK
//! colors (they live in PTEs), so recycling needs no re-striping.
//!
//! Slots whose sandbox *trapped* take the crash-containment path instead:
//! [`MemoryPool::quarantine`] scrubs the slot, fences it `PROT_NONE`, and
//! parks it in a FIFO quarantine ring. A slot leaves the ring only through a
//! deterministic teardown (re-commit, re-apply its stripe color, scrub
//! again); a slot that faults [`QuarantinePolicy::max_faults`] times is
//! retired and never returned to circulation.

use std::collections::VecDeque;

use sfi_vm::{AddressSpace, MapError, Prot};

use crate::layout::{compute_layout, LayoutError, PoolConfig, SlotLayout};

/// An allocated instance slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotHandle {
    /// Slot index within the pool.
    pub index: u64,
    /// Virtual address of the slot's linear memory.
    pub heap_base: u64,
    /// The MPK key protecting this slot (0 when striping is off).
    pub pkey: u8,
}

/// Pool failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PoolError {
    /// Layout computation failed.
    Layout(LayoutError),
    /// An address-space operation failed.
    Map(MapError),
    /// All slots are in use.
    Exhausted,
    /// Not enough MPK keys could be allocated.
    KeysUnavailable,
    /// The handle does not belong to this pool or is already free.
    BadHandle,
}

impl core::fmt::Display for PoolError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PoolError::Layout(e) => write!(f, "layout: {e}"),
            PoolError::Map(e) => write!(f, "mapping: {e}"),
            PoolError::Exhausted => f.write_str("pool exhausted"),
            PoolError::KeysUnavailable => f.write_str("not enough protection keys"),
            PoolError::BadHandle => f.write_str("bad slot handle"),
        }
    }
}

impl std::error::Error for PoolError {}

impl From<LayoutError> for PoolError {
    fn from(e: LayoutError) -> Self {
        PoolError::Layout(e)
    }
}

impl From<MapError> for PoolError {
    fn from(e: MapError) -> Self {
        PoolError::Map(e)
    }
}

/// Policy governing the crash-containment path.
///
/// The same budget is applied at two scales: inside an engine it retires
/// an instance slot, and `sfi-faas::FleetSupervisor` reuses it verbatim as
/// the engine-level escalation — a member whose lifetime fault count
/// reaches `max_faults` is retired from the fleet (DESIGN.md §11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantinePolicy {
    /// Quarantined slots the ring holds before the oldest is rehabilitated
    /// back to the free list. `0` rehabilitates immediately.
    pub ring_capacity: usize,
    /// Lifetime fault count at which a slot is retired for good.
    pub max_faults: u32,
}

impl Default for QuarantinePolicy {
    fn default() -> Self {
        QuarantinePolicy { ring_capacity: 2, max_faults: 3 }
    }
}

/// Lifetime counters for the crash-containment path, scraped by the
/// telemetry layer (quarantine-ring depth and retirement rate are the
/// observable cost of containment).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuarantineStats {
    /// Slots that entered the quarantine ring.
    pub quarantines: u64,
    /// Slots rehabilitated from the ring back to circulation.
    pub rehabilitations: u64,
    /// Slots permanently retired (fault budget exhausted or scrub failed).
    pub retirements: u64,
    /// High-water mark of the quarantine ring's occupancy.
    pub peak_quarantined: usize,
}

/// What [`MemoryPool::quarantine`] did with the slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineOutcome {
    /// The slot entered the quarantine ring and will eventually circulate
    /// again.
    Quarantined,
    /// The slot hit its fault budget (or could not be scrubbed) and is
    /// permanently out of circulation.
    Retired,
}

/// The pooling allocator.
#[derive(Debug)]
pub struct MemoryPool {
    layout: SlotLayout,
    slab_base: u64,
    /// MPK key per stripe index (empty when striping is off).
    stripe_keys: Vec<u8>,
    free: Vec<u64>,
    in_use: u64,
    /// Whether slot memory is eagerly committed+colored (done at creation,
    /// so recycling never re-stripes — the MPK advantage of §7 Obs. 2).
    eager_commit: bool,
    /// FIFO ring of faulted slots awaiting rehabilitation.
    quarantine: VecDeque<u64>,
    /// Lifetime fault count per slot.
    faults: Vec<u32>,
    /// Slots permanently removed from circulation.
    retired: Vec<u64>,
    policy: QuarantinePolicy,
    stats: QuarantineStats,
}

impl MemoryPool {
    /// Creates a pool in `space` per `cfg`, reserving the slab, committing
    /// slot memories, and striping them with freshly allocated MPK keys.
    pub fn create(space: &mut AddressSpace, cfg: &PoolConfig) -> Result<MemoryPool, PoolError> {
        Self::create_with(space, cfg, true)
    }

    /// Like [`MemoryPool::create`], but allows lazy commit (slots are
    /// committed and colored on first allocation) — needed when creating
    /// hundreds of thousands of slots where eager commit would exceed
    /// `vm.max_map_count` before it is raised.
    pub fn create_with(
        space: &mut AddressSpace,
        cfg: &PoolConfig,
        eager_commit: bool,
    ) -> Result<MemoryPool, PoolError> {
        let layout = compute_layout(cfg)?;
        let total = layout.total_slab_bytes().ok_or(PoolError::Layout(LayoutError::Overflow))?;
        let slab_base = space.mmap(total, Prot::NONE)?;

        // Allocate one key per stripe.
        let mut stripe_keys = Vec::new();
        if layout.num_stripes > 1 {
            for _ in 0..layout.num_stripes {
                let k = space.keys.pkey_alloc().ok_or(PoolError::KeysUnavailable)?;
                stripe_keys.push(k);
            }
        }

        let pool = MemoryPool {
            layout,
            slab_base,
            stripe_keys,
            free: (0..layout.num_slots).rev().collect(),
            in_use: 0,
            eager_commit,
            quarantine: VecDeque::new(),
            faults: vec![0; layout.num_slots as usize],
            retired: Vec::new(),
            policy: QuarantinePolicy::default(),
            stats: QuarantineStats::default(),
        };
        if eager_commit {
            for i in 0..layout.num_slots {
                pool.commit_slot(space, i)?;
            }
        }
        Ok(pool)
    }

    fn commit_slot(&self, space: &mut AddressSpace, i: u64) -> Result<(), PoolError> {
        let base = self.slot_base(i);
        space.mprotect(base, self.layout.max_memory_bytes, Prot::READ_WRITE)?;
        if let Some(&key) = self.stripe_keys.get(usize::from(self.layout.stripe_of(i))) {
            space.pkey_mprotect(base, self.layout.max_memory_bytes, Prot::READ_WRITE, key)?;
        }
        Ok(())
    }

    /// The layout contract (hand this to the compiler).
    pub fn layout(&self) -> &SlotLayout {
        &self.layout
    }

    /// Slab base address.
    pub fn slab_base(&self) -> u64 {
        self.slab_base
    }

    /// Linear-memory base of slot `i`.
    pub fn slot_base(&self, i: u64) -> u64 {
        self.slab_base + self.layout.slot_offset(i)
    }

    /// The MPK key for slot `i` (0 when striping is off).
    pub fn slot_key(&self, i: u64) -> u8 {
        self.stripe_keys
            .get(usize::from(self.layout.stripe_of(i)))
            .copied()
            .unwrap_or(0)
    }

    /// Slots currently allocated.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// Total slots.
    pub fn capacity(&self) -> u64 {
        self.layout.num_slots
    }

    /// Allocates a slot.
    pub fn allocate(&mut self, space: &mut AddressSpace) -> Result<SlotHandle, PoolError> {
        let index = self.free.pop().ok_or(PoolError::Exhausted)?;
        if !self.eager_commit {
            // Failed commits (e.g. injected map faults) must not leak the
            // slot: put it back so a later attempt can retry it.
            if let Err(e) = self.commit_slot(space, index) {
                self.free.push(index);
                return Err(e);
            }
        }
        self.in_use += 1;
        Ok(SlotHandle { index, heap_base: self.slot_base(index), pkey: self.slot_key(index) })
    }

    /// Returns a slot to the pool, zeroing it with
    /// `madvise(MADV_DONTNEED)`. MPK colors survive in the PTEs; only the
    /// contents are discarded.
    pub fn deallocate(
        &mut self,
        space: &mut AddressSpace,
        handle: SlotHandle,
    ) -> Result<(), PoolError> {
        if !self.is_live(handle.index) {
            return Err(PoolError::BadHandle);
        }
        space.madvise_dontneed(self.slot_base(handle.index), self.layout.max_memory_bytes)?;
        self.free.push(handle.index);
        self.in_use -= 1;
        Ok(())
    }

    /// Whether `index` names a slot that is currently allocated (not free,
    /// quarantined or retired).
    fn is_live(&self, index: u64) -> bool {
        index < self.layout.num_slots
            && !self.free.contains(&index)
            && !self.quarantine.contains(&index)
            && !self.retired.contains(&index)
    }

    /// Sets the crash-containment policy (applies to future quarantines).
    pub fn set_quarantine_policy(&mut self, policy: QuarantinePolicy) {
        self.policy = policy;
    }

    /// The active crash-containment policy.
    pub fn quarantine_policy(&self) -> QuarantinePolicy {
        self.policy
    }

    /// Slots currently parked in the quarantine ring.
    pub fn quarantined(&self) -> usize {
        self.quarantine.len()
    }

    /// Slots permanently retired.
    pub fn retired(&self) -> usize {
        self.retired.len()
    }

    /// Lifetime fault count of slot `i`.
    pub fn fault_count(&self, i: u64) -> u32 {
        self.faults.get(i as usize).copied().unwrap_or(0)
    }

    /// Lifetime crash-containment counters.
    pub fn quarantine_stats(&self) -> QuarantineStats {
        self.stats
    }

    /// Takes a *faulted* slot out of circulation: scrubs its contents,
    /// fences the memory `PROT_NONE` (so any stale pointer into it traps),
    /// and parks it in the quarantine ring. When the ring overflows
    /// [`QuarantinePolicy::ring_capacity`], the oldest occupant is
    /// rehabilitated back to the free list.
    ///
    /// A slot that reaches [`QuarantinePolicy::max_faults`] lifetime faults
    /// is retired instead, as is a slot whose scrub/fence itself fails
    /// (e.g. under fault injection): a slot that cannot be proven clean
    /// never circulates again.
    pub fn quarantine(
        &mut self,
        space: &mut AddressSpace,
        handle: SlotHandle,
    ) -> Result<QuarantineOutcome, PoolError> {
        if !self.is_live(handle.index) {
            return Err(PoolError::BadHandle);
        }
        let i = handle.index;
        self.in_use -= 1;
        self.faults[i as usize] += 1;

        let base = self.slot_base(i);
        let scrubbed = space
            .madvise_dontneed(base, self.layout.max_memory_bytes)
            .and_then(|()| space.mprotect(base, self.layout.max_memory_bytes, Prot::NONE));

        if scrubbed.is_err() || self.faults[i as usize] >= self.policy.max_faults {
            self.retired.push(i);
            self.stats.retirements += 1;
            return Ok(QuarantineOutcome::Retired);
        }

        self.quarantine.push_back(i);
        self.stats.quarantines += 1;
        self.stats.peak_quarantined = self.stats.peak_quarantined.max(self.quarantine.len());
        while self.quarantine.len() > self.policy.ring_capacity {
            self.rehabilitate_oldest(space);
        }
        Ok(QuarantineOutcome::Quarantined)
    }

    /// Rehabilitates every quarantined slot immediately (shutdown / tests).
    pub fn drain_quarantine(&mut self, space: &mut AddressSpace) {
        while !self.quarantine.is_empty() {
            self.rehabilitate_oldest(space);
        }
    }

    /// Deterministic teardown of the oldest quarantined slot: re-commit
    /// read-write, re-apply the stripe color, scrub once more, and only then
    /// return it to the free list. If any step fails the slot is retired.
    fn rehabilitate_oldest(&mut self, space: &mut AddressSpace) {
        let Some(i) = self.quarantine.pop_front() else { return };
        let restored = self
            .commit_slot(space, i)
            .and_then(|()| {
                space
                    .madvise_dontneed(self.slot_base(i), self.layout.max_memory_bytes)
                    .map_err(PoolError::from)
            });
        if restored.is_ok() {
            self.free.push(i);
            self.stats.rehabilitations += 1;
        } else {
            self.retired.push(i);
            self.stats.retirements += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WASM_PAGE_SIZE;
    use sfi_vm::mpk::Pkru;
    use sfi_x86::emu::{AccessCtx, MemBus};
    use sfi_x86::{MemFault, Width};

    fn small_cfg() -> PoolConfig {
        PoolConfig {
            num_slots: 8,
            max_memory_bytes: WASM_PAGE_SIZE,
            expected_slot_bytes: 4 * WASM_PAGE_SIZE,
            guard_bytes: 4 * WASM_PAGE_SIZE,
            guard_before_slots: true,
            num_pkeys_available: 15,
            total_memory_bytes: 1 << 30,
        }
    }

    #[test]
    fn pool_allocates_and_recycles() {
        let mut space = AddressSpace::new_48bit();
        let mut pool = MemoryPool::create(&mut space, &small_cfg()).unwrap();
        assert_eq!(pool.capacity(), 8);
        let a = pool.allocate(&mut space).unwrap();
        let b = pool.allocate(&mut space).unwrap();
        assert_ne!(a.heap_base, b.heap_base);
        assert_eq!(pool.in_use(), 2);
        // Write into a's memory with a's PKRU, read it back.
        let ctx = AccessCtx { pkru: Pkru::only_stripe(a.pkey).0 };
        space.store(a.heap_base + 64, Width::Q, 0x1234, ctx).unwrap();
        assert_eq!(space.load(a.heap_base + 64, Width::Q, ctx).unwrap(), 0x1234);
        // Recycle: contents are zeroed, key survives.
        pool.deallocate(&mut space, a).unwrap();
        let a2 = pool.allocate(&mut space).unwrap();
        assert_eq!(a2.index, a.index, "LIFO reuse");
        assert_eq!(a2.pkey, a.pkey, "colors survive madvise");
        assert_eq!(space.load(a.heap_base + 64, Width::Q, ctx).unwrap(), 0, "zeroed");
    }

    #[test]
    fn cross_stripe_access_faults() {
        // The ColorGuard security property: sandbox A (running with only
        // its own key enabled) cannot touch sandbox B's stripe, even though
        // B's memory is mapped and closer than A's guard distance.
        let mut space = AddressSpace::new_48bit();
        let mut pool = MemoryPool::create(&mut space, &small_cfg()).unwrap();
        let a = pool.allocate(&mut space).unwrap();
        let b = pool.allocate(&mut space).unwrap();
        assert_ne!(a.pkey, b.pkey, "adjacent slots use different stripes");
        let ctx_a = AccessCtx { pkru: Pkru::only_stripe(a.pkey).0 };
        // A's view: its own memory works…
        space.store(a.heap_base, Width::D, 1, ctx_a).unwrap();
        // …but B's stripe faults with a PKU violation.
        let denied = space.load(b.heap_base, Width::D, ctx_a);
        assert!(matches!(denied, Err(MemFault::PkuViolation { .. })), "{denied:?}");
    }

    #[test]
    fn guard_region_beyond_last_slot_faults() {
        let mut space = AddressSpace::new_48bit();
        let mut pool = MemoryPool::create(&mut space, &small_cfg()).unwrap();
        let handles: Vec<_> =
            (0..pool.capacity()).map(|_| pool.allocate(&mut space).unwrap()).collect();
        let last = handles.last().unwrap();
        let ctx = AccessCtx { pkru: Pkru::only_stripe(last.pkey).0 };
        // One byte past the last slot's memory: unmapped or PROT_NONE.
        let oob = space.load(last.heap_base + pool.layout().max_memory_bytes, Width::B, ctx);
        assert!(
            matches!(oob, Err(MemFault::Protection { .. }) | Err(MemFault::Unmapped { .. })
                | Err(MemFault::PkuViolation { .. })),
            "{oob:?}"
        );
    }

    #[test]
    fn exhaustion_and_bad_handles() {
        let mut space = AddressSpace::new_48bit();
        let mut cfg = small_cfg();
        cfg.num_slots = 2;
        let mut pool = MemoryPool::create(&mut space, &cfg).unwrap();
        let a = pool.allocate(&mut space).unwrap();
        let _b = pool.allocate(&mut space).unwrap();
        assert_eq!(pool.allocate(&mut space).unwrap_err(), PoolError::Exhausted);
        pool.deallocate(&mut space, a).unwrap();
        assert_eq!(pool.deallocate(&mut space, a).unwrap_err(), PoolError::BadHandle);
    }

    #[test]
    fn striping_needs_keys() {
        let mut space = AddressSpace::new_48bit();
        // Reserve 14 keys: only 1 remains, but the layout wants several.
        space.keys.reserve(14);
        let err = MemoryPool::create(&mut space, &small_cfg());
        assert!(matches!(err, Err(PoolError::KeysUnavailable)), "{err:?}");
    }

    #[test]
    fn quarantine_fences_and_rehabilitates() {
        let mut space = AddressSpace::new_48bit();
        let mut pool = MemoryPool::create(&mut space, &small_cfg()).unwrap();
        pool.set_quarantine_policy(QuarantinePolicy { ring_capacity: 1, max_faults: 10 });
        let a = pool.allocate(&mut space).unwrap();
        let ctx = AccessCtx { pkru: Pkru::only_stripe(a.pkey).0 };
        space.store(a.heap_base, Width::Q, 0xDEAD, ctx).unwrap();

        assert_eq!(pool.quarantine(&mut space, a).unwrap(), QuarantineOutcome::Quarantined);
        assert_eq!(pool.quarantined(), 1);
        assert_eq!(pool.fault_count(a.index), 1);
        // While quarantined the slot is fenced: even its own color traps.
        assert!(matches!(
            space.load(a.heap_base, Width::Q, ctx),
            Err(MemFault::Protection { .. })
        ));
        // Double-quarantine / deallocate of a parked slot is a bad handle.
        assert_eq!(pool.quarantine(&mut space, a).unwrap_err(), PoolError::BadHandle);
        assert_eq!(pool.deallocate(&mut space, a).unwrap_err(), PoolError::BadHandle);

        // Rehabilitate: the slot circulates again, same color, scrubbed.
        pool.drain_quarantine(&mut space);
        assert_eq!(pool.quarantined(), 0);
        let free_before = pool.capacity() - pool.in_use();
        assert_eq!(free_before, pool.capacity());
        // Allocate everything; the rehabilitated slot must come back usable.
        let handles: Vec<_> =
            (0..pool.capacity()).map(|_| pool.allocate(&mut space).unwrap()).collect();
        let back = handles.iter().find(|h| h.index == a.index).expect("slot circulates");
        assert_eq!(back.pkey, a.pkey, "stripe color re-applied");
        assert_eq!(space.load(back.heap_base, Width::Q, ctx).unwrap(), 0, "scrubbed");
    }

    #[test]
    fn quarantine_ring_defers_reuse() {
        let mut space = AddressSpace::new_48bit();
        let mut pool = MemoryPool::create(&mut space, &small_cfg()).unwrap();
        pool.set_quarantine_policy(QuarantinePolicy { ring_capacity: 2, max_faults: 10 });
        let a = pool.allocate(&mut space).unwrap();
        let b = pool.allocate(&mut space).unwrap();
        let c = pool.allocate(&mut space).unwrap();
        pool.quarantine(&mut space, a).unwrap();
        pool.quarantine(&mut space, b).unwrap();
        assert_eq!(pool.quarantined(), 2, "ring holds both");
        // Third entry overflows the ring: the oldest (a) is rehabilitated.
        pool.quarantine(&mut space, c).unwrap();
        assert_eq!(pool.quarantined(), 2);
        let ctx = AccessCtx { pkru: Pkru::only_stripe(a.pkey).0 };
        assert!(space.load(a.heap_base, Width::Q, ctx).is_ok(), "a circulates again");
    }

    #[test]
    fn repeat_offender_is_retired() {
        let mut space = AddressSpace::new_48bit();
        let mut pool = MemoryPool::create(&mut space, &small_cfg()).unwrap();
        pool.set_quarantine_policy(QuarantinePolicy { ring_capacity: 0, max_faults: 2 });
        let first = pool.allocate(&mut space).unwrap();
        assert_eq!(pool.quarantine(&mut space, first).unwrap(), QuarantineOutcome::Quarantined);
        // ring_capacity 0 rehabilitates immediately; fault it again.
        let again = loop {
            let h = pool.allocate(&mut space).unwrap();
            if h.index == first.index {
                break h;
            }
        };
        assert_eq!(pool.quarantine(&mut space, again).unwrap(), QuarantineOutcome::Retired);
        assert_eq!(pool.retired(), 1);
        assert_eq!(pool.fault_count(first.index), 2);
        // The retired slot never comes back.
        let mut seen = Vec::new();
        while let Ok(h) = pool.allocate(&mut space) {
            seen.push(h.index);
        }
        assert!(!seen.contains(&first.index), "retired slot must not circulate");
    }

    #[test]
    fn vma_count_reflects_striping() {
        // Each colored slot is its own VMA (they cannot merge across
        // stripes) — the vm.max_map_count pressure §5.1 mentions.
        let mut space = AddressSpace::new_48bit();
        let pool = MemoryPool::create(&mut space, &small_cfg()).unwrap();
        assert!(space.map_count() >= pool.capacity() as usize);
    }
}
