//! The verification harness: rediscovering §5.2's findings, executably.
//!
//! The paper verified the ColorGuard allocator with Flux refinement types
//! under a strengthened attacker model ("the allocator is called with
//! potentially unaligned, unsafe, or otherwise incorrect inputs"), finding
//! one saturating-add bug and four missing preconditions. Our stand-in for
//! the refinement-type proof is **bounded-exhaustive model checking** over
//! a structured input space (aligned, unaligned, near-overflow and
//! degenerate values in every position) plus property-based sampling:
//!
//! - [`find_violation`] sweeps the space for an implementation and returns
//!   the first `(input, violated invariants)` witness;
//! - against the fixed [`crate::layout::compute_layout`] it finds nothing;
//! - against [`crate::buggy::compute_layout`] it finds the alignment and
//!   saturation violations — the same classes as Table 1 rows 7–10 and the
//!   checked-add bug.

use crate::invariants::{check, Invariant};
use crate::layout::{LayoutError, PoolConfig, SlotLayout};
use crate::WASM_PAGE_SIZE;

/// A counterexample: the input and the invariants its layout violates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The offending configuration.
    pub config: PoolConfig,
    /// The layout the implementation produced.
    pub layout: SlotLayout,
    /// The violated Table 1 invariants.
    pub invariants: Vec<Invariant>,
}

/// The boundary values swept for each size parameter: zero/small, aligned
/// and unaligned mid-range values, and near-overflow values that expose
/// saturating arithmetic.
pub fn interesting_sizes() -> Vec<u64> {
    vec![
        0,
        4096,
        WASM_PAGE_SIZE,
        WASM_PAGE_SIZE + 4096,     // OS-aligned, not Wasm-aligned
        WASM_PAGE_SIZE + 100,      // unaligned entirely
        4 * WASM_PAGE_SIZE,
        64 * WASM_PAGE_SIZE,
        1 << 32,                   // 4 GiB
        (1 << 32) + 4096,
        u64::MAX / 2,
        u64::MAX - WASM_PAGE_SIZE,
        u64::MAX,
    ]
}

/// Exhaustively sweeps the bounded input space against `implementation`,
/// returning the first violation (or `None` if every accepted input yields
/// an invariant-respecting layout).
///
/// Inputs the implementation *rejects* (returns `Err`) are fine — the
/// verification question is whether any *accepted* input produces an unsafe
/// layout.
pub fn find_violation(
    implementation: impl Fn(&PoolConfig) -> Result<SlotLayout, LayoutError>,
) -> Option<Violation> {
    let sizes = interesting_sizes();
    let mut checked = 0u64;
    for &max_memory_bytes in &sizes {
        for &expected_slot_bytes in &sizes {
            for &guard_bytes in &sizes {
                for &num_pkeys_available in &[0u8, 2, 15] {
                    for &guard_before_slots in &[false, true] {
                        for &total_memory_bytes in &[1u64 << 30, 1 << 47, u64::MAX] {
                            let cfg = PoolConfig {
                                num_slots: 16,
                                max_memory_bytes,
                                expected_slot_bytes,
                                guard_bytes,
                                guard_before_slots,
                                num_pkeys_available,
                                total_memory_bytes,
                            };
                            checked += 1;
                            let _ = checked;
                            if let Ok(layout) = implementation(&cfg) {
                                let violated = check(&cfg, &layout);
                                if !violated.is_empty() {
                                    return Some(Violation {
                                        config: cfg,
                                        layout,
                                        invariants: violated,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    None
}

/// Collects the distinct invariant classes an implementation can violate
/// over the bounded space (used by the Table 1 report binary).
pub fn violation_classes(
    implementation: impl Fn(&PoolConfig) -> Result<SlotLayout, LayoutError> + Copy,
) -> Vec<Invariant> {
    let sizes = interesting_sizes();
    let mut seen = std::collections::BTreeSet::new();
    for &max_memory_bytes in &sizes {
        for &expected_slot_bytes in &sizes {
            for &guard_bytes in &sizes {
                for &num_pkeys_available in &[0u8, 15] {
                    let cfg = PoolConfig {
                        num_slots: 16,
                        max_memory_bytes,
                        expected_slot_bytes,
                        guard_bytes,
                        guard_before_slots: true,
                        num_pkeys_available,
                        total_memory_bytes: u64::MAX,
                    };
                    if let Ok(layout) = implementation(&cfg) {
                        for v in check(&cfg, &layout) {
                            seen.insert(format!("{v:?}"));
                        }
                    }
                }
            }
        }
    }
    // Map back through a second pass (BTreeSet of Debug strings keeps the
    // ordering deterministic without requiring Ord on Invariant).
    let all = [
        Invariant::TotalAccounting,
        Invariant::SlotHoldsMemory,
        Invariant::PageAlignment,
        Invariant::StripeCount,
        Invariant::StripeMinimality,
        Invariant::StripeProtection,
        Invariant::SlotWasmPageAligned,
        Invariant::MemoryWasmPageAligned,
        Invariant::GuardOsPageAligned,
        Invariant::FitsBudget,
    ];
    all.into_iter().filter(|i| seen.contains(&format!("{i:?}"))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{buggy, layout};

    #[test]
    fn fixed_implementation_has_no_violations() {
        assert_eq!(find_violation(layout::compute_layout), None);
    }

    #[test]
    fn buggy_implementation_is_caught() {
        let v = find_violation(buggy::compute_layout).expect("the unfixed allocator is unsafe");
        assert!(!v.invariants.is_empty());
    }

    #[test]
    fn buggy_violations_cover_the_papers_findings() {
        let classes = violation_classes(buggy::compute_layout);
        // The missing alignment preconditions (Table 1, rows 7–9)…
        assert!(
            classes.contains(&Invariant::SlotWasmPageAligned)
                || classes.contains(&Invariant::MemoryWasmPageAligned)
                || classes.contains(&Invariant::GuardOsPageAligned),
            "{classes:?}"
        );
        // …and a saturation/size-class violation (the checked-add bug or
        // the budget precondition, row 10).
        assert!(
            classes.contains(&Invariant::TotalAccounting)
                || classes.contains(&Invariant::FitsBudget)
                || classes.contains(&Invariant::StripeProtection)
                || classes.contains(&Invariant::SlotHoldsMemory),
            "{classes:?}"
        );
        assert!(classes.len() >= 2, "multiple defect classes expected: {classes:?}");
    }

    #[test]
    fn fixed_classes_are_empty() {
        assert!(violation_classes(layout::compute_layout).is_empty());
    }
}
