//! # sfi-pool: the ColorGuard pooling allocator
//!
//! ColorGuard (§3.2, §5 of the paper) packs Wasm instances up to 15× more
//! densely by striping MPK colors across the address space that guard-based
//! SFI would waste. This crate implements the whole allocator stack:
//!
//! - [`PoolConfig`] / [`compute_layout`] / [`SlotLayout`]: the slot-layout
//!   computation — the explicit contract between the allocator and the
//!   compiler, with all ten Table 1 invariants enforced (including the four
//!   preconditions the paper's verification effort found missing).
//! - [`buggy`]: the pre-verification implementation, preserving the
//!   saturating-add bug and the missing preconditions.
//! - [`invariants`]: Table 1 as an executable checker.
//! - [`verify`]: bounded-exhaustive model checking that rediscovers the
//!   paper's findings — no violations in the fixed version, concrete
//!   counterexamples against the buggy one.
//! - [`MemoryPool`]: the runtime allocator on `sfi-vm` — slab reservation,
//!   per-stripe `pkey_mprotect`, `madvise` recycling with color retention.
//!
//! ```
//! use sfi_pool::{MemoryPool, PoolConfig};
//! use sfi_vm::AddressSpace;
//!
//! let mut space = AddressSpace::new_48bit();
//! let cfg = PoolConfig {
//!     num_slots: 4,
//!     max_memory_bytes: 65536,
//!     expected_slot_bytes: 4 * 65536,
//!     guard_bytes: 4 * 65536,
//!     guard_before_slots: true,
//!     num_pkeys_available: 15,
//!     total_memory_bytes: 1 << 30,
//! };
//! let mut pool = MemoryPool::create(&mut space, &cfg).unwrap();
//! let slot = pool.allocate(&mut space).unwrap();
//! assert!(slot.pkey > 0, "ColorGuard slots carry an MPK color");
//! pool.deallocate(&mut space, slot).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buggy;
pub mod chain;
pub mod invariants;
pub mod verify;

mod layout;
mod pool;

pub use layout::{compute_layout, LayoutError, PoolConfig, SlotLayout};
pub use pool::{
    MemoryPool, PoolError, QuarantineOutcome, QuarantinePolicy, QuarantineStats, SlotHandle,
};

/// Wasm's linear-memory page size (64 KiB) — layout granularity per
/// Table 1, invariants 7–8.
pub const WASM_PAGE_SIZE: u64 = 65536;
