//! Slot-layout computation — the allocator/compiler contract.
//!
//! This mirrors the Wasmtime pooling-allocator calculation that ColorGuard
//! extends (§5.1): given the desired slot count, per-instance memory limit,
//! guard requirement and available protection keys, compute how the slab is
//! carved into slots and stripes. The resulting [`SlotLayout`] *is* the
//! security contract: the JIT elides bounds checks because the layout
//! guarantees that any 33-bit out-of-bounds offset lands either in a guard
//! page or in a differently-colored stripe.

use crate::WASM_PAGE_SIZE;
use sfi_vm::OS_PAGE_SIZE;

/// Inputs to the layout computation (mirrors Wasmtime's memory-pool knobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Desired number of instance slots.
    pub num_slots: u64,
    /// Maximum linear-memory bytes an instance may grow to.
    pub max_memory_bytes: u64,
    /// The requested address-space reservation per slot (≥ the memory limit
    /// in guard-based configurations, e.g. 4 GiB).
    pub expected_slot_bytes: u64,
    /// Guard bytes that must be unreachable after each slot's memory.
    pub guard_bytes: u64,
    /// Reserve a guard region before the first slot too.
    pub guard_before_slots: bool,
    /// MPK keys available for striping (0 or 1 disables ColorGuard).
    pub num_pkeys_available: u8,
    /// Total address budget for the slab.
    pub total_memory_bytes: u64,
}

impl PoolConfig {
    /// The configuration used by the paper's scaling microbenchmark
    /// (§6.4.2): 408 MiB memories in 4 GiB reservations with 6 GiB guards
    /// on a 47-bit user address space.
    pub fn scaling_benchmark(num_pkeys_available: u8) -> PoolConfig {
        PoolConfig {
            num_slots: u64::MAX, // "as many as fit"
            max_memory_bytes: 408 << 20,
            expected_slot_bytes: 4 << 30,
            guard_bytes: 6 << 30,
            guard_before_slots: true,
            num_pkeys_available,
            total_memory_bytes: 1 << 47,
        }
    }
}

/// The computed layout: the contract handed to the compiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotLayout {
    /// Stride between consecutive slots (also each slot's reservation).
    pub slot_bytes: u64,
    /// Per-instance memory limit (copied from the config).
    pub max_memory_bytes: u64,
    /// Guard bytes before the first slot.
    pub pre_slot_guard_bytes: u64,
    /// Guard bytes after the last slot.
    pub post_slot_guard_bytes: u64,
    /// Number of slots in the slab.
    pub num_slots: u64,
    /// Stripe (color) count; 1 means no MPK striping.
    pub num_stripes: u8,
}

impl SlotLayout {
    /// Total slab bytes: `pre + slot_bytes * num_slots + post`
    /// (Table 1, invariant 1 demands this hold exactly).
    pub fn total_slab_bytes(&self) -> Option<u64> {
        self.slot_bytes
            .checked_mul(self.num_slots)?
            .checked_add(self.pre_slot_guard_bytes)?
            .checked_add(self.post_slot_guard_bytes)
    }

    /// Byte offset of slot `i` within the slab.
    pub fn slot_offset(&self, i: u64) -> u64 {
        self.pre_slot_guard_bytes.saturating_add(self.slot_bytes.saturating_mul(i))
    }

    /// The stripe (MPK color index, 0-based) of slot `i`.
    pub fn stripe_of(&self, i: u64) -> u8 {
        (i % u64::from(self.num_stripes)) as u8
    }

    /// Distance from a slot's start to the next slot of the *same* stripe
    /// (Table 1, invariant 6's left-hand side).
    pub fn bytes_to_next_stripe_slot(&self) -> u64 {
        self.slot_bytes.saturating_mul(u64::from(self.num_stripes))
    }

    /// A stable 64-bit fingerprint of the allocator↔compiler contract.
    ///
    /// Guard-elision decisions baked into compiled code are sound only for
    /// the layout they were compiled against, so any code cache keyed on a
    /// module must also be keyed on this fingerprint: two layouts that
    /// differ in *any* Table 1 field must never share compiled code.
    pub fn contract_fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for field in [
            self.slot_bytes,
            self.max_memory_bytes,
            self.pre_slot_guard_bytes,
            self.post_slot_guard_bytes,
            self.num_slots,
            u64::from(self.num_stripes),
        ] {
            for b in field.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

/// Why a layout could not be computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum LayoutError {
    /// `expected_slot_bytes` is not a multiple of the Wasm page size
    /// (missing precondition, Table 1 invariant 7).
    SlotNotWasmPageAligned,
    /// `max_memory_bytes` is not a multiple of the Wasm page size
    /// (missing precondition, Table 1 invariant 8).
    MemoryNotWasmPageAligned,
    /// `guard_bytes` is not a multiple of the OS page size when pre-guards
    /// are in use (missing precondition, Table 1 invariant 9).
    GuardNotOsPageAligned,
    /// The requested slot exceeds the total budget (missing precondition,
    /// Table 1 invariant 10).
    SlotExceedsBudget,
    /// The per-slot reservation cannot hold the memory limit.
    SlotSmallerThanMemory,
    /// Arithmetic overflow while sizing the slab — the class of bug the
    /// paper's verification found (a saturating add that should have been
    /// checked).
    Overflow,
    /// No slots fit the budget.
    NoSlotsFit,
}

impl core::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            LayoutError::SlotNotWasmPageAligned => "slot size not Wasm-page aligned",
            LayoutError::MemoryNotWasmPageAligned => "memory limit not Wasm-page aligned",
            LayoutError::GuardNotOsPageAligned => "guard size not OS-page aligned",
            LayoutError::SlotExceedsBudget => "slot exceeds total memory budget",
            LayoutError::SlotSmallerThanMemory => "slot smaller than the memory limit",
            LayoutError::Overflow => "slab size arithmetic overflow",
            LayoutError::NoSlotsFit => "no slots fit the budget",
        };
        f.write_str(s)
    }
}

impl std::error::Error for LayoutError {}

fn align_up(v: u64, align: u64) -> Option<u64> {
    v.checked_add(align - 1).map(|x| x / align * align)
}

/// The unchecked (buggy) alignment: wraps on overflow, as arithmetic on
/// unvalidated inputs did upstream.
fn align_up_wrapping(v: u64, align: u64) -> u64 {
    v.wrapping_add(align - 1) / align * align
}

/// Computes the slot layout with **all** safety preconditions enforced —
/// the post-verification version, including the four checks (Table 1,
/// invariants 7–10) that the Flux verification found missing upstream.
pub fn compute_layout(cfg: &PoolConfig) -> Result<SlotLayout, LayoutError> {
    // ---- the verified preconditions (Table 1, rows 7–10) ----
    if !cfg.expected_slot_bytes.is_multiple_of(WASM_PAGE_SIZE) {
        return Err(LayoutError::SlotNotWasmPageAligned); // invariant 7
    }
    if !cfg.max_memory_bytes.is_multiple_of(WASM_PAGE_SIZE) {
        return Err(LayoutError::MemoryNotWasmPageAligned); // invariant 8
    }
    if cfg.guard_before_slots && !cfg.guard_bytes.is_multiple_of(OS_PAGE_SIZE) {
        return Err(LayoutError::GuardNotOsPageAligned); // invariant 9
    }
    if cfg.expected_slot_bytes > cfg.total_memory_bytes {
        return Err(LayoutError::SlotExceedsBudget); // invariant 10
    }

    compute_layout_unchecked::<true>(cfg)
}

/// The shared core. `CHECKED` selects checked arithmetic (the fix) — the
/// [`crate::buggy`] module instantiates the saturating variant.
pub(crate) fn compute_layout_unchecked<const CHECKED: bool>(
    cfg: &PoolConfig,
) -> Result<SlotLayout, LayoutError> {
    let expected = cfg.expected_slot_bytes.max(cfg.max_memory_bytes);
    if expected < cfg.max_memory_bytes {
        return Err(LayoutError::SlotSmallerThanMemory);
    }

    // Stripe count: enough colors that the slots between two same-colored
    // slots cover the guard requirement (Table 1, invariant 5), clamped to
    // the available keys and the slot count.
    let needed_stripes = cfg
        .guard_bytes
        .checked_div(cfg.max_memory_bytes)
        .map_or(1, |q| q.min(254) + 2);
    let num_stripes = if cfg.num_pkeys_available >= 2 {
        (needed_stripes as u8).min(cfg.num_pkeys_available).max(1)
    } else {
        1
    };

    // Slot stride. Without striping the full reservation plus guard
    // separates instances; with striping the stride shrinks so that
    // `slot_bytes * num_stripes >= expected + guard` (invariant 6).
    let align = |v: u64, to: u64| -> Result<u64, LayoutError> {
        if CHECKED {
            align_up(v, to).ok_or(LayoutError::Overflow)
        } else {
            Ok(align_up_wrapping(v, to))
        }
    };
    let (slot_bytes, post_guard) = if num_stripes >= 2 {
        let span = add(expected, cfg.guard_bytes, CHECKED)?;
        let per = span.div_ceil(u64::from(num_stripes)).max(cfg.max_memory_bytes);
        let per = align(per, WASM_PAGE_SIZE)?;
        // The last slot cannot rely on stripes that follow it: it keeps a
        // real guard so that `slot_bytes + post_guard >= expected`
        // (invariant 6, second condition).
        let post = expected.saturating_sub(per).max(cfg.guard_bytes.min(expected));
        let post = align(post, OS_PAGE_SIZE)?;
        (per, post)
    } else {
        let per = align(add(expected, cfg.guard_bytes, CHECKED)?, WASM_PAGE_SIZE)?;
        // The trailing guard must itself be page-aligned (invariant 3).
        (per, align(cfg.guard_bytes, OS_PAGE_SIZE)?)
    };

    let pre_guard = if cfg.guard_before_slots { cfg.guard_bytes } else { 0 };

    // How many slots fit the budget?
    let fixed = add(pre_guard, post_guard, CHECKED)?;
    if fixed >= cfg.total_memory_bytes || (CHECKED && slot_bytes == 0) {
        return Err(LayoutError::NoSlotsFit);
    }
    // The unchecked (buggy) path can reach here with a wrapped-to-zero
    // slot size; it blunders on, exactly like arithmetic on unvalidated
    // inputs did upstream.
    let fit = (cfg.total_memory_bytes - fixed) / slot_bytes.max(1);
    let num_slots = cfg.num_slots.min(fit);
    if num_slots == 0 {
        return Err(LayoutError::NoSlotsFit);
    }

    let layout = SlotLayout {
        slot_bytes,
        max_memory_bytes: cfg.max_memory_bytes,
        pre_slot_guard_bytes: pre_guard,
        post_slot_guard_bytes: post_guard,
        num_slots,
        num_stripes,
    };
    if CHECKED {
        // Defensive: the final slab must exist and fit.
        let total = layout.total_slab_bytes().ok_or(LayoutError::Overflow)?;
        if total > cfg.total_memory_bytes {
            return Err(LayoutError::Overflow);
        }
    }
    Ok(layout)
}

fn add(a: u64, b: u64, checked: bool) -> Result<u64, LayoutError> {
    if checked {
        a.checked_add(b).ok_or(LayoutError::Overflow)
    } else {
        // The upstream bug (§5.2): saturating where checked was required.
        Ok(a.saturating_add(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> PoolConfig {
        PoolConfig {
            num_slots: 8,
            max_memory_bytes: 4 * WASM_PAGE_SIZE,
            expected_slot_bytes: 16 * WASM_PAGE_SIZE,
            guard_bytes: 32 * WASM_PAGE_SIZE,
            guard_before_slots: true,
            num_pkeys_available: 15,
            total_memory_bytes: 1 << 32,
        }
    }

    #[test]
    fn unstriped_layout_uses_full_guards() {
        let mut cfg = small_cfg();
        cfg.num_pkeys_available = 0;
        let l = compute_layout(&cfg).unwrap();
        assert_eq!(l.num_stripes, 1);
        assert_eq!(l.slot_bytes, cfg.expected_slot_bytes + cfg.guard_bytes);
        assert_eq!(l.num_slots, 8);
    }

    #[test]
    fn striped_layout_shrinks_stride() {
        let cfg = small_cfg();
        let l = compute_layout(&cfg).unwrap();
        assert!(l.num_stripes > 1);
        assert!(l.slot_bytes < cfg.expected_slot_bytes + cfg.guard_bytes);
        // Invariant 6: same-color slots are a full reservation+guard apart.
        assert!(
            l.bytes_to_next_stripe_slot()
                >= cfg.expected_slot_bytes.max(cfg.max_memory_bytes) + cfg.guard_bytes
        );
    }

    #[test]
    fn stripes_capped_by_available_keys() {
        let mut cfg = small_cfg();
        cfg.num_pkeys_available = 3;
        let l = compute_layout(&cfg).unwrap();
        assert_eq!(l.num_stripes, 3);
        // Fewer stripes → bigger stride (guards make up the difference).
        let full = compute_layout(&small_cfg()).unwrap();
        assert!(full.num_stripes > 3);
        assert!(l.slot_bytes > full.slot_bytes);
    }

    #[test]
    fn missing_preconditions_are_enforced() {
        let mut c = small_cfg();
        c.expected_slot_bytes += 1;
        assert_eq!(compute_layout(&c), Err(LayoutError::SlotNotWasmPageAligned));

        let mut c = small_cfg();
        c.max_memory_bytes += 512;
        assert_eq!(compute_layout(&c), Err(LayoutError::MemoryNotWasmPageAligned));

        let mut c = small_cfg();
        c.guard_bytes += 100;
        assert_eq!(compute_layout(&c), Err(LayoutError::GuardNotOsPageAligned));

        let mut c = small_cfg();
        c.total_memory_bytes = c.expected_slot_bytes - WASM_PAGE_SIZE;
        assert_eq!(compute_layout(&c), Err(LayoutError::SlotExceedsBudget));
    }

    #[test]
    fn overflow_is_checked_not_saturated() {
        let mut c = small_cfg();
        c.expected_slot_bytes = u64::MAX / WASM_PAGE_SIZE * WASM_PAGE_SIZE;
        c.total_memory_bytes = u64::MAX;
        c.guard_bytes = WASM_PAGE_SIZE * 16;
        assert_eq!(compute_layout(&c), Err(LayoutError::Overflow));
    }

    #[test]
    fn scaling_benchmark_ratio_is_about_15x() {
        let without = compute_layout(&PoolConfig::scaling_benchmark(0)).unwrap();
        let with = compute_layout(&PoolConfig::scaling_benchmark(15)).unwrap();
        assert_eq!(without.num_stripes, 1);
        assert_eq!(with.num_stripes, 15);
        let ratio = with.num_slots as f64 / without.num_slots as f64;
        assert!((13.0..=15.5).contains(&ratio), "ratio {ratio} (paper: ≈15×)");
        // Paper's absolute scale: ~14.5K and ~218K.
        assert!((12_000..=18_000).contains(&without.num_slots), "{}", without.num_slots);
        assert!((190_000..=240_000).contains(&with.num_slots), "{}", with.num_slots);
    }

    #[test]
    fn contract_fingerprint_separates_every_field() {
        let base = compute_layout(&small_cfg()).unwrap();
        let fp = base.contract_fingerprint();
        assert_eq!(fp, base.contract_fingerprint(), "fingerprint is stable");
        for i in 0..6 {
            let mut l = base;
            match i {
                0 => l.slot_bytes += WASM_PAGE_SIZE,
                1 => l.max_memory_bytes += WASM_PAGE_SIZE,
                2 => l.pre_slot_guard_bytes += OS_PAGE_SIZE,
                3 => l.post_slot_guard_bytes += OS_PAGE_SIZE,
                4 => l.num_slots += 1,
                _ => l.num_stripes += 1,
            }
            assert_ne!(fp, l.contract_fingerprint(), "field {i} must perturb the fingerprint");
        }
    }

    #[test]
    fn slot_offsets_and_stripes() {
        let l = compute_layout(&small_cfg()).unwrap();
        assert_eq!(l.slot_offset(0), l.pre_slot_guard_bytes);
        assert_eq!(l.slot_offset(1) - l.slot_offset(0), l.slot_bytes);
        assert_eq!(l.stripe_of(0), 0);
        assert_eq!(l.stripe_of(u64::from(l.num_stripes)), 0);
        assert_ne!(l.stripe_of(1), l.stripe_of(0));
    }
}
