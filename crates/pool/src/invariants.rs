//! Table 1: the ColorGuard safety invariants, as an executable checker.
//!
//! The paper's §5.2 formalizes the allocator's contract as ten invariants —
//! six specified (and fuzzed) by the Wasmtime team, plus one bug and four
//! missing preconditions found by Flux verification. Here the invariants
//! are an executable predicate over `(PoolConfig, SlotLayout)` pairs, and
//! [`crate::verify`] plays the role of the verifier: it exhaustively checks
//! a bounded parameter space (plus property-based sampling) and rediscovers
//! exactly the violations the paper reports in the unfixed implementation.

use crate::layout::{PoolConfig, SlotLayout};
use crate::WASM_PAGE_SIZE;
use sfi_vm::OS_PAGE_SIZE;

/// Which Table 1 invariant a layout violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Invariant {
    /// 1: `total_slot_bytes == pre + slot_bytes * num_slots + post` — no
    /// leaks, no overflow.
    TotalAccounting,
    /// 2: `slot_bytes >= max_memory_bytes`.
    SlotHoldsMemory,
    /// 3: page alignment of every layout parameter.
    PageAlignment,
    /// 4: `1 <= num_stripes <= min(num_pkeys_available (when striping),
    /// num_slots)`.
    StripeCount,
    /// 5: `num_stripes <= guard_bytes / max_memory_bytes + 2`.
    StripeMinimality,
    /// 6: `bytes_to_next_stripe_slot >= max(expected_slot_bytes,
    /// max_memory_bytes) + guard_bytes` and `slot_bytes + post_guard >=
    /// expected_slot_bytes` — striping must not shrink protection.
    StripeProtection,
    /// 7 (missing precondition): `expected_slot_bytes % WASM_PAGE == 0`.
    SlotWasmPageAligned,
    /// 8 (missing precondition): `max_memory_bytes % WASM_PAGE == 0`.
    MemoryWasmPageAligned,
    /// 9 (missing precondition): pre-guards are OS-page aligned.
    GuardOsPageAligned,
    /// 10 (missing precondition): the slab fits `total_memory_bytes`.
    FitsBudget,
}

impl core::fmt::Display for Invariant {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let (num, desc) = match self {
            Invariant::TotalAccounting => (1, "slab total must equal the sum of its parts"),
            Invariant::SlotHoldsMemory => (2, "slot must hold the maximum memory"),
            Invariant::PageAlignment => (3, "layout parameters must be page-aligned"),
            Invariant::StripeCount => (4, "stripe count must fit keys and slots"),
            Invariant::StripeMinimality => (5, "no more stripes than the guard requires"),
            Invariant::StripeProtection => (6, "striping must preserve the guard distance"),
            Invariant::SlotWasmPageAligned => (7, "slot size must be Wasm-page aligned"),
            Invariant::MemoryWasmPageAligned => (8, "memory limit must be Wasm-page aligned"),
            Invariant::GuardOsPageAligned => (9, "pre-guards must be OS-page aligned"),
            Invariant::FitsBudget => (10, "slab must fit the memory budget"),
        };
        write!(f, "invariant {num}: {desc}")
    }
}

/// Checks all ten Table 1 invariants of `layout` against `cfg`; returns
/// every violated invariant (empty = safe).
pub fn check(cfg: &PoolConfig, layout: &SlotLayout) -> Vec<Invariant> {
    let mut out = Vec::new();

    // 1: exact accounting (overflow counts as a violation: the slab the
    // runtime would mmap no longer matches the slots the compiler assumes).
    match layout.total_slab_bytes() {
        Some(total) => {
            let parts = layout
                .pre_slot_guard_bytes
                .checked_add(layout.slot_bytes.saturating_mul(layout.num_slots))
                .and_then(|v| v.checked_add(layout.post_slot_guard_bytes));
            if parts != Some(total) {
                out.push(Invariant::TotalAccounting);
            }
            // 10: fits the budget.
            if total > cfg.total_memory_bytes {
                out.push(Invariant::FitsBudget);
            }
        }
        None => {
            out.push(Invariant::TotalAccounting);
            out.push(Invariant::FitsBudget);
        }
    }

    // 2.
    if layout.slot_bytes < layout.max_memory_bytes {
        out.push(Invariant::SlotHoldsMemory);
    }

    // 3: OS-page alignment of the derived layout.
    if !layout.slot_bytes.is_multiple_of(OS_PAGE_SIZE)
        || !layout.max_memory_bytes.is_multiple_of(OS_PAGE_SIZE)
        || !layout.pre_slot_guard_bytes.is_multiple_of(OS_PAGE_SIZE)
        || !layout.post_slot_guard_bytes.is_multiple_of(OS_PAGE_SIZE)
    {
        out.push(Invariant::PageAlignment);
    }

    // 4.
    let s = u64::from(layout.num_stripes);
    if s < 1
        || (s > 1 && s > u64::from(cfg.num_pkeys_available))
        || (layout.num_slots > 0 && s > layout.num_slots && s > 1)
    {
        out.push(Invariant::StripeCount);
    }

    // 5: minimality.
    if layout.max_memory_bytes > 0 && s > cfg.guard_bytes / layout.max_memory_bytes + 2 {
        out.push(Invariant::StripeMinimality);
    }

    // 6: protection distance.
    let expected = cfg.expected_slot_bytes.max(layout.max_memory_bytes);
    if s > 1 {
        // Either failing condition breaks the same protection guarantee.
        let dist = layout.bytes_to_next_stripe_slot();
        if dist < expected.saturating_add(cfg.guard_bytes)
            || layout.slot_bytes.saturating_add(layout.post_slot_guard_bytes) < expected
        {
            out.push(Invariant::StripeProtection);
        }
    } else if layout
        .slot_bytes
        .saturating_add(layout.post_slot_guard_bytes)
        < expected.saturating_add(cfg.guard_bytes).min(expected)
    {
        out.push(Invariant::StripeProtection);
    }

    // 7–9: the input preconditions the verification found missing.
    if !cfg.expected_slot_bytes.is_multiple_of(WASM_PAGE_SIZE) {
        out.push(Invariant::SlotWasmPageAligned);
    }
    if !cfg.max_memory_bytes.is_multiple_of(WASM_PAGE_SIZE) {
        out.push(Invariant::MemoryWasmPageAligned);
    }
    if cfg.guard_before_slots && !cfg.guard_bytes.is_multiple_of(OS_PAGE_SIZE) {
        out.push(Invariant::GuardOsPageAligned);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::compute_layout;

    fn good_cfg() -> PoolConfig {
        PoolConfig {
            num_slots: 16,
            max_memory_bytes: 8 * WASM_PAGE_SIZE,
            expected_slot_bytes: 32 * WASM_PAGE_SIZE,
            guard_bytes: 64 * WASM_PAGE_SIZE,
            guard_before_slots: true,
            num_pkeys_available: 15,
            total_memory_bytes: 1 << 34,
        }
    }

    #[test]
    fn fixed_layouts_satisfy_all_invariants() {
        let cfg = good_cfg();
        let layout = compute_layout(&cfg).unwrap();
        assert!(check(&cfg, &layout).is_empty(), "{:?}", check(&cfg, &layout));
    }

    #[test]
    fn hand_broken_layouts_are_caught() {
        let cfg = good_cfg();
        let good = compute_layout(&cfg).unwrap();

        let mut l = good;
        l.slot_bytes = l.max_memory_bytes - OS_PAGE_SIZE;
        assert!(check(&cfg, &l).contains(&Invariant::SlotHoldsMemory));

        let mut l = good;
        l.slot_bytes += 1;
        assert!(check(&cfg, &l).contains(&Invariant::PageAlignment));

        let mut l = good;
        l.num_stripes = 16; // only 15 keys exist
        assert!(check(&cfg, &l).contains(&Invariant::StripeCount));

        let mut l = good;
        l.num_stripes = good.num_stripes;
        l.slot_bytes = l.max_memory_bytes; // shrinks same-color distance
        let v = check(&cfg, &l);
        assert!(v.contains(&Invariant::StripeProtection), "{v:?}");

        let mut l = good;
        l.num_slots = u64::MAX / l.slot_bytes + 1;
        let v = check(&cfg, &l);
        assert!(v.contains(&Invariant::TotalAccounting), "{v:?}");
    }

    #[test]
    fn budget_violation_detected() {
        let cfg = good_cfg();
        let mut l = compute_layout(&cfg).unwrap();
        l.num_slots = cfg.total_memory_bytes / l.slot_bytes + 2;
        assert!(check(&cfg, &l).contains(&Invariant::FitsBudget));
    }

    #[test]
    fn precondition_violations_reported() {
        let mut cfg = good_cfg();
        cfg.max_memory_bytes += 4096; // OS-aligned but not Wasm-page aligned
        // Build a layout by hand (the fixed compute_layout would refuse).
        let l = SlotLayout {
            slot_bytes: 64 * WASM_PAGE_SIZE,
            max_memory_bytes: cfg.max_memory_bytes,
            pre_slot_guard_bytes: cfg.guard_bytes,
            post_slot_guard_bytes: cfg.guard_bytes,
            num_slots: 4,
            num_stripes: 1,
        };
        assert!(check(&cfg, &l).contains(&Invariant::MemoryWasmPageAligned));
    }

    #[test]
    fn display_names_mention_numbers() {
        assert!(Invariant::TotalAccounting.to_string().contains("invariant 1"));
        assert!(Invariant::FitsBudget.to_string().contains("invariant 10"));
    }
}
