//! Mixed-size sandbox chains — the §3.2 extension.
//!
//! The paper notes: *"A Wasm runtime could also potentially chain sandboxes
//! of different sizes to efficiently use colors and possibly eliminate
//! [trailing guard regions]."* This module implements that future-work
//! idea: a greedy packer that lays out heterogeneous linear memories in one
//! contiguous chain, assigning MPK colors such that the ColorGuard safety
//! condition holds — any two same-colored sandboxes are at least
//! `reach = max_access_span + guard` bytes apart, so a 33-bit out-of-bounds
//! offset from one sandbox can never land in another sandbox of the same
//! color.

use crate::WASM_PAGE_SIZE;

/// One placed sandbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainSlot {
    /// Byte offset of the sandbox's memory within the chain.
    pub offset: u64,
    /// The sandbox's memory size.
    pub size: u64,
    /// Assigned stripe (0-based color index).
    pub stripe: u8,
}

/// A packed chain of mixed-size sandboxes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chain {
    slots: Vec<ChainSlot>,
    total_bytes: u64,
    reach: u64,
    stripes: u8,
}

/// Chain-packing errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChainError {
    /// A sandbox size was zero or not Wasm-page aligned.
    BadSize(u64),
    /// Fewer than two stripes were available (no striping possible).
    NotEnoughStripes,
}

impl core::fmt::Display for ChainError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ChainError::BadSize(s) => write!(f, "bad sandbox size {s}"),
            ChainError::NotEnoughStripes => f.write_str("need at least two stripes"),
        }
    }
}

impl std::error::Error for ChainError {}

impl Chain {
    /// Greedily packs `sizes` into a chain using up to `stripes` colors,
    /// where any same-colored pair must be at least `reach` bytes apart
    /// (`reach` = the per-sandbox reservation the compiler assumes plus its
    /// guard requirement).
    ///
    /// Larger sandboxes naturally push same-color successors further apart,
    /// which is exactly why mixed-size chains use colors more efficiently
    /// than uniform striping.
    pub fn pack(sizes: &[u64], stripes: u8, reach: u64) -> Result<Chain, ChainError> {
        if stripes < 2 {
            return Err(ChainError::NotEnoughStripes);
        }
        for &s in sizes {
            if s == 0 || !s.is_multiple_of(WASM_PAGE_SIZE) {
                return Err(ChainError::BadSize(s));
            }
        }
        // next_free[c] = lowest offset where color c may be used again.
        let mut next_free = vec![0u64; usize::from(stripes)];
        let mut cursor = 0u64;
        let mut slots = Vec::with_capacity(sizes.len());
        for &size in sizes {
            // Choose the color usable earliest at (or nearest past) cursor.
            let (stripe, start) = next_free
                .iter()
                .enumerate()
                .map(|(c, &nf)| (c as u8, nf.max(cursor)))
                .min_by_key(|&(c, start)| (start, c))
                .expect("stripes >= 2");
            slots.push(ChainSlot { offset: start, size, stripe });
            next_free[usize::from(stripe)] = start + reach;
            cursor = start + size;
        }
        // The chain ends with a real guard protecting the final sandboxes.
        let total_bytes = cursor + reach;
        Ok(Chain { slots, total_bytes, reach, stripes })
    }

    /// The placed sandboxes, in input order.
    pub fn slots(&self) -> &[ChainSlot] {
        &self.slots
    }

    /// Total chain bytes including the trailing guard.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Colors actually used.
    pub fn stripes_used(&self) -> u8 {
        self.slots.iter().map(|s| s.stripe).max().map_or(0, |m| m + 1)
    }

    /// Verifies the ColorGuard safety condition: same-colored sandboxes are
    /// ≥ `reach` apart, and no two sandboxes overlap. Returns the first
    /// violating pair, if any.
    pub fn check(&self) -> Option<(usize, usize)> {
        for i in 0..self.slots.len() {
            for j in (i + 1)..self.slots.len() {
                let (a, b) = (self.slots[i], self.slots[j]);
                let (lo, hi) = if a.offset <= b.offset { (a, b) } else { (b, a) };
                if lo.offset + lo.size > hi.offset {
                    return Some((i, j));
                }
                if a.stripe == b.stripe && hi.offset - lo.offset < self.reach {
                    return Some((i, j));
                }
            }
        }
        None
    }

    /// Address-space efficiency vs. the uniform guard-region layout (each
    /// sandbox in its own `reach`-sized reservation).
    pub fn efficiency_vs_guard_regions(&self) -> f64 {
        let guard_layout = self.slots.len() as u64 * self.reach;
        guard_layout as f64 / self.total_bytes as f64
    }

    /// The configured stripe budget.
    pub fn stripe_budget(&self) -> u8 {
        self.stripes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: u64 = WASM_PAGE_SIZE;

    #[test]
    fn uniform_chain_matches_striped_pool_density() {
        // 15 colors, uniform small sandboxes: the chain packs them
        // back-to-back, like the striped pool.
        let sizes = vec![PAGE; 30];
        let chain = Chain::pack(&sizes, 15, 15 * PAGE).expect("packs");
        assert_eq!(chain.check(), None);
        assert_eq!(chain.stripes_used(), 15);
        // Consecutive sandboxes are adjacent (no wasted space).
        for w in chain.slots().windows(2) {
            assert_eq!(w[0].offset + w[0].size, w[1].offset);
        }
    }

    #[test]
    fn mixed_sizes_reuse_colors_sooner() {
        // A large sandbox creates distance for free: the color after it can
        // repeat sooner, so fewer colors are needed for the same packing.
        let sizes = vec![PAGE, 8 * PAGE, PAGE, 8 * PAGE, PAGE, 8 * PAGE];
        let reach = 9 * PAGE;
        let chain = Chain::pack(&sizes, 4, reach).expect("packs");
        assert_eq!(chain.check(), None);
        assert!(
            chain.stripes_used() <= 3,
            "big interleaved sandboxes should need few colors: used {}",
            chain.stripes_used()
        );
    }

    #[test]
    fn safety_condition_is_never_violated() {
        let sizes: Vec<u64> =
            (1..40).map(|i| (i % 5 + 1) * PAGE).collect();
        for stripes in [2u8, 3, 7, 15] {
            let chain = Chain::pack(&sizes, stripes, 16 * PAGE).expect("packs");
            assert_eq!(chain.check(), None, "{stripes} stripes");
        }
    }

    #[test]
    fn fewer_stripes_means_more_padding() {
        let sizes = vec![PAGE; 20];
        let reach = 10 * PAGE;
        let two = Chain::pack(&sizes, 2, reach).expect("packs");
        let fifteen = Chain::pack(&sizes, 15, reach).expect("packs");
        assert!(two.total_bytes() > fifteen.total_bytes());
        assert!(fifteen.efficiency_vs_guard_regions() > two.efficiency_vs_guard_regions());
    }

    #[test]
    fn errors() {
        assert_eq!(Chain::pack(&[PAGE], 1, PAGE), Err(ChainError::NotEnoughStripes));
        assert_eq!(Chain::pack(&[123], 2, PAGE), Err(ChainError::BadSize(123)));
        assert_eq!(Chain::pack(&[0], 2, PAGE), Err(ChainError::BadSize(0)));
    }

    #[test]
    fn efficiency_beats_guard_regions() {
        // 64 KiB sandboxes with a 4 GiB-class reach: the whole point of
        // ColorGuard, now with mixed sizes.
        let sizes: Vec<u64> = (0..100).map(|i| (i % 4 + 1) * PAGE).collect();
        let chain = Chain::pack(&sizes, 15, 64 * PAGE).expect("packs");
        assert_eq!(chain.check(), None);
        assert!(
            chain.efficiency_vs_guard_regions() > 5.0,
            "got {:.1}×",
            chain.efficiency_vs_guard_regions()
        );
    }
}
