//! The fleet supervisor: N serving engines behind one federated scrape
//! surface, with engine-level fault budgets and deterministic
//! crash-recovery.
//!
//! The paper's scalability story (§6.4.2) is about *density* — thousands of
//! sandboxed instances per host — and density multiplies the failure
//! surface: a single wedged engine must not take the whole telemetry plane
//! down. This module escalates PR 1's slot-level quarantine machinery to
//! the engine level:
//!
//! - A [`FleetSupervisor`] owns N [`ServeEngine`] members (each with its
//!   own seed and shard set) and drives them in lock-step rounds. After
//!   each member's round, an in-process **aggregator poll** scrapes the
//!   member's `/healthz` and `/metrics` renderings under a bounded
//!   deterministic [`RetryPolicy`] — backoff and timeouts are charged to a
//!   [`VirtualClock`], so a recovery trace is byte-reproducible.
//! - Engine-grade chaos rides the same seeded [`FaultPlan`]s as PR 1's
//!   syscall/bus faults: [`EngineFault::HangOnAccept`] burns the poll's
//!   retry budget, [`EngineFault::TornResponse`] truncates the scrape body
//!   mid-JSON, and [`EngineFault::MidRoundPanic`] panics the member's
//!   driver for real (caught with `catch_unwind`; the torn engine is
//!   discarded).
//! - Fault budgets reuse [`QuarantinePolicy`] from `sfi-pool`: a member
//!   that accumulates [`QuarantinePolicy::max_faults`] faulted rounds is
//!   **retired** — its queued work is dead-lettered and it answers no more
//!   polls. Below the budget, a crashed member is **recovered by replay**:
//!   a fresh engine re-runs `(seed, completed_rounds)` from the checkpoint,
//!   which — because every [`ServeEngine`] is a pure function of its config
//!   and round count — reproduces the pre-crash modeled state *byte for
//!   byte*, then re-runs the interrupted round.
//! - The federated scrape surface merges member registries with
//!   [`Registry::merge_labeled_from`] under an `engine="<id>"` label, so
//!   same-schema members cannot collide while genuine kind collisions still
//!   panic. `/snapshot` serves the merged modeled registry only; all
//!   supervision bookkeeping (poll attempts, faults, restarts, retirements)
//!   lives in a separate fleet meta registry (`/metrics` only) — chaos on
//!   vs off therefore differs *only* in the injected-fault series, the
//!   fleet-level restatement of the DESIGN.md §8 zero-observer-effect
//!   contract.

use std::net::TcpListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::Instant;

use sfi_pool::QuarantinePolicy;
use sfi_telemetry::{
    chrome_trace, chrome_trace_gap_line, chrome_trace_lines, json_is_valid, json_snapshot,
    pack_span, percent_decode, prometheus_text, retry_with, AlertEngine, AlertRule,
    BucketExemplars, CompareOp, CounterId, Cursor, FlightRecorder, FoldedStacks, GaugeId,
    HttpRequest, HttpResponse, RecordingRule, Registry, Retention, RetryPolicy, RuleSource,
    SpanLevel, TraceEvent, TraceKind, Tsdb, VirtualClock,
};
use sfi_vm::{EngineFault, FaultPlan};

use crate::serve::{
    render_query, ServeConfig, ServeEngine, ALERT_LOG_CAPACITY, NS_PER_TICK, TSDB_MAX_SERIES,
    TSDB_WINDOW,
};

/// Name of the fleet-level multi-window LS burn alert (the closed-loop
/// scale-out trigger).
pub const FLEET_BURN_RULE: &str = "fleet_slo_burn_ls";

/// Name of the per-member availability alert (the closed-loop quarantine
/// trigger). One rule covers every member: the availability gauge is a
/// per-`engine="<id>"` series, and alert state machines are per series.
pub const MEMBER_AVAILABILITY_RULE: &str = "member_availability";

/// Modeled round-trip of one successful in-process aggregator poll, in
/// virtual ns (a loopback scrape, not a WAN hop).
const POLL_RTT_NS: u64 = 50_000;

/// Modeled virtual-ns cost of a poll attempt that hangs until the
/// aggregator's timeout fires.
const POLL_TIMEOUT_NS: u64 = 2_000_000;

/// Configuration for a supervised fleet.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// One serving config per member. Seeds should differ per member
    /// ([`FleetConfig::paper_rig`] decorrelates them for you).
    pub members: Vec<ServeConfig>,
    /// Engine-level fault budget: `max_faults` faulted rounds retire a
    /// member for good (shared with the slot-level pool policy — same
    /// escalation ladder, one level up).
    pub policy: QuarantinePolicy,
    /// Engine-grade chaos plan (explicit kills and/or seeded rates). An
    /// empty plan never fires.
    pub chaos: FaultPlan,
    /// Aggregator poll schedule: bounded attempts with exponential
    /// backoff, charged to the virtual clock.
    pub retry: RetryPolicy,
    /// Capacity of the fleet's supervision trace ring (fault events are
    /// pinned past it: [`Retention::PinFaults`]).
    pub stream_capacity: usize,
    /// Elastic sizing on sustained occupancy crossings; `None` (the
    /// default) keeps the fleet static, byte-identical to the pre-elastic
    /// supervisor.
    pub autoscale: Option<AutoscalePolicy>,
    /// Closed-loop alerting: fleet-level recording + alert rules evaluated
    /// over a federated tsdb after every round, with alert-driven scale-out
    /// and member quarantine. `None` (the default) disables the rule engine
    /// entirely and keeps the supervisor byte-identical to the pre-alerting
    /// fleet.
    pub alerting: Option<FleetAlertPolicy>,
}

/// Closed-loop alerting policy. The supervisor ingests the federated
/// modeled registry (plus every member's SLO burn gauges and a per-member
/// poll-availability gauge) into its own [`Tsdb`] after each round, then
/// evaluates two built-in rules:
///
/// - [`FLEET_BURN_RULE`]: multi-window LS burn over the member burn series
///   (2-round fast / 6-round slow, both ≥ `burn_threshold_permille`).
///   While firing, the supervisor spawns surge members from `template` (up
///   to `max_members` live) — alerting and occupancy autoscale share the
///   same spawn machinery and the same monotone member-id seed derivation.
/// - [`MEMBER_AVAILABILITY_RULE`]: windowed mean of each member's poll
///   availability (permille; 2-round fast / 4-round slow, both ≤
///   `availability_floor_permille`). A firing member is quarantined —
///   retired with reason [`RetireReason::Quarantined`].
///
/// Every input is modeled state or a deterministic poll outcome, so the
/// whole control loop — alert timeline included — replays byte-identically
/// through checkpoint recovery.
#[derive(Debug, Clone)]
pub struct FleetAlertPolicy {
    /// Burn threshold (permille of the SLO target) both burn windows must
    /// reach; 1000 = p99.9 exactly at target.
    pub burn_threshold_permille: f64,
    /// Member availability floor in permille of polls succeeded.
    pub availability_floor_permille: f64,
    /// Spawn a member from `template` while [`FLEET_BURN_RULE`] fires.
    pub scale_out_on_burn: bool,
    /// Quarantine members whose [`MEMBER_AVAILABILITY_RULE`] series fires.
    pub quarantine_on_availability: bool,
    /// Live-member ceiling for alert-driven scale-out.
    pub max_members: usize,
    /// Config template for alert-spawned members (seeds re-derived per id).
    pub template: ServeConfig,
}

impl FleetAlertPolicy {
    /// The paper-rig loop: scale out at sustained burn ≥ 1000 permille
    /// (SLO breach), quarantine members under 500 permille availability.
    pub fn paper_rig(template: ServeConfig) -> FleetAlertPolicy {
        FleetAlertPolicy {
            burn_threshold_permille: 1000.0,
            availability_floor_permille: 500.0,
            scale_out_on_burn: true,
            quarantine_on_availability: true,
            max_members: 8,
            template,
        }
    }
}

/// Installs the built-in fleet rules described on [`FleetAlertPolicy`].
fn fleet_rules(alerts: &mut AlertEngine, p: &FleetAlertPolicy) {
    alerts.add_recording(RecordingRule {
        record: "sfi_fleet_goodput_permille",
        labels: Vec::new(),
        source: RuleSource::RatioPermille {
            num: "increase(sfi_qos_completed_total[8r])".to_owned(),
            den: "increase(sfi_qos_offered_total[8r])".to_owned(),
        },
    });
    alerts.add_alert(AlertRule {
        name: FLEET_BURN_RULE,
        fast: "avg_over_time(sfi_qos_slo_burn_permille{class=\"latency_sensitive\"}[2r])"
            .to_owned(),
        slow: "avg_over_time(sfi_qos_slo_burn_permille{class=\"latency_sensitive\"}[6r])"
            .to_owned(),
        op: CompareOp::Ge,
        threshold: p.burn_threshold_permille,
        for_rounds: 1,
    });
    alerts.add_alert(AlertRule {
        name: MEMBER_AVAILABILITY_RULE,
        fast: "avg_over_time(sfi_fleet_member_availability_permille[2r])".to_owned(),
        slow: "avg_over_time(sfi_fleet_member_availability_permille[4r])".to_owned(),
        op: CompareOp::Le,
        threshold: p.availability_floor_permille,
        for_rounds: 1,
    });
}

/// Elastic fleet sizing. The supervisor watches the mean engine occupancy
/// of the live members after every round; a sustained crossing of the high
/// watermark spawns a new member (up to `max_members`), a sustained
/// crossing below the low watermark retires the newest live member
/// gracefully (down to `min_members`, reason [`RetireReason::ScaledIn`] —
/// no dead-letters, no failed polls).
///
/// Occupancy is *modeled* state — a pure function of a member's config and
/// round count — so scale decisions replay byte-identically, including
/// through a mid-round crash recovered from checkpoint. New members derive
/// their seeds from the template by the same splitmix mix
/// [`FleetConfig::paper_rig`] uses, keyed by a monotone member id that is
/// never reused: the whole elastic trajectory is a pure function of the
/// initial config.
#[derive(Debug, Clone)]
pub struct AutoscalePolicy {
    /// Scale-in floor (never retires below this many live members).
    pub min_members: usize,
    /// Scale-out ceiling (never spawns above this many live members).
    pub max_members: usize,
    /// Mean occupancy at or above which a round counts toward scale-out.
    pub high_occupancy: f64,
    /// Mean occupancy at or below which a round counts toward scale-in.
    pub low_occupancy: f64,
    /// Consecutive qualifying rounds required before a scale event fires
    /// (clamped to ≥ 1); the streak resets after every event.
    pub sustain_rounds: u32,
    /// Config template for spawned members (seeds are re-derived per id).
    pub template: ServeConfig,
}

impl AutoscalePolicy {
    /// Watermarks sized for the paper rig: scale out when the color pools
    /// sit ≥ 95% full for 2 rounds, scale in below 50%.
    pub fn paper_rig(template: ServeConfig) -> AutoscalePolicy {
        AutoscalePolicy {
            min_members: 1,
            max_members: 8,
            high_occupancy: 0.95,
            low_occupancy: 0.5,
            sustain_rounds: 2,
            template,
        }
    }
}

/// Why a member was retired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetireReason {
    /// Fault budget exhausted ([`QuarantinePolicy::max_faults`]): queued
    /// work dead-lettered, every later poll fails.
    FaultBudget,
    /// Gracefully drained by the autoscaler on sustained low occupancy: no
    /// dead-letters, no failed polls.
    ScaledIn,
    /// Evicted by a firing [`MEMBER_AVAILABILITY_RULE`] alert: the member
    /// was answering too few polls, so the closed loop cut it loose before
    /// the fault budget would have (queued work dead-letters like a
    /// fault-budget retirement — the member was losing it anyway).
    Quarantined,
}

impl RetireReason {
    /// Stable lowercase name for JSON and telemetry.
    pub fn name(self) -> &'static str {
        match self {
            RetireReason::FaultBudget => "fault_budget",
            RetireReason::ScaledIn => "scaled_in",
            RetireReason::Quarantined => "quarantined",
        }
    }
}

impl FleetConfig {
    /// A fleet of `members` engines, each a [`ServeConfig::paper_rig`] with
    /// `cores` cores and a member-decorrelated seed.
    pub fn paper_rig(members: u32, cores: u32) -> FleetConfig {
        let members = (0..members)
            .map(|m| {
                let mut cfg = ServeConfig::paper_rig(cores);
                // Same splitmix-style mix the round seeds use: members are
                // decorrelated but the fleet stays a pure function of the
                // per-member base seeds.
                cfg.engine.seed = crate::serve::round_seed(cfg.engine.seed, 0x4_0000 + m as u64);
                cfg.probe.seed = crate::serve::round_seed(cfg.probe.seed, 0x8_0000 + m as u64);
                cfg
            })
            .collect();
        FleetConfig {
            members,
            policy: QuarantinePolicy::default(),
            chaos: FaultPlan::new(),
            retry: RetryPolicy::default(),
            stream_capacity: 4096,
            autoscale: None,
            alerting: None,
        }
    }
}

/// A member's lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberState {
    /// Serving rounds and answering polls.
    Live,
    /// Fault budget exhausted: frozen at its last checkpoint, queued work
    /// dead-lettered, answers no more polls.
    Retired,
}

impl MemberState {
    /// Stable lowercase name for JSON and telemetry.
    pub fn name(self) -> &'static str {
        match self {
            MemberState::Live => "live",
            MemberState::Retired => "retired",
        }
    }
}

/// A point-in-time view of one member (the `/fleet` endpoint's unit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberStatus {
    /// Member id (index into [`FleetConfig::members`]).
    pub id: u64,
    /// Lifecycle state.
    pub state: MemberState,
    /// Rounds the member's engine has completed.
    pub rounds: u64,
    /// Faulted rounds so far (any injected kind; at most one per round).
    pub faults: u32,
    /// Crash-recoveries by checkpoint replay.
    pub restarts: u64,
    /// Rounds completed as of the last checkpoint.
    pub checkpoint_rounds: u64,
    /// Rounds of queued work dead-lettered (the interrupted round at
    /// retirement plus one per round spent retired; scale-in retirement is
    /// graceful and dead-letters nothing).
    pub dead_lettered_rounds: u64,
    /// Requests dead-lettered by the member's own health probe (cumulative
    /// engine-level count, distinct from the supervisor's round ledger).
    pub dead_lettered_requests: u64,
    /// Why the member was retired (`None` while live).
    pub retire_reason: Option<RetireReason>,
}

/// One supervised member.
#[derive(Debug)]
struct Member {
    id: u64,
    cfg: ServeConfig,
    engine: ServeEngine,
    state: MemberState,
    faults: u32,
    restarts: u64,
    checkpoint_rounds: u64,
    dead_lettered_rounds: u64,
    retire_reason: Option<RetireReason>,
}

impl Member {
    /// An uninterrupted replay of this member's config for `rounds`
    /// rounds — the crash-recovery primitive *and* the byte-equality
    /// reference the `--check` gate diffs against.
    fn replay(cfg: &ServeConfig, rounds: u64) -> ServeEngine {
        let mut eng = ServeEngine::new(cfg.clone());
        for _ in 0..rounds {
            eng.run_round();
        }
        eng
    }

    fn status(&self) -> MemberStatus {
        MemberStatus {
            id: self.id,
            state: self.state,
            rounds: self.engine.rounds(),
            faults: self.faults,
            restarts: self.restarts,
            checkpoint_rounds: self.checkpoint_rounds,
            dead_lettered_rounds: self.dead_lettered_rounds,
            dead_lettered_requests: self.engine.dead_lettered(),
            retire_reason: self.retire_reason,
        }
    }
}

/// Fleet meta-registry counter ids (supervision bookkeeping; `/metrics`
/// only, never `/snapshot`).
#[derive(Debug)]
struct FleetMeta {
    rounds: CounterId,
    polls: CounterId,
    poll_failures: CounterId,
    poll_attempts: CounterId,
    faults_by_kind: [CounterId; 3],
    restarts: CounterId,
    retirements: CounterId,
    dead_lettered: CounterId,
    scale_out: CounterId,
    scale_in: CounterId,
    alert_scale_out: CounterId,
    quarantines: CounterId,
    members_live: GaugeId,
    scrapes: [CounterId; 8],
}

impl FleetMeta {
    fn register(reg: &mut Registry) -> FleetMeta {
        FleetMeta {
            rounds: reg.counter("sfi_fleet_rounds_total"),
            polls: reg.counter("sfi_fleet_polls_total"),
            poll_failures: reg.counter("sfi_fleet_poll_failures_total"),
            poll_attempts: reg.counter("sfi_fleet_poll_attempts_total"),
            faults_by_kind: [
                EngineFault::HangOnAccept,
                EngineFault::TornResponse,
                EngineFault::MidRoundPanic,
            ]
            .map(|f| reg.counter_with("sfi_fleet_member_faults_total", &[("kind", f.name())])),
            restarts: reg.counter("sfi_fleet_restarts_total"),
            retirements: reg.counter("sfi_fleet_retirements_total"),
            dead_lettered: reg.counter("sfi_fleet_dead_lettered_rounds_total"),
            scale_out: reg.counter("sfi_fleet_scale_out_total"),
            scale_in: reg.counter("sfi_fleet_scale_in_total"),
            alert_scale_out: reg.counter("sfi_fleet_alert_scale_out_total"),
            quarantines: reg.counter("sfi_fleet_quarantines_total"),
            members_live: reg.gauge("sfi_fleet_members_live"),
            scrapes: ["metrics", "snapshot", "trace", "healthz", "fleet", "profile", "alerts", "query"]
                .map(|ep| reg.counter_with("sfi_fleet_scrapes_total", &[("endpoint", ep)])),
        }
    }
}

/// The supervised fleet: members, their lifecycle, the aggregator, and the
/// federated scrape surface. Drive it with [`FleetSupervisor::run_round`];
/// scrape it through the endpoint renderers.
#[derive(Debug)]
pub struct FleetSupervisor {
    policy: QuarantinePolicy,
    retry: RetryPolicy,
    chaos: FaultPlan,
    members: Vec<Member>,
    /// Virtual time: round durations, poll RTTs, timeouts and backoff all
    /// advance this clock, so the supervision trace is byte-reproducible.
    clock: VirtualClock,
    /// The supervision trace: member lifecycle + poll outcomes, fault
    /// events pinned.
    stream: FlightRecorder,
    /// Supervision bookkeeping (merged into `/metrics` only).
    reg: Registry,
    meta: FleetMeta,
    rounds: u64,
    polls: u64,
    failed_polls: u64,
    autoscale: Option<AutoscalePolicy>,
    alerting: Option<FleetAlertPolicy>,
    /// Federated time-series store: the merged modeled registry, member
    /// burn gauges and per-member poll-availability gauges, ingested once
    /// per round. Backs `/query` and the fleet rule engine. Pure function
    /// of `(config, rounds)` — every input is modeled state or a
    /// deterministic poll outcome.
    tsdb: Tsdb,
    /// Fleet rule engine (recording rules + the closed-loop alerts).
    alerts: AlertEngine,
    /// Next member id to assign — monotone, never reused, so spawned
    /// members' derived seeds are a pure function of the spawn order.
    next_member_id: u64,
    /// Consecutive rounds at/above the high watermark.
    high_streak: u32,
    /// Consecutive rounds at/below the low watermark.
    low_streak: u32,
}

impl FleetSupervisor {
    /// A fresh fleet; no rounds run yet, all members live.
    pub fn new(cfg: FleetConfig) -> FleetSupervisor {
        let mut reg = Registry::new();
        let meta = FleetMeta::register(&mut reg);
        let mut clock = VirtualClock::new();
        let mut stream = FlightRecorder::with_retention(cfg.stream_capacity, Retention::PinFaults);
        let members: Vec<Member> = cfg
            .members
            .into_iter()
            .enumerate()
            .map(|(i, mcfg)| Member {
                id: i as u64,
                engine: ServeEngine::new(mcfg.clone()),
                cfg: mcfg,
                state: MemberState::Live,
                faults: 0,
                restarts: 0,
                checkpoint_rounds: 0,
                dead_lettered_rounds: 0,
                retire_reason: None,
            })
            .collect();
        for m in &members {
            stream.record(TraceEvent {
                tick: clock.now(),
                core: m.id as u32,
                sandbox: m.id,
                kind: TraceKind::Spawn,
                arg: 0,
            });
            clock.advance(1);
        }
        reg.set(meta.members_live, members.len() as i64);
        let next_member_id = members.len() as u64;
        let mut alerts = AlertEngine::new(ALERT_LOG_CAPACITY);
        if let Some(p) = &cfg.alerting {
            fleet_rules(&mut alerts, p);
        }
        FleetSupervisor {
            policy: cfg.policy,
            retry: cfg.retry,
            chaos: cfg.chaos,
            members,
            clock,
            stream,
            reg,
            meta,
            rounds: 0,
            polls: 0,
            failed_polls: 0,
            autoscale: cfg.autoscale,
            alerting: cfg.alerting,
            tsdb: Tsdb::new(TSDB_WINDOW, TSDB_MAX_SERIES),
            alerts,
            next_member_id,
            high_streak: 0,
            low_streak: 0,
        }
    }

    /// Drives one fleet round: every live member runs an engine round
    /// (under chaos, with crash-recovery), then the aggregator polls it
    /// under the retry budget. Retired members contribute a dead-lettered
    /// round and a failed poll.
    pub fn run_round(&mut self) {
        let r = self.rounds;
        // Per-member poll outcomes this round, feeding the availability
        // gauge series behind the quarantine alert.
        let mut poll_ok: Vec<(u64, bool)> = Vec::new();
        for idx in 0..self.members.len() {
            if self.members[idx].state == MemberState::Retired {
                // A gracefully drained member holds no queued work and is
                // off the poll schedule entirely — retirement by scale-in
                // must not bleed availability.
                if self.members[idx].retire_reason == Some(RetireReason::ScaledIn) {
                    continue;
                }
                self.members[idx].dead_lettered_rounds += 1;
                self.reg.inc(self.meta.dead_lettered);
                self.polls += 1;
                self.failed_polls += 1;
                self.reg.inc(self.meta.polls);
                self.reg.inc(self.meta.poll_failures);
                poll_ok.push((self.members[idx].id, false));
                continue;
            }
            // The round's attempt-0 chaos draw decides the member's fate:
            // a mid-round panic strikes the driver; a hang or torn response
            // strikes the first poll attempt instead.
            let fault0 = self.chaos.engine_fires(self.members[idx].id, r, 0);
            let duration_ns = self.members[idx].cfg.engine.duration_ms * 1_000_000;
            // With spans on, the member's round is the root (level-0) span
            // of every request tree it contains (DESIGN.md §14).
            let spans = self.members[idx].cfg.engine.spans;
            let member_id = self.members[idx].id;
            let round_tid =
                crate::shard::trace_id(self.members[idx].cfg.engine.seed ^ 0xF1EE_7000, r);
            if spans {
                self.stream.record(TraceEvent {
                    tick: self.clock.now(),
                    core: member_id as u32,
                    sandbox: round_tid,
                    kind: TraceKind::Flow,
                    arg: pack_span(SpanLevel::FleetMember, true, false, member_id),
                });
            }
            if fault0 == Some(EngineFault::MidRoundPanic) {
                self.crash_and_recover(idx, r);
            } else {
                self.members[idx].engine.run_round();
                self.members[idx].checkpoint_rounds = self.members[idx].engine.rounds();
            }
            self.clock.advance(duration_ns);
            if spans {
                self.stream.record(TraceEvent {
                    tick: self.clock.now(),
                    core: member_id as u32,
                    sandbox: round_tid,
                    kind: TraceKind::Flow,
                    arg: pack_span(SpanLevel::FleetMember, false, true, member_id),
                });
            }
            if let Some(f) = fault0 {
                self.note_fault(idx, f);
            }
            // Budget check before the poll: a round whose fault exhausted
            // the budget is dead-lettered — its work is lost, so it counts
            // as a failed poll, not a served one.
            if self.members[idx].faults >= self.policy.max_faults {
                self.retire(idx, RetireReason::FaultBudget);
                self.members[idx].dead_lettered_rounds += 1;
                self.reg.inc(self.meta.dead_lettered);
                self.polls += 1;
                self.failed_polls += 1;
                self.reg.inc(self.meta.polls);
                self.reg.inc(self.meta.poll_failures);
                poll_ok.push((self.members[idx].id, false));
            } else {
                let ok = self.poll_member(idx, r, fault0);
                poll_ok.push((self.members[idx].id, ok));
            }
        }
        self.rounds += 1;
        self.reg.inc(self.meta.rounds);
        self.autoscale_pass();
        self.alert_pass(&poll_ok);
    }

    /// Ingests the round into the federated tsdb, evaluates the fleet
    /// rules, and acts on what fires: surge scale-out while the burn alert
    /// is up, quarantine for members whose availability alert is up. A
    /// no-op without an alerting policy.
    fn alert_pass(&mut self, poll_ok: &[(u64, bool)]) {
        let Some(policy) = self.alerting.clone() else { return };
        let round = self.rounds;
        let mut merged = self.merged_registry();
        for m in &self.members {
            merged.merge_labeled_from(m.engine.burn_registry(), "engine", &m.id.to_string());
        }
        self.tsdb.ingest(round, &merged);
        for (id, ok) in poll_ok {
            let key = format!("sfi_fleet_member_availability_permille{{engine=\"{id}\"}}");
            self.tsdb.store_gauge(&key, round, if *ok { 1000 } else { 0 });
        }
        for t in self.alerts.evaluate(round, &mut self.tsdb) {
            self.stream.record(TraceEvent {
                tick: self.clock.now(),
                core: 0,
                sandbox: t.rule_idx as u64,
                kind: TraceKind::Alert,
                arg: t.transition.code(),
            });
        }
        if policy.scale_out_on_burn
            && self.alerts.is_firing(FLEET_BURN_RULE)
            && self.members_live() < policy.max_members
        {
            self.scale_out_from(&policy.template, 3);
            self.reg.inc(self.meta.alert_scale_out);
        }
        if policy.quarantine_on_availability {
            for key in self.alerts.firing_series(MEMBER_AVAILABILITY_RULE) {
                if let Some(idx) = self.member_idx_of_series(&key) {
                    if self.members[idx].state == MemberState::Live {
                        self.retire(idx, RetireReason::Quarantined);
                        self.reg.inc(self.meta.quarantines);
                    }
                }
            }
        }
    }

    /// Resolves the `engine="<id>"` label of an availability alert series
    /// back to a member index.
    fn member_idx_of_series(&self, key: &str) -> Option<usize> {
        let rest = &key[key.find("engine=\"")? + "engine=\"".len()..];
        let id: u64 = rest[..rest.find('"')?].parse().ok()?;
        self.members.iter().position(|m| m.id == id)
    }

    /// Evaluates the autoscale watermarks after a round: mean live-member
    /// occupancy against the policy, with a sustain streak before any
    /// event. Occupancy is modeled state, so this whole pass — and
    /// therefore the fleet's size trajectory — replays byte-identically,
    /// crash recovery included.
    fn autoscale_pass(&mut self) {
        let Some(policy) = &self.autoscale else { return };
        let live: Vec<usize> = (0..self.members.len())
            .filter(|i| self.members[*i].state == MemberState::Live)
            .collect();
        if live.is_empty() {
            return;
        }
        let occ = live.iter().map(|i| self.members[*i].engine.occupancy()).sum::<f64>()
            / live.len() as f64;
        let sustain = policy.sustain_rounds.max(1);
        if occ >= policy.high_occupancy {
            self.high_streak += 1;
        } else {
            self.high_streak = 0;
        }
        if occ <= policy.low_occupancy {
            self.low_streak += 1;
        } else {
            self.low_streak = 0;
        }
        if self.high_streak >= sustain && live.len() < policy.max_members {
            self.high_streak = 0;
            self.scale_out();
        } else if self.low_streak >= sustain && live.len() > policy.min_members {
            self.low_streak = 0;
            // Drain the newest live member first (LIFO: the scale-out
            // surge capacity goes first, the founding members last).
            let idx = *live.last().expect("nonempty");
            self.scale_in(idx);
        }
    }

    /// Spawns a new member from the autoscale template with seeds derived
    /// from its (monotone, never-reused) id — the same splitmix mix
    /// [`FleetConfig::paper_rig`] applies to the founding members.
    fn scale_out(&mut self) {
        let template = self.autoscale.as_ref().expect("autoscale_pass checked").template.clone();
        self.scale_out_from(&template, 2);
    }

    /// Spawns a member from `template` with seeds derived from the new
    /// (monotone, never-reused) id. `spawn_arg` distinguishes the spawn
    /// kinds on the trace (2 = occupancy autoscale, 3 = burn alert).
    fn scale_out_from(&mut self, template: &ServeConfig, spawn_arg: u64) {
        let id = self.next_member_id;
        self.next_member_id += 1;
        let mut cfg = template.clone();
        cfg.engine.seed = crate::serve::round_seed(template.engine.seed, 0x4_0000 + id);
        cfg.probe.seed = crate::serve::round_seed(template.probe.seed, 0x8_0000 + id);
        self.members.push(Member {
            id,
            engine: ServeEngine::new(cfg.clone()),
            cfg,
            state: MemberState::Live,
            faults: 0,
            restarts: 0,
            checkpoint_rounds: 0,
            dead_lettered_rounds: 0,
            retire_reason: None,
        });
        self.reg.inc(self.meta.scale_out);
        self.reg.set(self.meta.members_live, self.members_live() as i64);
        self.stream.record(TraceEvent {
            tick: self.clock.now(),
            core: id as u32,
            sandbox: id,
            kind: TraceKind::Spawn,
            arg: spawn_arg,
        });
    }

    /// Gracefully retires member `idx` (reason `ScaledIn`): it drains off
    /// the round and poll schedules without dead-letters or failed polls,
    /// and its frozen registry stays on the scrape surface.
    fn scale_in(&mut self, idx: usize) {
        self.retire(idx, RetireReason::ScaledIn);
        self.reg.inc(self.meta.scale_in);
    }

    /// Runs member `idx`'s round with a real injected panic, catches the
    /// unwind, discards the torn engine, and — if the fault budget allows —
    /// recovers by replaying the checkpoint and re-running the interrupted
    /// round. Decrementing nothing and renumbering nothing: the recovered
    /// engine's modeled state is byte-equal to an uninterrupted run.
    fn crash_and_recover(&mut self, idx: usize, round: u64) {
        let m = &mut self.members[idx];
        let crashed = catch_unwind(AssertUnwindSafe(|| {
            m.engine.run_round();
            // The panic lands after the round mutated the engine but
            // *before* the supervisor advanced the checkpoint: the engine
            // is ahead of its checkpoint and cannot be trusted.
            panic!("chaos: injected mid-round panic (member {}, round {round})", m.id);
        }));
        assert!(crashed.is_err(), "injected panic must unwind");
        let checkpoint = m.checkpoint_rounds;
        let will_retire = m.faults + 1 >= self.policy.max_faults;
        // Replay to the checkpoint in both cases; only a surviving member
        // re-runs the interrupted round (a retiree's round is dead-lettered
        // by the caller's budget check).
        let mut fresh = Member::replay(&m.cfg, checkpoint);
        if !will_retire {
            fresh.run_round();
            m.checkpoint_rounds = fresh.rounds();
            m.restarts += 1;
        }
        m.engine = fresh;
        if !will_retire {
            self.reg.inc(self.meta.restarts);
            self.stream.record(TraceEvent {
                tick: self.clock.now(),
                core: idx as u32,
                sandbox: idx as u64,
                kind: TraceKind::Spawn,
                arg: 1,
            });
        }
    }

    /// Records an injected fault against member `idx` (telemetry + trace;
    /// the budget itself is checked by the round driver).
    fn note_fault(&mut self, idx: usize, fault: EngineFault) {
        self.members[idx].faults += 1;
        let kind_idx = EngineFault::ALL.iter().position(|f| *f == fault).expect("known kind");
        self.reg.inc(self.meta.faults_by_kind[kind_idx]);
        self.stream.record(TraceEvent {
            tick: self.clock.now(),
            core: idx as u32,
            sandbox: idx as u64,
            kind: TraceKind::Trap,
            arg: kind_idx as u64,
        });
    }

    /// Retires member `idx`: frozen at its checkpoint, no more rounds or
    /// polls. The engine is already clean (crash recovery replays before
    /// the budget check), so the frozen registry stays scrapeable. The
    /// `retirements` counter tracks fault-budget evictions only; graceful
    /// scale-in is counted by `scale_in` and alert quarantine by
    /// `quarantines`. The trace `arg` encodes the reason (1 = fault budget,
    /// 2 = scaled in, 3 = quarantined).
    fn retire(&mut self, idx: usize, reason: RetireReason) {
        self.members[idx].state = MemberState::Retired;
        self.members[idx].retire_reason = Some(reason);
        if reason == RetireReason::FaultBudget {
            self.reg.inc(self.meta.retirements);
        }
        let live = self.members.iter().filter(|m| m.state == MemberState::Live).count();
        self.reg.set(self.meta.members_live, live as i64);
        self.stream.record(TraceEvent {
            tick: self.clock.now(),
            core: idx as u32,
            sandbox: idx as u64,
            kind: TraceKind::Recycle,
            arg: match reason {
                RetireReason::FaultBudget => 1,
                RetireReason::ScaledIn => 2,
                RetireReason::Quarantined => 3,
            },
        });
    }

    /// The aggregator's poll of member `idx` after round `round`: scrapes
    /// the member's `/healthz` and `/metrics` renderings in-process, under
    /// the retry budget. `fault0` is the round's attempt-0 draw (already
    /// taken by the driver); retries draw fresh from the seeded stream.
    /// Returns whether the poll succeeded within budget.
    fn poll_member(&mut self, idx: usize, round: u64, fault0: Option<EngineFault>) -> bool {
        self.polls += 1;
        self.reg.inc(self.meta.polls);
        let member_id = self.members[idx].id;
        // Mid-round panics were handled by the driver; what reaches the
        // poll from attempt 0 is the scrape-phase kinds only.
        let poll_fault0 = fault0
            .filter(|f| matches!(f, EngineFault::HangOnAccept | EngineFault::TornResponse));
        let engine = &self.members[idx].engine;
        let chaos = &mut self.chaos;
        // Both retry closures (backoff and attempt) charge the virtual
        // clock; share it through a RefCell — single-threaded, no borrow
        // overlaps at runtime.
        let clock = std::cell::RefCell::new(&mut self.clock);
        let stream = &mut self.stream;
        let outcome = retry_with(
            &self.retry,
            |backoff_ms| clock.borrow_mut().advance(backoff_ms * 1_000_000),
            |attempt| {
                let mut clock = clock.borrow_mut();
                stream.record(TraceEvent {
                    tick: clock.now(),
                    core: idx as u32,
                    sandbox: member_id,
                    kind: TraceKind::Enter,
                    arg: attempt as u64,
                });
                let fault = if attempt == 0 {
                    poll_fault0
                } else {
                    chaos.engine_fires(member_id, round, attempt)
                };
                match fault {
                    None => {
                        clock.advance(POLL_RTT_NS);
                        let health = engine.healthz_body(0.0);
                        let metrics = engine.metrics_text();
                        if json_is_valid(&health) && !metrics.is_empty() {
                            Ok(())
                        } else {
                            Err(EngineFault::TornResponse)
                        }
                    }
                    Some(EngineFault::TornResponse) => {
                        // The member answers, but the connection is cut
                        // mid-body: half a JSON document fails validation.
                        clock.advance(POLL_RTT_NS);
                        let health = engine.healthz_body(0.0);
                        let torn = &health[..health.len() / 2];
                        assert!(!json_is_valid(torn), "torn body must not validate");
                        Err(EngineFault::TornResponse)
                    }
                    Some(f) => {
                        // Hang on accept (or a member that died mid-poll):
                        // nothing arrives until the aggregator's timeout.
                        clock.advance(POLL_TIMEOUT_NS);
                        Err(f)
                    }
                }
            },
        );
        match outcome {
            Ok(((), attempts)) => {
                self.reg.add(self.meta.poll_attempts, attempts as u64);
                self.stream.record(TraceEvent {
                    tick: self.clock.now(),
                    core: idx as u32,
                    sandbox: member_id,
                    kind: TraceKind::Exit,
                    arg: attempts as u64,
                });
                // A poll that needed retries recovered within budget: the
                // member is back — the quarantine ladder's "rehabilitated"
                // rung, one level up.
                if attempts > 1 {
                    self.stream.record(TraceEvent {
                        tick: self.clock.now(),
                        core: idx as u32,
                        sandbox: member_id,
                        kind: TraceKind::Recycle,
                        arg: 0,
                    });
                }
                true
            }
            Err(_) => {
                self.reg.add(self.meta.poll_attempts, self.retry.max_attempts.max(1) as u64);
                self.failed_polls += 1;
                self.reg.inc(self.meta.poll_failures);
                false
            }
        }
    }

    /// Fleet rounds completed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The virtual clock (modeled supervision time).
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The supervision trace stream.
    pub fn stream(&self) -> &FlightRecorder {
        &self.stream
    }

    /// Fleet availability: the fraction of member-rounds whose poll
    /// succeeded (after recovery and retries). A retired member fails every
    /// subsequent round, so mass retirement drives this to the 0.0 floor —
    /// never below it, and never NaN (1.0 before any poll).
    pub fn availability(&self) -> f64 {
        if self.polls == 0 {
            1.0
        } else {
            1.0 - self.failed_polls as f64 / self.polls as f64
        }
    }

    /// Point-in-time member statuses, id order.
    pub fn members(&self) -> Vec<MemberStatus> {
        self.members.iter().map(Member::status).collect()
    }

    /// Live members.
    pub fn members_live(&self) -> usize {
        self.members.iter().filter(|m| m.state == MemberState::Live).count()
    }

    /// Mean occupancy of the live members (0.0 with none live) — the
    /// autoscaler's input signal, exposed for benches and tests.
    pub fn mean_occupancy(&self) -> f64 {
        let live: Vec<&Member> =
            self.members.iter().filter(|m| m.state == MemberState::Live).collect();
        if live.is_empty() {
            0.0
        } else {
            live.iter().map(|m| m.engine.occupancy()).sum::<f64>() / live.len() as f64
        }
    }

    /// One member's modeled snapshot (the byte-equality unit the `--check`
    /// gate diffs against an uninterrupted replay).
    pub fn member_snapshot(&self, id: u64) -> Option<String> {
        self.members.get(id as usize).map(|m| m.engine.snapshot_json())
    }

    /// One member's config and completed rounds — the checkpoint an
    /// external verifier replays.
    pub fn member_checkpoint(&self, id: u64) -> Option<(ServeConfig, u64)> {
        self.members.get(id as usize).map(|m| (m.cfg.clone(), m.engine.rounds()))
    }

    /// The federated modeled registry: every member's cumulative registry
    /// merged under its `engine="<id>"` label. Built fresh per call —
    /// members keep owning their registries, so a retired member's frozen
    /// series stay visible.
    pub fn merged_registry(&self) -> Registry {
        let mut merged = Registry::new();
        for m in &self.members {
            merged.merge_labeled_from(m.engine.registry(), "engine", &m.id.to_string());
        }
        merged
    }

    /// `/metrics`: Prometheus text of the federated modeled registry plus
    /// the fleet meta registry.
    pub fn metrics_text(&self) -> String {
        let mut merged = self.merged_registry();
        merged.merge_from(&self.reg);
        merged.merge_from(self.alerts.derived());
        prometheus_text(&merged)
    }

    /// The federated time-series store behind `/query` and the fleet rules.
    pub fn tsdb(&self) -> &Tsdb {
        &self.tsdb
    }

    /// The fleet rule engine behind `/alerts`.
    pub fn alerts(&self) -> &AlertEngine {
        &self.alerts
    }

    /// `/alerts?since=<cursor>`: the fleet alert states and transition log
    /// — byte-identical across replays, checkpoint recovery included.
    pub fn alerts_body(&self, since: u64) -> String {
        let mut body = self.alerts.alerts_json(since);
        body.push('\n');
        body
    }

    /// `/query?expr=<urlencoded>`: one tsdb query over the federated store.
    pub fn query_body(&self, expr: &str) -> Result<String, String> {
        let rows = self.tsdb.query(expr)?;
        Ok(render_query(expr, self.tsdb.last_round(), &rows))
    }

    /// `/snapshot`: the federated modeled registry as JSON — equal to the
    /// label-disambiguated sum of the member snapshots, and (chaos or not)
    /// to a fault-free fleet of the same configs and round counts.
    pub fn snapshot_json(&self) -> String {
        json_snapshot(&self.merged_registry())
    }

    /// `/fleet`: per-member liveness, restart count and quarantine state.
    pub fn fleet_json(&self) -> String {
        let mut body = format!(
            "{{\"rounds\": {}, \"availability\": {:.6}, \"members_live\": {}, \"members\": [",
            self.rounds,
            self.availability(),
            self.members_live(),
        );
        for (i, m) in self.members.iter().enumerate() {
            if i > 0 {
                body.push_str(", ");
            }
            let s = m.status();
            body.push_str(&format!(
                "{{\"id\": {}, \"state\": \"{}\", \"rounds\": {}, \"faults\": {}, \
                 \"restarts\": {}, \"checkpoint_rounds\": {}, \"dead_lettered_rounds\": {}, \
                 \"dead_lettered_requests\": {}, \"retire_reason\": {}}}",
                s.id,
                s.state.name(),
                s.rounds,
                s.faults,
                s.restarts,
                s.checkpoint_rounds,
                s.dead_lettered_rounds,
                s.dead_lettered_requests,
                match s.retire_reason {
                    Some(r) => format!("\"{}\"", r.name()),
                    None => "null".to_string(),
                },
            ));
        }
        body.push_str("]}\n");
        body
    }

    /// `/profile`: the fleet-wide flamegraph — every member's folded
    /// engine stacks re-rooted under a `member_<id>` frame so per-member
    /// attribution survives the merge — plus the cross-member latency
    /// exemplars (shard-order-independent merge). Pure function of the
    /// modeled fleet state.
    pub fn profile_body(&self) -> String {
        let mut folded = FoldedStacks::new();
        let mut exemplars = BucketExemplars::new();
        for m in &self.members {
            for line in m.engine.profile_folded().render().lines() {
                if let Some((stack, value)) = line.rsplit_once(' ') {
                    if let Ok(v) = value.parse::<u64>() {
                        folded.add_folded(&format!("member_{};{stack}", m.id), v);
                    }
                }
            }
            exemplars.merge_from(m.engine.exemplars());
        }
        let lines: Vec<String> = folded
            .render()
            .lines()
            .map(|l| format!("\"{}\"", l.replace('\\', "\\\\").replace('"', "\\\"")))
            .collect();
        format!(
            "{{\"rounds\": {}, \"members\": {}, \"folded\": [{}], \"exemplars\": {}}}\n",
            self.rounds,
            self.members.len(),
            lines.join(", "),
            exemplars.render_json(),
        )
    }

    /// `/trace?since=<cursor>`: the supervision stream, same wire shape as
    /// the per-engine endpoint (metadata line + chrome-trace lines, gap
    /// marker when events were lost).
    pub fn trace_body(&self, since: u64) -> String {
        let d = self.stream.events_since(since);
        let mut lines = Vec::with_capacity(d.events.len() + 1);
        if d.dropped > 0 {
            let next_tick = d.events.first().map_or(0, |e| e.tick);
            lines.push(chrome_trace_gap_line(d.dropped, next_tick, NS_PER_TICK));
        }
        lines.extend(chrome_trace_lines(&d.events, NS_PER_TICK));
        let mut body = format!(
            "{{\"next\": {}, \"dropped\": {}, \"lines\": {}}}\n",
            d.next,
            d.dropped,
            lines.len()
        );
        for l in &lines {
            body.push_str(l);
            body.push('\n');
        }
        body
    }

    /// The post-mortem batch export of the supervision stream.
    pub fn trace_batch(&self) -> String {
        chrome_trace(&self.stream.events(), NS_PER_TICK)
    }

    /// `/healthz`: fleet availability and liveness. `uptime_seconds` is the
    /// one wall-clock field, as in the per-engine contract.
    pub fn healthz_body(&self, uptime_seconds: f64) -> String {
        let availability = self.availability();
        let live = self.members_live();
        let status = if live == 0 {
            "down"
        } else if availability >= 0.9 && live == self.members.len() {
            "ok"
        } else {
            "degraded"
        };
        format!(
            "{{\"status\": \"{}\", \"rounds\": {}, \"availability\": {:.6}, \
             \"members_live\": {}, \"members_total\": {}, \"uptime_seconds\": {:.3}}}\n",
            status,
            self.rounds,
            availability,
            live,
            self.members.len(),
            uptime_seconds
        )
    }

    /// Dispatches one request against the federated surface. GET only;
    /// `/quit` answers then stops the accept loop.
    pub fn route(&mut self, req: &HttpRequest, uptime_seconds: f64) -> (HttpResponse, bool) {
        if req.method != "GET" {
            return (HttpResponse::method_not_allowed(), false);
        }
        match req.path.as_str() {
            "/metrics" => {
                self.reg.inc(self.meta.scrapes[0]);
                (HttpResponse::prometheus(self.metrics_text()), false)
            }
            "/snapshot" => {
                self.reg.inc(self.meta.scrapes[1]);
                (HttpResponse::json(self.snapshot_json()), false)
            }
            "/trace" => {
                self.reg.inc(self.meta.scrapes[2]);
                match req.cursor("since") {
                    Cursor::Absent => (HttpResponse::json(self.trace_body(0)), false),
                    Cursor::At(since) => (HttpResponse::json(self.trace_body(since)), false),
                    Cursor::Malformed => (HttpResponse::bad_request("malformed since cursor"), false),
                }
            }
            "/healthz" => {
                self.reg.inc(self.meta.scrapes[3]);
                if self.members_live() == 0 {
                    return (HttpResponse::service_unavailable("no live members"), false);
                }
                (HttpResponse::json(self.healthz_body(uptime_seconds)), false)
            }
            "/fleet" => {
                self.reg.inc(self.meta.scrapes[4]);
                (HttpResponse::json(self.fleet_json()), false)
            }
            "/profile" => {
                self.reg.inc(self.meta.scrapes[5]);
                (HttpResponse::json(self.profile_body()), false)
            }
            "/alerts" => {
                self.reg.inc(self.meta.scrapes[6]);
                match req.cursor("since") {
                    Cursor::Absent => (HttpResponse::json(self.alerts_body(0)), false),
                    Cursor::At(since) => (HttpResponse::json(self.alerts_body(since)), false),
                    Cursor::Malformed => (HttpResponse::bad_request("malformed since cursor"), false),
                }
            }
            "/query" => {
                self.reg.inc(self.meta.scrapes[7]);
                let Some(raw) = req.query_str("expr") else {
                    return (HttpResponse::bad_request("missing expr parameter"), false);
                };
                let Some(expr) = percent_decode(raw) else {
                    return (HttpResponse::bad_request("malformed percent-encoding"), false);
                };
                match self.query_body(&expr) {
                    Ok(body) => (HttpResponse::json(body), false),
                    Err(e) => (HttpResponse::bad_request(&e), false),
                }
            }
            "/quit" => (HttpResponse::ok("text/plain", "bye\n".to_owned()), true),
            _ => (HttpResponse::not_found(), false),
        }
    }
}

/// Runs the blocking accept loop for a shared fleet: each request locks the
/// supervisor, routes, answers. Returns when `/quit` is served. A poisoned
/// lock (a driver thread that panicked mid-round) is recovered, not
/// propagated — the scrape surface must outlive member crashes.
pub fn fleet_serve_blocking(
    listener: &TcpListener,
    fleet: &Mutex<FleetSupervisor>,
    started: Instant,
) -> std::io::Result<()> {
    sfi_telemetry::serve(listener, |req| {
        let mut sup = fleet.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        sup.route(req, started.elapsed().as_secs_f64())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_fleet(n: u32) -> FleetConfig {
        let mut cfg = FleetConfig::paper_rig(n, 2);
        for m in &mut cfg.members {
            m.engine.duration_ms = 10;
            m.probe.duration_ms = 5;
        }
        cfg
    }

    fn silenced<T>(f: impl FnOnce() -> T) -> T {
        // Injected panics are caught, but the default hook still prints
        // them; suppress exactly those and keep everything else (genuine
        // assertion failures must stay visible). The hook is process-global
        // — fine for this crate's tests, the only injectors.
        std::panic::set_hook(Box::new(|info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .unwrap_or_default();
            if !msg.starts_with("chaos: injected") {
                eprintln!("{info}");
            }
        }));
        let out = f();
        let _ = std::panic::take_hook(); // restore the default hook
        out
    }

    #[test]
    fn fleet_profile_aggregates_members_and_roots_span_trees() {
        use sfi_telemetry::unpack_span;
        let mut cfg = small_fleet(2);
        for m in &mut cfg.members {
            m.engine.spans = true;
        }
        let mut fleet = FleetSupervisor::new(cfg);
        fleet.run_round();
        fleet.run_round();

        let req = HttpRequest::parse("GET /profile HTTP/1.1").unwrap();
        let (resp, stop) = fleet.route(&req, 0.0);
        assert!(!stop);
        assert_eq!(resp.status, 200);
        assert!(json_is_valid(&resp.body), "{}", resp.body);
        // Per-member re-rooted stacks survive the merge.
        assert!(resp.body.contains("member_0;engine;guest_compute"), "{}", resp.body);
        assert!(resp.body.contains("member_1;engine;guest_compute"));
        assert!(resp.body.contains("\"trace_id\""), "cross-member exemplars present");

        // The supervision stream roots each member round as a level-0 span.
        let roots: Vec<_> = fleet
            .stream()
            .events()
            .iter()
            .filter(|e| e.kind == TraceKind::Flow)
            .filter_map(|e| unpack_span(e.arg))
            .filter(|s| s.level == SpanLevel::FleetMember)
            .collect();
        assert_eq!(roots.len(), 8, "2 members × 2 rounds × (start + end)");
        assert!(roots.iter().any(|s| s.start && s.detail == 0));
        assert!(roots.iter().any(|s| s.end && s.detail == 1));

        // Spans never perturb the modeled fleet state: a spans-off fleet of
        // the same seeds replays the identical snapshot once the span-edge
        // counter — the one series the profiler itself adds — is stripped.
        let strip_span_counter = |json: &str| -> String {
            let mut out = json.to_owned();
            while let Some(i) = out.find("\"sfi_shard_span_events_total") {
                let rest = &out[i..];
                let end = i + rest.find(", ").map_or(rest.len(), |e| e + 2);
                out = format!("{}{}", &out[..i], &out[end..]);
            }
            out
        };
        let mut quiet = FleetSupervisor::new(small_fleet(2));
        quiet.run_round();
        quiet.run_round();
        let on = fleet.snapshot_json();
        assert!(on.contains("sfi_shard_span_events_total"));
        let off = quiet.snapshot_json();
        assert!(!off.contains("sfi_shard_span_events_total"));
        assert_eq!(strip_span_counter(&on), off);
    }

    #[test]
    fn fault_free_fleet_matches_independent_replays() {
        let mut fleet = FleetSupervisor::new(small_fleet(3));
        for _ in 0..3 {
            fleet.run_round();
        }
        assert_eq!(fleet.availability(), 1.0);
        assert_eq!(fleet.members_live(), 3);
        // Each member equals an uninterrupted replay of its checkpoint.
        for id in 0..3u64 {
            let (cfg, rounds) = fleet.member_checkpoint(id).unwrap();
            assert_eq!(rounds, 3);
            let replay = Member::replay(&cfg, rounds);
            assert_eq!(
                fleet.member_snapshot(id).unwrap(),
                replay.snapshot_json(),
                "member {id} diverged from its replay"
            );
        }
        // The fleet snapshot equals the label-disambiguated sum.
        let mut manual = Registry::new();
        for id in 0..3u64 {
            let (cfg, rounds) = fleet.member_checkpoint(id).unwrap();
            let replay = Member::replay(&cfg, rounds);
            manual.merge_labeled_from(replay.registry(), "engine", &id.to_string());
        }
        assert_eq!(fleet.snapshot_json(), json_snapshot(&manual));
        assert!(fleet.snapshot_json().contains("engine=\\\"2\\\""), "engine labels present");
    }

    #[test]
    fn mid_round_panic_recovers_byte_equal_by_checkpoint_replay() {
        silenced(|| {
            let mut cfg = small_fleet(2);
            cfg.chaos = FaultPlan::new().engine_fail_at(1, 1, EngineFault::MidRoundPanic);
            let mut fleet = FleetSupervisor::new(cfg);
            for _ in 0..3 {
                fleet.run_round();
            }
            let status = fleet.members();
            assert_eq!(status[1].restarts, 1, "member 1 crashed and recovered");
            assert_eq!(status[1].faults, 1);
            assert_eq!(status[1].state, MemberState::Live);
            assert_eq!(status[1].rounds, 3, "interrupted round re-ran");
            assert_eq!(status[0].restarts, 0);
            // Recovered state is byte-equal to an uninterrupted run.
            let (mcfg, rounds) = fleet.member_checkpoint(1).unwrap();
            assert_eq!(
                fleet.member_snapshot(1).unwrap(),
                Member::replay(&mcfg, rounds).snapshot_json()
            );
            // The poll after recovery succeeded: availability stays 1.0
            // (the work was replayed, not lost).
            assert_eq!(fleet.availability(), 1.0);
            // The fault is on the supervision ledger.
            let metrics = fleet.metrics_text();
            assert!(
                metrics
                    .contains("sfi_fleet_member_faults_total{kind=\"mid_round_panic\"} 1"),
                "{metrics}"
            );
            assert!(metrics.contains("sfi_fleet_restarts_total 1"), "{metrics}");
        });
    }

    #[test]
    fn chaos_changes_only_the_injected_fault_series() {
        silenced(|| {
            let quiet = {
                let mut fleet = FleetSupervisor::new(small_fleet(2));
                for _ in 0..3 {
                    fleet.run_round();
                }
                fleet.snapshot_json()
            };
            let mut cfg = small_fleet(2);
            cfg.chaos = FaultPlan::new()
                .engine_fail_at(0, 0, EngineFault::MidRoundPanic)
                .engine_fail_at(1, 1, EngineFault::HangOnAccept)
                .engine_fail_at(1, 2, EngineFault::TornResponse);
            let mut fleet = FleetSupervisor::new(cfg);
            for _ in 0..3 {
                fleet.run_round();
            }
            // Modeled state is chaos-invariant (recovery is byte-exact).
            assert_eq!(fleet.snapshot_json(), quiet, "chaos leaked into modeled series");
            // The injected-fault series differ — that, and only that, is
            // the visible difference.
            let metrics = fleet.metrics_text();
            for kind in ["mid_round_panic", "hang_on_accept", "torn_response"] {
                assert!(
                    metrics.contains(&format!(
                        "sfi_fleet_member_faults_total{{kind=\"{kind}\"}} 1"
                    )),
                    "{kind} missing from {metrics}"
                );
            }
            assert_eq!(fleet.availability(), 1.0, "all faults recovered within budget");
        });
    }

    #[test]
    fn budget_exhaustion_retires_and_dead_letters() {
        silenced(|| {
            let mut cfg = small_fleet(2);
            cfg.policy = QuarantinePolicy { ring_capacity: 2, max_faults: 2 };
            cfg.chaos = FaultPlan::new()
                .engine_fail_at(0, 0, EngineFault::MidRoundPanic)
                .engine_fail_at(0, 1, EngineFault::MidRoundPanic);
            let mut fleet = FleetSupervisor::new(cfg);
            for _ in 0..4 {
                fleet.run_round();
            }
            let status = fleet.members();
            assert_eq!(status[0].state, MemberState::Retired);
            assert_eq!(status[0].faults, 2);
            assert_eq!(status[0].restarts, 1, "first crash recovered, second retired");
            // Frozen at the checkpoint before the fatal round; later rounds
            // dead-lettered (the fatal round + rounds 2 and 3).
            assert_eq!(status[0].rounds, 1);
            assert_eq!(status[0].dead_lettered_rounds, 3);
            assert_eq!(fleet.members_live(), 1);
            // The frozen member still equals its replay (scrapeable corpse).
            let (mcfg, rounds) = fleet.member_checkpoint(0).unwrap();
            assert_eq!(
                fleet.member_snapshot(0).unwrap(),
                Member::replay(&mcfg, rounds).snapshot_json()
            );
            // Availability: member 0 failed rounds 1..4 (3 of 8 polls).
            assert!((fleet.availability() - 0.625).abs() < 1e-9, "{}", fleet.availability());
            let metrics = fleet.metrics_text();
            assert!(metrics.contains("sfi_fleet_retirements_total 1"), "{metrics}");
            assert!(metrics.contains("sfi_fleet_members_live 1"), "{metrics}");
            // /healthz degrades but stays valid JSON.
            let health = fleet.healthz_body(0.5);
            assert!(json_is_valid(&health), "{health}");
            assert!(health.contains("\"status\": \"degraded\""), "{health}");
        });
    }

    #[test]
    fn scrape_faults_burn_retries_not_availability() {
        let mut cfg = small_fleet(1);
        cfg.chaos = FaultPlan::new()
            .engine_fail_at(0, 0, EngineFault::HangOnAccept)
            .engine_fail_at(0, 1, EngineFault::TornResponse);
        let mut fleet = FleetSupervisor::new(cfg);
        let t0 = fleet.clock().now();
        fleet.run_round();
        let t1 = fleet.clock().now();
        fleet.run_round();
        assert_eq!(fleet.availability(), 1.0, "retries recovered both polls");
        let metrics = fleet.metrics_text();
        // Round 0: hang (timeout + backoff + clean retry) = 2 attempts;
        // round 1: torn = 2 attempts. 4 attempts over 2 polls.
        assert!(metrics.contains("sfi_fleet_poll_attempts_total 4"), "{metrics}");
        assert!(metrics.contains("sfi_fleet_poll_failures_total 0"), "{metrics}");
        // The hang charged the aggregator's timeout to the virtual clock.
        assert!(t1 - t0 >= POLL_TIMEOUT_NS, "timeout not charged: {}", t1 - t0);
        // Deterministic replay: same config, same virtual timeline.
        let mut cfg2 = small_fleet(1);
        cfg2.chaos = FaultPlan::new()
            .engine_fail_at(0, 0, EngineFault::HangOnAccept)
            .engine_fail_at(0, 1, EngineFault::TornResponse);
        let mut replay = FleetSupervisor::new(cfg2);
        replay.run_round();
        replay.run_round();
        assert_eq!(replay.clock().now(), fleet.clock().now());
        assert_eq!(replay.trace_batch(), fleet.trace_batch(), "recovery trace not reproducible");
    }

    #[test]
    fn fleet_endpoints_route_and_quit() {
        let mut fleet = FleetSupervisor::new(small_fleet(2));
        fleet.run_round();
        let get = |f: &mut FleetSupervisor, path: &str| {
            let req = HttpRequest::parse(&format!("GET {path} HTTP/1.1")).unwrap();
            f.route(&req, 0.25)
        };
        let (resp, _) = get(&mut fleet, "/fleet");
        assert_eq!(resp.status, 200);
        assert!(json_is_valid(&resp.body), "{}", resp.body);
        assert!(resp.body.contains("\"state\": \"live\""));
        let (resp, _) = get(&mut fleet, "/metrics");
        assert!(resp.body.contains("sfi_fleet_rounds_total 1"));
        assert!(resp.body.contains("engine=\"1\""), "member series labeled");
        let (resp, _) = get(&mut fleet, "/snapshot");
        assert!(json_is_valid(&resp.body));
        assert!(!resp.body.contains("sfi_fleet_"), "meta must not leak into /snapshot");
        let (resp, _) = get(&mut fleet, "/trace?since=0");
        assert!(resp.body.starts_with("{\"next\": "));
        let (resp, _) = get(&mut fleet, "/healthz");
        assert!(resp.body.contains("\"uptime_seconds\": 0.250"));
        let (resp, stop) = get(&mut fleet, "/quit");
        assert_eq!((resp.status, stop), (200, true));
        let (resp, _) = get(&mut fleet, "/nope");
        assert_eq!(resp.status, 404);
    }

    /// A small fleet with open-loop members at `rate_rps` and autoscale on
    /// (1–3 members, scale out ≥ 0.9 occupancy, in ≤ 0.5, sustain 2).
    fn elastic_fleet(members: u32, rate_rps: f64) -> FleetConfig {
        let mut cfg = small_fleet(members);
        for m in &mut cfg.members {
            m.engine.arrivals = crate::sim::ArrivalModel::Poisson { rate_rps };
        }
        let mut template = ServeConfig::paper_rig(2);
        template.engine.duration_ms = 10;
        template.probe.duration_ms = 5;
        template.engine.arrivals = crate::sim::ArrivalModel::Poisson { rate_rps };
        cfg.autoscale = Some(AutoscalePolicy {
            min_members: 1,
            max_members: 3,
            high_occupancy: 0.9,
            low_occupancy: 0.5,
            sustain_rounds: 2,
            template,
        });
        cfg
    }

    #[test]
    fn autoscaler_scales_out_on_sustained_saturation() {
        // 200k rps over 2 cores is ~2.5× the closed-loop saturation point:
        // occupancy pins at 1.0 and the fleet grows to the ceiling.
        let mut fleet = FleetSupervisor::new(elastic_fleet(1, 200_000.0));
        for _ in 0..8 {
            fleet.run_round();
        }
        assert_eq!(fleet.members_live(), 3, "grew to max_members");
        assert!(fleet.mean_occupancy() > 0.9, "{}", fleet.mean_occupancy());
        assert_eq!(fleet.availability(), 1.0, "scale events never fail polls");
        let metrics = fleet.metrics_text();
        assert!(metrics.contains("sfi_fleet_scale_out_total 2"), "{metrics}");
        assert!(metrics.contains("sfi_fleet_members_live 3"), "{metrics}");
        // Spawned members serve real rounds under their own engine label.
        assert!(fleet.snapshot_json().contains("engine=\\\"2\\\""));
        // The elastic trajectory is a pure function of the config.
        let mut again = FleetSupervisor::new(elastic_fleet(1, 200_000.0));
        for _ in 0..8 {
            again.run_round();
        }
        assert_eq!(fleet.fleet_json(), again.fleet_json());
        assert_eq!(fleet.snapshot_json(), again.snapshot_json());
    }

    #[test]
    fn autoscaler_drains_gracefully_on_low_load() {
        // 2k rps over 2 cores keeps ~1/15 of each color pool resident:
        // sustained low occupancy drains the fleet down to the floor,
        // newest member first, without bleeding availability.
        let mut fleet = FleetSupervisor::new(elastic_fleet(3, 2_000.0));
        for _ in 0..8 {
            fleet.run_round();
        }
        assert_eq!(fleet.members_live(), 1, "drained to min_members");
        assert_eq!(fleet.availability(), 1.0, "graceful drain never fails a poll");
        let status = fleet.members();
        assert_eq!(status[0].retire_reason, None, "founding member survives");
        for s in &status[1..] {
            assert_eq!(s.state, MemberState::Retired);
            assert_eq!(s.retire_reason, Some(RetireReason::ScaledIn));
            assert_eq!(s.dead_lettered_rounds, 0, "drain dead-letters nothing");
        }
        let body = fleet.fleet_json();
        assert!(json_is_valid(&body), "{body}");
        assert!(body.contains("\"retire_reason\": \"scaled_in\""), "{body}");
        assert!(body.contains("\"retire_reason\": null"), "{body}");
        assert!(body.contains("\"dead_lettered_requests\": "), "{body}");
        let metrics = fleet.metrics_text();
        assert!(metrics.contains("sfi_fleet_scale_in_total 2"), "{metrics}");
        assert!(
            metrics.contains("sfi_fleet_retirements_total 0"),
            "scale-in is not a fault-budget retirement: {metrics}"
        );
        // Drained members' frozen series stay on the scrape surface.
        assert!(fleet.snapshot_json().contains("engine=\\\"2\\\""));
    }

    /// An overloaded QoS fleet with the closed alerting loop on: 1 member
    /// at ~2.5× saturation, burn threshold tuned under the 10 ms-round
    /// ceiling (p999 ≤ round duration, so burn ≤ 200 permille of the 50 ms
    /// LS target).
    fn alerting_overload_fleet() -> FleetConfig {
        let mut cfg = small_fleet(1);
        for m in &mut cfg.members {
            m.engine.qos = Some(crate::qos::QosConfig::paper_rig());
            m.engine.arrivals = crate::sim::ArrivalModel::Poisson { rate_rps: 200_000.0 };
        }
        let mut template = cfg.members[0].clone();
        template.engine.seed = ServeConfig::paper_rig(2).engine.seed;
        let mut policy = FleetAlertPolicy::paper_rig(template);
        policy.burn_threshold_permille = 100.0;
        policy.max_members = 3;
        cfg.alerting = Some(policy);
        cfg
    }

    #[test]
    fn burn_alert_scales_out_and_timeline_survives_mid_round_crash() {
        silenced(|| {
            let mut fleet = FleetSupervisor::new(alerting_overload_fleet());
            for _ in 0..6 {
                fleet.run_round();
            }
            // The burn alert fired and drove surge scale-out to the cap.
            assert!(fleet.alerts().next_seq() > 0, "no alert transitions at 2.5× load");
            let alerts = fleet.alerts_body(0);
            assert!(alerts.contains(&format!("\"rule\": \"{FLEET_BURN_RULE}\"")), "{alerts}");
            assert!(alerts.contains("\"transition\": \"firing\""), "{alerts}");
            assert_eq!(fleet.members_live(), 3, "burn alert did not scale out");
            let metrics = fleet.metrics_text();
            assert!(metrics.contains("sfi_fleet_alert_scale_out_total 2"), "{metrics}");
            // Recording-rule output rides /metrics, never /snapshot.
            assert!(metrics.contains("sfi_fleet_goodput_permille"), "{metrics}");
            assert!(!fleet.snapshot_json().contains("sfi_fleet_goodput_permille"));
            // The federated store answers queries over member burn series.
            let q = fleet
                .query_body("avg_over_time(sfi_qos_slo_burn_permille{class=\"latency_sensitive\"}[2r])")
                .unwrap();
            assert!(q.contains("engine=\\\"0\\\""), "{q}");

            // A mid-round crash recovered from checkpoint replays the same
            // alert timeline, scale trajectory and modeled bytes.
            let mut cfg = alerting_overload_fleet();
            cfg.chaos = FaultPlan::new().engine_fail_at(0, 2, EngineFault::MidRoundPanic);
            let mut crashed = FleetSupervisor::new(cfg);
            for _ in 0..6 {
                crashed.run_round();
            }
            assert_eq!(crashed.members()[0].restarts, 1, "the crash really happened");
            assert_eq!(crashed.alerts_body(0), alerts, "crash bent the alert timeline");
            assert_eq!(crashed.snapshot_json(), fleet.snapshot_json());
            // The supervision ledger records the crash (faults, restarts)
            // but the size trajectory is identical.
            assert_eq!(crashed.members_live(), fleet.members_live());
        });
    }

    #[test]
    fn availability_alert_quarantines_failing_member_deterministically() {
        let mk = || {
            let mut cfg = small_fleet(2);
            // One-shot polls: every injected hang is a failed poll.
            cfg.retry = RetryPolicy::one_shot();
            cfg.policy = QuarantinePolicy { ring_capacity: 2, max_faults: 10 };
            let mut chaos = FaultPlan::new();
            for r in 0..6 {
                chaos = chaos.engine_fail_at(1, r, EngineFault::HangOnAccept);
            }
            cfg.chaos = chaos;
            let mut policy = FleetAlertPolicy::paper_rig(ServeConfig::paper_rig(2));
            policy.scale_out_on_burn = false;
            cfg.alerting = Some(policy);
            cfg
        };
        let mut fleet = FleetSupervisor::new(mk());
        for _ in 0..6 {
            fleet.run_round();
        }
        // Member 1's failed polls fired its availability series; the loop
        // quarantined it. Member 0 (availability 1000) is untouched.
        let status = fleet.members();
        assert_eq!(status[1].state, MemberState::Retired);
        assert_eq!(status[1].retire_reason, Some(RetireReason::Quarantined));
        assert_eq!(status[0].state, MemberState::Live);
        assert_eq!(status[0].retire_reason, None);
        let alerts = fleet.alerts_body(0);
        assert!(
            alerts.contains(&format!("\"rule\": \"{MEMBER_AVAILABILITY_RULE}\"")),
            "{alerts}"
        );
        assert!(alerts.contains("engine=\\\"1\\\""), "{alerts}");
        let metrics = fleet.metrics_text();
        assert!(metrics.contains("sfi_fleet_quarantines_total 1"), "{metrics}");
        assert!(fleet.fleet_json().contains("\"retire_reason\": \"quarantined\""));
        // The whole episode — alert log, supervision trace, member ledger —
        // replays byte-identically.
        let mut again = FleetSupervisor::new(mk());
        for _ in 0..6 {
            again.run_round();
        }
        assert_eq!(again.alerts_body(0), alerts);
        assert_eq!(again.trace_batch(), fleet.trace_batch());
        assert_eq!(again.fleet_json(), fleet.fleet_json());
    }

    #[test]
    fn fleet_alert_and_query_hygiene() {
        let mut fleet = FleetSupervisor::new(small_fleet(1));
        fleet.run_round();
        for path in ["/alerts?since=abc", "/trace?since=12x", "/query?expr=%Z1", "/query"] {
            let req = HttpRequest::parse(&format!("GET {path} HTTP/1.1")).unwrap();
            let (resp, _) = fleet.route(&req, 0.0);
            assert_eq!(resp.status, 400, "{path} must 400: {}", resp.body);
        }
        let (resp, _) = fleet.route(&HttpRequest::parse("GET /alerts HTTP/1.1").unwrap(), 0.0);
        assert_eq!((resp.status, resp.content_type), (200, "application/json"));
        assert!(json_is_valid(resp.body.trim_end()), "{}", resp.body);
        // Without an alerting policy the store is empty but the endpoints
        // still answer well-formed bodies.
        let (resp, _) = fleet
            .route(&HttpRequest::parse("GET /query?expr=sfi_shard_completed_total HTTP/1.1").unwrap(), 0.0);
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"results\": []"), "{}", resp.body);
    }

    #[test]
    fn autoscale_trajectory_is_chaos_invariant() {
        silenced(|| {
            let quiet = {
                let mut fleet = FleetSupervisor::new(elastic_fleet(1, 200_000.0));
                for _ in 0..6 {
                    fleet.run_round();
                }
                (fleet.members_live(), fleet.snapshot_json())
            };
            // A mid-round crash on the founding member while the fleet is
            // scaling: recovery replays the checkpoint, occupancy is modeled
            // state, so the scale decisions — and every spawned member's
            // series — land byte-identically.
            let mut cfg = elastic_fleet(1, 200_000.0);
            cfg.chaos = FaultPlan::new().engine_fail_at(0, 1, EngineFault::MidRoundPanic);
            let mut fleet = FleetSupervisor::new(cfg);
            for _ in 0..6 {
                fleet.run_round();
            }
            assert_eq!(fleet.members_live(), quiet.0, "chaos bent the size trajectory");
            assert_eq!(fleet.snapshot_json(), quiet.1, "chaos leaked into modeled series");
            assert_eq!(fleet.members()[0].restarts, 1, "the crash really happened");
        });
    }
}
