//! Multi-tenant QoS: SLO classes, weighted fair queueing and admission
//! control for the sharded engine.
//!
//! Tenants are mapped to one of three SLO classes by a stateless seeded
//! draw (the same splitmix construction the chaos layer uses), so class
//! assignment never consumes the request-stream RNG — enabling QoS on a
//! config leaves the generated arrivals byte-identical. Per core, each
//! class gets a bounded admission queue; freed resident slots are handed
//! out by weighted round-robin (a deficit-credit scheme: a class with
//! weight `w` is served up to `w` recycles before the scheduler rotates),
//! and watermarks on the aggregate queue depth shed the lowest classes
//! first, deterministically:
//!
//! - **Batch** is shed once the core's total backlog reaches
//!   [`QosConfig::shed_batch_depth`];
//! - **Standard** is shed at [`QosConfig::shed_standard_depth`];
//! - **Latency-sensitive** work is only dropped by its own bounded queue
//!   ([`QosConfig::queue_cap`]), never by the aggregate watermarks.
//!
//! Queues can only grow while every resident slot is occupied, so the
//! depth watermarks are equivalently occupancy watermarks: shedding starts
//! strictly after occupancy reaches 1.0 and backlog accumulates.

use std::collections::VecDeque;

use crate::sim::fault_draw;

/// The SLO class of a tenant's requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SloClass {
    /// Interactive, tail-latency-sensitive traffic (highest priority).
    LatencySensitive,
    /// Ordinary request/response traffic.
    Standard,
    /// Best-effort background work (first to shed).
    Batch,
}

impl SloClass {
    /// All classes, highest priority first (the scheduler's rotation and
    /// the shed ordering both follow this order).
    pub const ALL: [SloClass; 3] =
        [SloClass::LatencySensitive, SloClass::Standard, SloClass::Batch];

    /// Display name (used as the `class` label on telemetry series).
    pub fn name(self) -> &'static str {
        match self {
            SloClass::LatencySensitive => "latency_sensitive",
            SloClass::Standard => "standard",
            SloClass::Batch => "batch",
        }
    }

    /// Index into per-class arrays ([`SloClass::ALL`] order).
    pub fn idx(self) -> usize {
        match self {
            SloClass::LatencySensitive => 0,
            SloClass::Standard => 1,
            SloClass::Batch => 2,
        }
    }
}

/// QoS parameters for a multi-core run. `None` on the config disables the
/// layer entirely (legacy FIFO admission, byte-identical to PR-5).
#[derive(Debug, Clone, PartialEq)]
pub struct QosConfig {
    /// Tenant mix: the probability a request belongs to each class
    /// ([`SloClass::ALL`] order). Normalized at draw time.
    pub shares: [f64; 3],
    /// Weighted-round-robin credits per rotation ([`SloClass::ALL`] order;
    /// zero is clamped to 1).
    pub weights: [u32; 3],
    /// Per-class, per-core admission-queue bound; arrivals beyond it are
    /// shed regardless of class.
    pub queue_cap: usize,
    /// Aggregate per-core backlog at which batch arrivals are shed.
    pub shed_batch_depth: usize,
    /// Aggregate per-core backlog at which standard arrivals are also
    /// shed (latency-sensitive work is never shed by this watermark).
    pub shed_standard_depth: usize,
    /// Per-class p99.9 latency SLO targets in ms ([`SloClass::ALL`] order).
    /// The serving layer exports the burn rate against these as
    /// `sfi_qos_slo_burn_permille{class=…}` — 1000 means the observed
    /// p99.9 sits exactly at target, above means the budget is burning.
    pub slo_p999_ms: [f64; 3],
}

impl QosConfig {
    /// The rig used by the overload bench: a 20/50/30 tenant mix, 8/4/1
    /// service weights and watermarks sized to the 15-color pool.
    pub fn paper_rig() -> QosConfig {
        QosConfig {
            shares: [0.2, 0.5, 0.3],
            weights: [8, 4, 1],
            queue_cap: 64,
            shed_batch_depth: 24,
            shed_standard_depth: 96,
            slo_p999_ms: [50.0, 250.0, 2_000.0],
        }
    }
}

/// Stateless tenant-class draw for request `rid`: a pure function of
/// `(seed, rid, shares)` on a dedicated draw stream, so it neither
/// consumes nor perturbs the arrival RNG.
pub fn tenant_class(seed: u64, rid: u32, shares: &[f64; 3]) -> SloClass {
    let total: f64 = shares.iter().filter(|s| s.is_finite() && **s > 0.0).sum();
    if total <= 0.0 {
        return SloClass::Standard;
    }
    let u = fault_draw(seed ^ 0x7E4A47, u64::from(rid), 0) * total;
    let mut acc = 0.0;
    for (i, s) in shares.iter().enumerate() {
        if s.is_finite() && *s > 0.0 {
            acc += s;
            if u < acc {
                return SloClass::ALL[i];
            }
        }
    }
    SloClass::Batch
}

/// The outcome of offering one arrival to a core's admission queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Queued; will be admitted on a future slot recycle.
    Queued,
    /// Shed by a watermark or queue bound (never runs).
    Shed,
}

/// Per-core QoS admission state: three bounded queues plus the
/// weighted-round-robin credit scheduler.
#[derive(Debug, Clone)]
pub struct QosQueues {
    waits: [VecDeque<u32>; 3],
    credit: [u32; 3],
    weights: [u32; 3],
    cursor: usize,
}

impl QosQueues {
    /// Empty queues with full credits.
    pub fn new(cfg: &QosConfig) -> QosQueues {
        let weights = [cfg.weights[0].max(1), cfg.weights[1].max(1), cfg.weights[2].max(1)];
        QosQueues {
            waits: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            credit: weights,
            weights,
            cursor: 0,
        }
    }

    /// Total queued across classes.
    pub fn depth(&self) -> usize {
        self.waits.iter().map(VecDeque::len).sum()
    }

    /// Offers an arrival: sheds by the class's watermark / bound, queues
    /// otherwise. Deterministic — no randomness involved.
    pub fn offer(&mut self, cfg: &QosConfig, rid: u32, class: SloClass) -> Admission {
        let depth = self.depth();
        let q = &self.waits[class.idx()];
        let shed = q.len() >= cfg.queue_cap
            || match class {
                SloClass::Batch => depth >= cfg.shed_batch_depth,
                SloClass::Standard => depth >= cfg.shed_standard_depth,
                SloClass::LatencySensitive => false,
            };
        if shed {
            Admission::Shed
        } else {
            self.waits[class.idx()].push_back(rid);
            Admission::Queued
        }
    }

    /// Pops the next request by weighted round-robin: the cursor class is
    /// served while it has credit and queued work, then the rotation
    /// advances; credits refill when no backlogged class holds any.
    pub fn pop(&mut self) -> Option<(u32, SloClass)> {
        if self.depth() == 0 {
            return None;
        }
        loop {
            for k in 0..3 {
                let c = (self.cursor + k) % 3;
                if !self.waits[c].is_empty() && self.credit[c] > 0 {
                    self.credit[c] -= 1;
                    self.cursor = c;
                    let rid = self.waits[c].pop_front().expect("checked nonempty");
                    return Some((rid, SloClass::ALL[c]));
                }
            }
            // Every backlogged class is out of credit: start a new rotation.
            self.credit = self.weights;
            self.cursor = 0;
        }
    }
}

/// Per-class counters of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClassReport {
    /// Requests of this class that arrived.
    pub offered: u64,
    /// Requests that completed inside the window.
    pub completed: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Median completion latency (ms).
    pub p50_ms: f64,
    /// 99th-percentile completion latency (ms).
    pub p99_ms: f64,
}

/// QoS summary of a multi-core run (present when
/// `MultiCoreConfig::qos` is set).
#[derive(Debug, Clone, PartialEq)]
pub struct QosReport {
    /// Per-class counters, [`SloClass::ALL`] order.
    pub per_class: [ClassReport; 3],
    /// Total requests shed.
    pub shed_total: u64,
    /// Shed fraction of offered load (0 when nothing was offered).
    pub shed_rate: f64,
    /// Completions per second — throughput net of shed work.
    pub goodput_rps: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_classes_follow_shares_and_are_stateless() {
        let shares = [0.2, 0.5, 0.3];
        let mut counts = [0u64; 3];
        for rid in 0..20_000u32 {
            counts[tenant_class(0xBEEF, rid, &shares).idx()] += 1;
        }
        for (i, s) in shares.iter().enumerate() {
            let got = counts[i] as f64 / 20_000.0;
            assert!((got - s).abs() < 0.02, "class {i}: {got} vs share {s}");
        }
        // Pure function: same inputs, same class.
        assert_eq!(tenant_class(1, 42, &shares), tenant_class(1, 42, &shares));
        // Degenerate shares fall back without panicking.
        assert_eq!(tenant_class(1, 7, &[0.0, 0.0, 0.0]), SloClass::Standard);
        assert_eq!(tenant_class(1, 7, &[0.0, 0.0, 1.0]), SloClass::Batch);
    }

    #[test]
    fn wfq_serves_classes_by_weight() {
        let cfg = QosConfig { weights: [2, 1, 1], ..QosConfig::paper_rig() };
        let mut q = QosQueues::new(&cfg);
        for rid in 0..12 {
            let class = SloClass::ALL[(rid % 3) as usize];
            assert_eq!(q.offer(&cfg, rid, class), Admission::Queued);
        }
        // 4 per class queued. One full drain: LS must never trail.
        let mut order = Vec::new();
        while let Some((_, c)) = q.pop() {
            order.push(c);
        }
        assert_eq!(order.len(), 12);
        // First rotation serves 2×LS before any batch.
        let first_batch = order.iter().position(|c| *c == SloClass::Batch).unwrap();
        let ls_before = order[..first_batch]
            .iter()
            .filter(|c| **c == SloClass::LatencySensitive)
            .count();
        assert!(ls_before >= 2, "weight-2 LS served before weight-1 batch: {order:?}");
    }

    #[test]
    fn shed_ordering_is_lowest_class_first() {
        let cfg = QosConfig {
            queue_cap: 100,
            shed_batch_depth: 2,
            shed_standard_depth: 4,
            ..QosConfig::paper_rig()
        };
        let mut q = QosQueues::new(&cfg);
        assert_eq!(q.offer(&cfg, 0, SloClass::Batch), Admission::Queued);
        assert_eq!(q.offer(&cfg, 1, SloClass::Batch), Admission::Queued);
        // Depth 2: batch sheds, standard still admitted.
        assert_eq!(q.offer(&cfg, 2, SloClass::Batch), Admission::Shed);
        assert_eq!(q.offer(&cfg, 3, SloClass::Standard), Admission::Queued);
        assert_eq!(q.offer(&cfg, 4, SloClass::Standard), Admission::Queued);
        // Depth 4: standard sheds too; latency-sensitive never does (by
        // watermark — only its own bound can drop it).
        assert_eq!(q.offer(&cfg, 5, SloClass::Standard), Admission::Shed);
        assert_eq!(q.offer(&cfg, 6, SloClass::LatencySensitive), Admission::Queued);
    }

    #[test]
    fn per_class_bound_sheds_even_latency_sensitive() {
        let cfg = QosConfig {
            queue_cap: 1,
            shed_batch_depth: 1_000,
            shed_standard_depth: 1_000,
            ..QosConfig::paper_rig()
        };
        let mut q = QosQueues::new(&cfg);
        assert_eq!(q.offer(&cfg, 0, SloClass::LatencySensitive), Admission::Queued);
        assert_eq!(q.offer(&cfg, 1, SloClass::LatencySensitive), Admission::Shed);
    }

    #[test]
    fn zero_weights_are_clamped_not_starved() {
        let cfg = QosConfig { weights: [0, 0, 0], ..QosConfig::paper_rig() };
        let mut q = QosQueues::new(&cfg);
        q.offer(&cfg, 0, SloClass::Batch);
        assert_eq!(q.pop(), Some((0, SloClass::Batch)), "weight 0 must not deadlock");
        assert_eq!(q.pop(), None);
    }
}
