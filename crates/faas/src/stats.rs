//! Deterministic samplers and summary statistics.
//!
//! The offline crate set excludes `rand_distr`, so the Poisson and
//! exponential samplers the simulation needs (§6.4.3 draws IO delays "from
//! a Poisson distribution at 5 ms") are implemented here on top of `rand`.

use rand::Rng;

/// Samples a Poisson(λ) variate (Knuth's method — fine for the λ ≤ ~50
/// range the simulation uses).
pub fn poisson(rng: &mut impl Rng, lambda: f64) -> u64 {
    assert!(lambda > 0.0 && lambda < 500.0, "Knuth sampler needs small λ");
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// [`poisson`] guarded for arrival-rate use: λ ≤ 0 (an idle phase of a
/// schedule) yields 0 without touching the RNG stream, and λ is clamped
/// below the Knuth sampler's breakdown point so a hostile sweep
/// multiplier cannot panic the generator mid-run.
pub fn poisson_count(rng: &mut impl Rng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    poisson(rng, lambda.min(400.0))
}

/// Samples an Exponential(mean) variate.
pub fn exponential(rng: &mut impl Rng, mean: f64) -> f64 {
    let u: f64 = rng.gen::<f64>().max(1e-12);
    -mean * u.ln()
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Nearest-rank percentile by the index rule `sorted[⌊(len−1)·p⌋]` — the
/// one formula every report in this workspace uses for latency tails, kept
/// here so no bench or simulator re-derives its own variant. Empty input
/// yields 0.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
    percentile_sorted(&sorted, p)
}

/// [`percentile`] over an already-sorted slice (avoids re-sorting when
/// several quantiles are taken from one sample set).
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        0.0
    } else {
        sorted[((sorted.len() - 1) as f64 * p) as usize]
    }
}

/// Median ([`percentile`] at 0.50).
pub fn p50(xs: &[f64]) -> f64 {
    percentile(xs, 0.50)
}

/// 99th percentile ([`percentile`] at 0.99).
pub fn p99(xs: &[f64]) -> f64 {
    percentile(xs, 0.99)
}

/// Geometric mean (used by the SPEC figures).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_converges() {
        let mut rng = StdRng::seed_from_u64(7);
        let lambda = 5.0;
        let n = 20_000;
        let total: u64 = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
        let m = total as f64 / f64::from(n);
        assert!((m - lambda).abs() < 0.1, "Poisson mean {m} vs λ {lambda}");
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = StdRng::seed_from_u64(9);
        let mean_target = 3.0;
        let n = 20_000;
        let total: f64 = (0..n).map(|_| exponential(&mut rng, mean_target)).sum();
        let m = total / f64::from(n);
        assert!((m - mean_target).abs() < 0.1, "Exp mean {m}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let a: Vec<u64> =
            (0..10).map(|_| poisson(&mut StdRng::seed_from_u64(1), 4.0)).collect();
        let b: Vec<u64> =
            (0..10).map(|_| poisson(&mut StdRng::seed_from_u64(1), 4.0)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn percentiles_use_the_index_rule() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(p50(&xs), 50.0, "⌊99·0.5⌋ = 49 → 50.0");
        assert_eq!(p99(&xs), 99.0, "⌊99·0.99⌋ = 98 → 99.0");
        assert_eq!(percentile(&xs, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        // Input order must not matter.
        let mut rev = xs.clone();
        rev.reverse();
        assert_eq!(p99(&rev), p99(&xs));
        // The pre-sorted form agrees.
        assert_eq!(percentile_sorted(&xs, 0.99), p99(&xs));
    }

    #[test]
    fn poisson_count_guards_edge_lambdas() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(poisson_count(&mut rng, 0.0), 0);
        assert_eq!(poisson_count(&mut rng, -1.0), 0);
        // λ = 0 must not consume randomness: the next draw matches a fresh
        // stream (open-loop idle phases stay byte-compatible).
        let mut fresh = StdRng::seed_from_u64(3);
        assert_eq!(poisson_count(&mut rng, 4.0), poisson_count(&mut fresh, 4.0));
        // Far past the Knuth breakdown point: clamps instead of panicking.
        assert!(poisson_count(&mut rng, 1e9) > 0);
    }

    #[test]
    fn summary_stats() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.138).abs() < 0.01);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[1.0]), 0.0);
    }
}
