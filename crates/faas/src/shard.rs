//! The M-core sharded FaaS engine.
//!
//! Extends the single-core rig of [`crate::simulate`] across cores, the way
//! a production edge host would shard the paper's §6.4.3 workloads:
//!
//! - **Per-core run queues.** Every request has a *home core* chosen by the
//!   crate's consistent-hash ring ([`crate::hashlb::HashRing`]) over
//!   `core-0..core-{M-1}`, so placement is sticky and deterministic.
//! - **Per-core ColorGuard pools.** Each core owns a 15-color MPK pool, so
//!   resident capacity scales as `cores × 15`. A request occupies a color
//!   from admission to completion; when the pool is full, arrivals queue
//!   and are admitted on a slot recycle (quarantine scrub + re-color,
//!   charged as overhead). The multi-process comparator instead gives each
//!   core K worker processes, one resident instance each.
//! - **Deterministic work-stealing.** After every event, each idle core
//!   attempts one steal: the victim scan order is a seeded rotation (the
//!   same stateless splitmix draw the chaos layer uses), and the thief
//!   takes the *newest* task from the first victim with at least two queued
//!   — classic steal-from-the-back. A migration penalty (cold cache + dTLB
//!   refill on the thief) is charged to the stolen task.
//! - **Spawn model.** A request's first slice pays an instance spawn. With
//!   the compiled-code cache *cold* (disabled) every spawn pays full
//!   `sfi-core` codegen; *warm*, the first compile per cache domain fills
//!   the cache and every later spawn is a cache hit. ColorGuard's single
//!   address space shares one cache across all cores; each multi-process
//!   worker has its own, so the cold-compile tax is paid once per process.
//!
//! Everything — arrivals, compute, routing, steal order — is a pure
//! function of the seed, so `BENCH_multicore.json` replays byte-identically.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use sfi_telemetry::{
    pack_span, BucketExemplars, CycleHistogram, FlightRecorder, Registry, SpanLevel, TraceEvent,
    TraceKind,
};

use crate::hashlb::HashRing;
use crate::qos::{tenant_class, Admission, ClassReport, QosConfig, QosQueues, QosReport, SloClass};
use crate::sim::{fault_draw, generate_stream, ArrivalModel};
use crate::{FaasWorkload, ScalingMode, SimCosts};

/// One scheduling epoch / preemption quantum (ns).
const EPOCH_NS: u64 = 1_000_000;

/// Whether instance spawns may use the compiled-code cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheMode {
    /// Cache disabled: every spawn pays full codegen (the per-invoke
    /// compile tax).
    Cold,
    /// Cache enabled: the first compile per cache domain fills it; later
    /// spawns are hits.
    Warm,
}

impl CacheMode {
    /// Display name used in benchmark tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            CacheMode::Cold => "cold",
            CacheMode::Warm => "warm",
        }
    }
}

/// Modeled costs of instance spawn paths (calibrated against the
/// `sfi-runtime` engine: a cold spawn runs `sfi_core::compile`, a warm
/// spawn is a cache lookup plus pool instantiation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpawnModel {
    /// Full `sfi-core` codegen + instantiation (ns).
    pub cold_compile_ns: u64,
    /// Cache-hit spawn: key hash + `Arc` clone + instantiation (ns).
    pub warm_spawn_ns: u64,
    /// Recycling a freed slot for a queued request (madvise scrub +
    /// `pkey_mprotect` re-color + data write-in, ns).
    pub recycle_ns: u64,
    /// MPK colors per core — the per-core resident-instance capacity under
    /// ColorGuard.
    pub colors_per_core: u32,
}

impl Default for SpawnModel {
    fn default() -> Self {
        SpawnModel {
            cold_compile_ns: 150_000,
            warm_spawn_ns: 8_000,
            recycle_ns: 2_000,
            colors_per_core: 15,
        }
    }
}

/// Configuration for a multi-core run.
#[derive(Debug, Clone)]
pub struct MultiCoreConfig {
    /// Which workload.
    pub workload: FaasWorkload,
    /// Scaling strategy. [`ScalingMode::MultiProcess`]'s `processes` is
    /// interpreted *per core* here.
    pub mode: ScalingMode,
    /// Spawn cache behaviour.
    pub cache: CacheMode,
    /// Number of cores.
    pub cores: u32,
    /// Simulated duration in milliseconds.
    pub duration_ms: u64,
    /// New requests injected per 1 ms epoch, per core (offered load scales
    /// with the core count; closed-loop mode only).
    pub requests_per_epoch_per_core: u32,
    /// Arrival generation — closed-loop by default (byte-compatible with
    /// the legacy rig). Open-loop rates are *host-wide*, not per-core.
    pub arrivals: ArrivalModel,
    /// Multi-tenant QoS (SLO classes, weighted fair queueing, admission
    /// control). `None` — the default — is the legacy FIFO admission path,
    /// byte-identical to the pre-QoS engine.
    pub qos: Option<QosConfig>,
    /// Mean IO delay before a request's first compute stage (ms).
    pub io_mean_ms: f64,
    /// IO/compute stages per request.
    pub stages: u32,
    /// RNG seed.
    pub seed: u64,
    /// Scheduler cost constants (shared with the single-core rig).
    pub costs: SimCosts,
    /// Spawn-path cost model.
    pub spawn: SpawnModel,
    /// Per-core flight-recorder capacity in events (0 disables tracing —
    /// the telemetry-off configuration of the overhead gate). Events are
    /// stamped with simulated nanoseconds, so same-seed runs produce
    /// byte-identical traces.
    pub trace_capacity: usize,
    /// Emit per-request span events ([`TraceKind::Flow`]) and latency
    /// exemplars: queue-wait, admission and invoke edges keyed by a
    /// deterministic [`trace_id`]. Off by default — legacy configs keep
    /// byte-identical traces and reports (DESIGN.md §14).
    pub spans: bool,
}

impl MultiCoreConfig {
    /// The multi-core rig: FaaS-granularity requests (single compute stage
    /// after a ~1 ms arrival IO) at a per-core offered load that saturates
    /// the warm path, so throughput measures the schedulers rather than
    /// idle time.
    pub fn paper_rig(
        workload: FaasWorkload,
        mode: ScalingMode,
        cache: CacheMode,
        cores: u32,
    ) -> MultiCoreConfig {
        MultiCoreConfig {
            workload,
            mode,
            cache,
            cores,
            duration_ms: 400,
            requests_per_epoch_per_core: 40,
            arrivals: ArrivalModel::ClosedLoop,
            qos: None,
            io_mean_ms: 1.0,
            stages: 1,
            seed: 0x5E65E9,
            costs: SimCosts::default(),
            spawn: SpawnModel::default(),
            trace_capacity: 512,
            spans: false,
        }
    }
}

/// The request's end-to-end trace id: a stateless splitmix mix of the run
/// seed and the request id, so every span edge of request `rid` — across
/// cores, queues and serving rounds — carries the same id, and same-seed
/// replays reproduce it. Pure function; consumes no RNG stream.
pub fn trace_id(seed: u64, rid: u64) -> u64 {
    let mut z = seed ^ 0x7D0_C0FF_EE00_0001 ^ rid.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-core counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreMetrics {
    /// Requests whose final slice ran on this core.
    pub completed: u64,
    /// Tasks this core stole from other cores' queues.
    pub steals: u64,
    /// OS context switches (process changes + timer ticks).
    pub ctx_switches: u64,
    /// dTLB misses.
    pub dtlb_misses: u64,
    /// Useful guest compute (ns).
    pub busy_ns: u64,
    /// Scheduling/transition/spawn overhead (ns).
    pub overhead_ns: u64,
    /// Spawns that paid full codegen.
    pub cold_spawns: u64,
    /// Spawns served from the compiled-code cache.
    pub warm_spawns: u64,
    /// Slot recycles (a freed color handed to a queued request).
    pub recycles: u64,
    /// ns spent in spawn paths (cold compiles + warm hits), a subset of
    /// `overhead_ns`.
    pub spawn_ns: u64,
}

impl CoreMetrics {
    fn add(&mut self, o: &CoreMetrics) {
        self.completed += o.completed;
        self.steals += o.steals;
        self.ctx_switches += o.ctx_switches;
        self.dtlb_misses += o.dtlb_misses;
        self.busy_ns += o.busy_ns;
        self.overhead_ns += o.overhead_ns;
        self.cold_spawns += o.cold_spawns;
        self.warm_spawns += o.warm_spawns;
        self.recycles += o.recycles;
        self.spawn_ns += o.spawn_ns;
    }
}

/// Results of one multi-core run.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiCoreReport {
    /// Cores simulated.
    pub cores: u32,
    /// Requests offered.
    pub offered: u64,
    /// Requests completed within the window.
    pub completed: u64,
    /// Completions per second (all cores).
    pub throughput_rps: f64,
    /// Mean request latency (ms).
    pub mean_latency_ms: f64,
    /// 99th-percentile latency (ms).
    pub p99_latency_ms: f64,
    /// Mean over cores of peak resident slots ÷ slot capacity, in [0, 1] —
    /// the saturation signal the fleet autoscaler watches.
    pub occupancy: f64,
    /// Per-class QoS summary (present iff the config enables QoS).
    pub qos: Option<QosReport>,
    /// Aggregate counters (sum over cores).
    pub totals: CoreMetrics,
    /// Per-core counters.
    pub per_core: Vec<CoreMetrics>,
    /// Per-core flight-recorder traces, oldest first (empty vectors when
    /// [`MultiCoreConfig::trace_capacity`] is 0).
    pub traces: Vec<Vec<TraceEvent>>,
    /// Per-core request-latency distributions (simulated ns, recorded on
    /// the core that ran the completing slice). Scalar `mean_latency_ms` /
    /// `p99_latency_ms` above summarize the same completions; these carry
    /// the full cross-shard distribution.
    pub latency_per_core: Vec<CycleHistogram>,
    /// Per-bucket latency exemplars: for each latency-histogram bucket the
    /// first `(trace_id, latency_ns)` that landed in it, merged across
    /// cores shard-order-independently. Empty unless
    /// [`MultiCoreConfig::spans`] is on.
    pub exemplars: BucketExemplars,
    /// The merged per-core metrics registry (counters, occupancy gauges,
    /// and the latency histograms — both per-core `{core="N"}` series and
    /// the bucket-wise cross-shard merge). A live server folds successive
    /// reports' registries together with [`Registry::merge_from`].
    pub registry: Registry,
    /// [`MultiCoreReport::registry`] as a deterministic JSON snapshot
    /// (embedded verbatim in `BENCH_multicore.json`).
    pub telemetry_json: String,
}

#[derive(Debug, Clone, Copy)]
struct Task {
    rid: u32,
    stage: u32,
    remaining: u64,
    /// This slice must pay the instance-spawn cost first.
    spawn: bool,
    /// One-shot extra overhead attached to the task (slot recycle,
    /// steal-migration penalty).
    extra_ns: u64,
}

struct Core {
    /// This core's index (stamped into trace events).
    idx: u32,
    ready: VecDeque<Task>,
    /// Requests awaiting a free resident slot (legacy FIFO admission
    /// queue; unused when QoS is enabled).
    wait: VecDeque<u32>,
    /// QoS admission queues (present iff the config enables QoS).
    qos: Option<QosQueues>,
    /// Occupied resident slots (colors / worker processes).
    resident: u32,
    /// High-water mark of `resident`.
    peak_resident: u32,
    busy: bool,
    running: Option<Task>,
    /// Current process (multi-process mode); `u32::MAX` = none yet.
    cur_proc: u32,
    /// Per-process code-cache state (multi-process warm mode).
    primed: Vec<bool>,
    steal_attempts: u64,
    m: CoreMetrics,
    /// This core's flight recorder (ticks are simulated ns).
    rec: FlightRecorder,
    /// Request-latency distribution (ns) of completions on this core.
    lat: CycleHistogram,
    /// Per-bucket latency exemplars (populated only when spans are on).
    ex: BucketExemplars,
    /// Span edges emitted (so the trace-event counter can keep counting
    /// simulation events only — the profiler must not move modeled series).
    flow: u64,
}

impl Core {
    fn trace(&mut self, tick: u64, sandbox: u64, kind: TraceKind, arg: u64) {
        self.rec.record(TraceEvent { tick, core: self.idx, sandbox, kind, arg });
    }

    /// Records one span edge of a request's trace: a [`TraceKind::Flow`]
    /// event whose `sandbox` field carries the trace id and whose arg is
    /// the packed `(level, start, end, detail)` edge.
    fn span(&mut self, tick: u64, tid: u64, level: SpanLevel, start: bool, end: bool, detail: u64) {
        self.trace(tick, tid, TraceKind::Flow, pack_span(level, start, end, detail));
        self.flow += 1;
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// A request's stage is ready to compute at its home core.
    Ready { rid: u32, stage: u32 },
    /// A core finishes its current slice.
    SliceDone { core: u32 },
}

struct Ctx {
    costs: SimCosts,
    spawn: SpawnModel,
    cache: CacheMode,
    colorguard: bool,
    procs: u32,
    contention: f64,
    /// Span emission on, plus the seed [`trace_id`] derives from.
    spans: bool,
    seed: u64,
}

/// Starts the next slice on `core` at `now`; returns its completion time.
fn start_slice(core: &mut Core, cg_primed: &mut bool, ctx: &Ctx, now: u64) -> Option<u64> {
    let mut task = core.ready.pop_front()?;
    // The spawn flag is set on exactly one slice per request — its first —
    // which is where the invoke span opens.
    if ctx.spans && task.spawn {
        let tid = trace_id(ctx.seed, u64::from(task.rid));
        core.span(now, tid, SpanLevel::Invoke, true, false, u64::from(task.rid));
    }
    let mut over = 0.0f64;
    if !ctx.colorguard {
        let proc = task.rid % ctx.procs;
        if proc != core.cur_proc {
            if core.cur_proc != u32::MAX {
                // A real OS process switch: refill and warm-up grow with the
                // number of competing processes on this core.
                core.m.ctx_switches += 1;
                let refill = (ctx.costs.tlb_refill_entries as f64 * ctx.contention).round() as u64;
                core.m.dtlb_misses += refill;
                over += ctx.costs.process_switch_ns
                    + refill as f64 * ctx.costs.tlb_miss_ns
                    + ctx.costs.cache_warm_ns * ctx.contention;
            }
            core.cur_proc = proc;
        }
    }
    over += ctx.costs.task_switch_ns + ctx.costs.transition_pair_ns;
    if ctx.colorguard {
        over += ctx.costs.colorguard_extra_ns;
    }
    core.m.dtlb_misses += ctx.costs.base_slice_tlb_misses;

    let mut spawn_ns = 0u64;
    if task.spawn {
        let mut cold = true;
        spawn_ns = match ctx.cache {
            CacheMode::Cold => {
                core.m.cold_spawns += 1;
                ctx.spawn.cold_compile_ns
            }
            CacheMode::Warm => {
                let primed = if ctx.colorguard {
                    // One address space, one shared cache across all cores.
                    cg_primed
                } else {
                    &mut core.primed[(task.rid % ctx.procs) as usize]
                };
                if *primed {
                    cold = false;
                    core.m.warm_spawns += 1;
                    ctx.spawn.warm_spawn_ns
                } else {
                    *primed = true;
                    core.m.cold_spawns += 1;
                    ctx.spawn.cold_compile_ns
                }
            }
        };
        if cold {
            core.trace(now, u64::from(task.rid), TraceKind::Compile, spawn_ns);
        }
        core.m.spawn_ns += spawn_ns;
        task.spawn = false;
    }
    let extra = task.extra_ns;
    task.extra_ns = 0;

    let slice = task.remaining.min(EPOCH_NS);
    let overhead = over as u64 + spawn_ns + extra;
    core.m.busy_ns += slice;
    core.m.overhead_ns += overhead;
    task.remaining -= slice;
    core.trace(now, u64::from(task.rid), TraceKind::Enter, u64::from(task.stage));
    core.running = Some(task);
    core.busy = true;
    Some(now + overhead + slice)
}

/// One steal round: every idle core with an empty queue attempts to take
/// the newest task from the first victim (in a seeded rotation) holding at
/// least two. Deterministic: thief scan order is fixed, victim order is a
/// pure function of `(seed, thief, attempt)`.
fn steal_pass(cores: &mut [Core], seed: u64, costs: &SimCosts, now: u64) {
    let n = cores.len();
    if n < 2 {
        return;
    }
    for thief in 0..n {
        if cores[thief].busy || !cores[thief].ready.is_empty() {
            continue;
        }
        let draw = fault_draw(seed ^ 0x57EA1, thief as u64, cores[thief].steal_attempts);
        cores[thief].steal_attempts += 1;
        let start = (draw * n as f64) as usize % n;
        let mut stolen: Option<(Task, usize)> = None;
        for k in 0..n {
            let victim = (start + k) % n;
            if victim == thief || cores[victim].ready.len() < 2 {
                continue;
            }
            stolen = cores[victim].ready.pop_back().map(|t| (t, victim));
            break;
        }
        if let Some((mut t, victim)) = stolen {
            // Migration penalty: the stolen task's working set is cold on
            // the thief (cache warm-up + a full dTLB refill).
            cores[thief].m.dtlb_misses += costs.tlb_refill_entries;
            t.extra_ns +=
                (costs.cache_warm_ns + costs.tlb_refill_entries as f64 * costs.tlb_miss_ns) as u64;
            cores[thief].m.steals += 1;
            cores[thief].trace(now, u64::from(t.rid), TraceKind::Steal, victim as u64);
            cores[thief].ready.push_back(t);
        }
    }
}

/// Runs the sharded multi-core simulation.
pub fn simulate_multicore(cfg: &MultiCoreConfig) -> MultiCoreReport {
    let ncores = cfg.cores.max(1);
    let requests = generate_stream(
        cfg.workload,
        cfg.duration_ms,
        cfg.requests_per_epoch_per_core.saturating_mul(ncores),
        cfg.io_mean_ms,
        cfg.stages,
        cfg.seed,
        &cfg.arrivals,
    );

    // Tenant SLO classes: a stateless per-request draw on its own stream,
    // so enabling QoS leaves the generated arrivals untouched.
    let classes: Option<Vec<SloClass>> = cfg.qos.as_ref().map(|q| {
        (0..requests.len()).map(|rid| tenant_class(cfg.seed, rid as u32, &q.shares)).collect()
    });

    // Sticky home-core placement via the consistent-hash ring.
    let ring = HashRing::new((0..ncores).map(|i| format!("core-{i}")).collect::<Vec<_>>(), 64);
    let home: Vec<u32> = (0..requests.len())
        .map(|rid| {
            let name = ring.route(&format!("req-{rid}"));
            name.strip_prefix("core-").and_then(|s| s.parse().ok()).expect("ring backend name")
        })
        .collect();

    let (procs, colorguard) = match cfg.mode {
        ScalingMode::ColorGuard => (1u32, true),
        ScalingMode::MultiProcess { processes } => (processes.max(1), false),
    };
    let capacity = if colorguard { cfg.spawn.colors_per_core.max(1) } else { procs };
    let ctx = Ctx {
        costs: cfg.costs.clone(),
        spawn: cfg.spawn,
        cache: cfg.cache,
        colorguard,
        procs,
        contention: f64::from(procs.min(15)) / 15.0,
        spans: cfg.spans,
        seed: cfg.seed,
    };

    let mut cores: Vec<Core> = (0..ncores)
        .map(|i| Core {
            idx: i,
            ready: VecDeque::new(),
            wait: VecDeque::new(),
            qos: cfg.qos.as_ref().map(QosQueues::new),
            resident: 0,
            peak_resident: 0,
            busy: false,
            running: None,
            cur_proc: u32::MAX,
            primed: vec![false; procs as usize],
            steal_attempts: 0,
            m: CoreMetrics::default(),
            rec: FlightRecorder::new(cfg.trace_capacity),
            lat: CycleHistogram::new(),
            ex: BucketExemplars::new(),
            flow: 0,
        })
        .collect();
    let mut cg_primed = false;

    let mut heap: BinaryHeap<Reverse<(u64, u64, Ev)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut push = |heap: &mut BinaryHeap<Reverse<(u64, u64, Ev)>>, t: u64, e: Ev| {
        seq += 1;
        heap.push(Reverse((t, seq, e)));
    };
    for (rid, r) in requests.iter().enumerate() {
        push(&mut heap, r.arrival_ns + r.io_ns[0], Ev::Ready { rid: rid as u32, stage: 0 });
    }

    let horizon_ns = cfg.duration_ms * 1_000_000;
    let mut completed = 0u64;
    let mut latencies = Vec::new();

    // Per-class QoS aggregates (only written when QoS is enabled).
    let mut class_offered = [0u64; 3];
    let mut class_shed = [0u64; 3];
    let mut class_completed = [0u64; 3];
    let mut class_lat: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut class_hist = [CycleHistogram::new(), CycleHistogram::new(), CycleHistogram::new()];

    while let Some(Reverse((t, _, ev))) = heap.pop() {
        if t > horizon_ns {
            break;
        }
        match ev {
            Ev::Ready { rid, stage } => {
                let h = home[rid as usize] as usize;
                let remaining = requests[rid as usize].compute_ns[stage as usize];
                if stage == 0 {
                    if let Some(cl) = &classes {
                        class_offered[cl[rid as usize].idx()] += 1;
                    }
                    let class_idx =
                        classes.as_ref().map_or(0, |cl| cl[rid as usize].idx() as u64);
                    let tid = trace_id(cfg.seed, u64::from(rid));
                    // Admission: take a resident slot or queue for one.
                    if cores[h].resident < capacity {
                        cores[h].resident += 1;
                        cores[h].peak_resident = cores[h].peak_resident.max(cores[h].resident);
                        let occupied = u64::from(cores[h].resident);
                        cores[h].trace(t, u64::from(rid), TraceKind::Spawn, occupied);
                        if cfg.spans {
                            // Direct admission: an instantaneous admission
                            // span (no queue wait preceded it).
                            cores[h].span(t, tid, SpanLevel::Admission, true, true, class_idx);
                        }
                        cores[h]
                            .ready
                            .push_back(Task { rid, stage, remaining, spawn: true, extra_ns: 0 });
                    } else if cores[h].qos.is_some() {
                        // QoS admission control: bounded per-class queues
                        // and lowest-class-first watermark shedding.
                        let class = classes.as_ref().expect("qos implies classes")[rid as usize];
                        let qcfg = cfg.qos.as_ref().expect("qos queues imply a config");
                        let q = cores[h].qos.as_mut().expect("checked is_some");
                        if q.offer(qcfg, rid, class) == Admission::Shed {
                            class_shed[class.idx()] += 1;
                            cores[h].trace(t, u64::from(rid), TraceKind::Shed, class.idx() as u64);
                        } else if cfg.spans {
                            cores[h].span(t, tid, SpanLevel::QueueWait, true, false, u64::from(h as u32));
                        }
                    } else {
                        cores[h].wait.push_back(rid);
                        if cfg.spans {
                            cores[h].span(t, tid, SpanLevel::QueueWait, true, false, u64::from(h as u32));
                        }
                    }
                } else {
                    cores[h].ready.push_back(Task { rid, stage, remaining, spawn: false, extra_ns: 0 });
                }
            }
            Ev::SliceDone { core: c } => {
                let c = c as usize;
                let task = cores[c].running.take().expect("SliceDone implies a running slice");
                cores[c].busy = false;
                if task.remaining > 0 {
                    // Epoch-preempted: yield to the back of the queue.
                    cores[c].ready.push_back(task);
                } else {
                    let req = &requests[task.rid as usize];
                    let next = task.stage + 1;
                    if (next as usize) < req.compute_ns.len() {
                        // The slot stays resident across the IO wait.
                        push(
                            &mut heap,
                            t + req.io_ns[next as usize],
                            Ev::Ready { rid: task.rid, stage: next },
                        );
                    } else {
                        completed += 1;
                        cores[c].m.completed += 1;
                        cores[c].trace(t, u64::from(task.rid), TraceKind::Exit, u64::from(task.stage));
                        cores[c].lat.record(t - req.arrival_ns);
                        if cfg.spans {
                            let tid = trace_id(cfg.seed, u64::from(task.rid));
                            cores[c].span(
                                t,
                                tid,
                                SpanLevel::Invoke,
                                false,
                                true,
                                u64::from(task.stage),
                            );
                            cores[c].ex.observe(tid, t - req.arrival_ns);
                        }
                        latencies.push((t - req.arrival_ns) as f64 / 1e6);
                        if let Some(cl) = &classes {
                            let ci = cl[task.rid as usize].idx();
                            class_completed[ci] += 1;
                            class_hist[ci].record(t - req.arrival_ns);
                            class_lat[ci].push((t - req.arrival_ns) as f64 / 1e6);
                        }
                        // Free the home slot; hand it to a queued request
                        // (a recycle: scrub + re-color before reuse). With
                        // QoS the next admit comes from the weighted
                        // fair-queue rotation instead of plain FIFO.
                        let h = home[task.rid as usize] as usize;
                        cores[h].resident -= 1;
                        let next_admit = match cores[h].qos.as_mut() {
                            Some(q) => q.pop().map(|(rid, _)| rid),
                            None => cores[h].wait.pop_front(),
                        };
                        if let Some(w) = next_admit {
                            cores[h].resident += 1;
                            cores[h].peak_resident = cores[h].peak_resident.max(cores[h].resident);
                            cores[h].m.recycles += 1;
                            cores[h].trace(t, u64::from(w), TraceKind::Recycle, u64::from(task.rid));
                            if cfg.spans {
                                // The queued request's wait ends here and it
                                // is admitted onto the recycled slot.
                                let wtid = trace_id(cfg.seed, u64::from(w));
                                let wclass =
                                    classes.as_ref().map_or(0, |cl| cl[w as usize].idx() as u64);
                                cores[h].span(t, wtid, SpanLevel::QueueWait, false, true, u64::from(h as u32));
                                cores[h].span(t, wtid, SpanLevel::Admission, true, true, wclass);
                            }
                            cores[h].ready.push_back(Task {
                                rid: w,
                                stage: 0,
                                remaining: requests[w as usize].compute_ns[0],
                                spawn: true,
                                extra_ns: cfg.spawn.recycle_ns,
                            });
                        }
                    }
                }
            }
        }

        // Rebalance, then start slices on every idle core with work.
        steal_pass(&mut cores, cfg.seed, &ctx.costs, t);
        for (c, core) in cores.iter_mut().enumerate() {
            if !core.busy {
                if let Some(done) = start_slice(core, &mut cg_primed, &ctx, t) {
                    push(&mut heap, done, Ev::SliceDone { core: c as u32 });
                }
            }
        }
    }

    // The OS timer tick floor, per core.
    let ticks = cfg.duration_ms / 1000 * cfg.costs.timer_hz;
    for c in &mut cores {
        c.m.ctx_switches += ticks;
    }

    let per_core: Vec<CoreMetrics> = cores.iter().map(|c| c.m).collect();
    let mut totals = CoreMetrics::default();
    for m in &per_core {
        totals.add(m);
    }
    let traces: Vec<Vec<TraceEvent>> = cores.iter().map(|c| c.rec.events()).collect();
    let latency_per_core: Vec<CycleHistogram> = cores.iter().map(|c| c.lat.clone()).collect();
    let mut exemplars = BucketExemplars::new();
    for c in &cores {
        exemplars.merge_from(&c.ex);
    }
    let occupancy = cores
        .iter()
        .map(|c| f64::from(c.peak_resident) / f64::from(capacity.max(1)))
        .sum::<f64>()
        / f64::from(ncores);
    let qos_report = cfg.qos.as_ref().map(|_| {
        let mut per_class = [ClassReport::default(); 3];
        for i in 0..3 {
            per_class[i] = ClassReport {
                offered: class_offered[i],
                completed: class_completed[i],
                shed: class_shed[i],
                p50_ms: crate::stats::p50(&class_lat[i]),
                p99_ms: crate::stats::p99(&class_lat[i]),
            };
        }
        let offered_total: u64 = class_offered.iter().sum();
        let shed_total: u64 = class_shed.iter().sum();
        QosReport {
            per_class,
            shed_total,
            shed_rate: if offered_total == 0 {
                0.0
            } else {
                shed_total as f64 / offered_total as f64
            },
            goodput_rps: class_completed.iter().sum::<u64>() as f64
                / (cfg.duration_ms.max(1) as f64 / 1000.0),
        }
    });
    // Built once at the end from the per-core counters — zero hot-path
    // cost — then folded into one registry, the same merge-at-export
    // shape the runtime uses per shard.
    let mut registry = Registry::new();
    for core in &cores {
        registry.merge_from(&core_registry(core, cfg.seed));
    }
    // QoS series join the snapshot only when the layer is on, so legacy
    // configs keep their byte-identical telemetry sections.
    if let Some(rep) = &qos_report {
        registry.merge_from(&qos_registry(rep, &class_hist));
    }
    let telemetry_json = sfi_telemetry::json_snapshot(&registry);
    MultiCoreReport {
        cores: ncores,
        offered: requests.len() as u64,
        completed,
        throughput_rps: completed as f64 / (cfg.duration_ms as f64 / 1000.0),
        mean_latency_ms: crate::stats::mean(&latencies),
        p99_latency_ms: crate::stats::p99(&latencies),
        occupancy,
        qos: qos_report,
        totals,
        per_core,
        traces,
        latency_per_core,
        exemplars,
        registry,
        telemetry_json,
    }
}

/// Renders one core's counters as a metrics registry. Per-core registries
/// merge into the run-wide snapshot embedded in `BENCH_multicore.json`:
/// counters sum, and the latency histogram is registered twice — once
/// labeled `{core="N"}` (per-shard distribution, distinct series survive
/// the merge) and once unlabeled (the same buckets, which `merge_from`
/// sums bucket-wise into the cross-shard distribution).
fn core_registry(core: &Core, seed: u64) -> Registry {
    let mut reg = Registry::new();
    let counters: [(&str, u64); 11] = [
        ("sfi_shard_completed_total", core.m.completed),
        ("sfi_shard_steals_total", core.m.steals),
        ("sfi_shard_ctx_switches_total", core.m.ctx_switches),
        ("sfi_shard_dtlb_misses_total", core.m.dtlb_misses),
        ("sfi_shard_busy_ns_total", core.m.busy_ns),
        ("sfi_shard_overhead_ns_total", core.m.overhead_ns),
        ("sfi_shard_cold_spawns_total", core.m.cold_spawns),
        ("sfi_shard_warm_spawns_total", core.m.warm_spawns),
        ("sfi_shard_recycles_total", core.m.recycles),
        ("sfi_shard_spawn_ns_total", core.m.spawn_ns),
        ("sfi_shard_trace_events_total", core.rec.total_recorded() - core.flow),
    ];
    for (name, v) in counters {
        let id = reg.counter(name);
        reg.add(id, v);
    }
    // Span edges are the one series the profiler adds; every modeled series
    // above is byte-identical with spans on or off.
    if core.flow > 0 {
        let spans = reg.counter("sfi_shard_span_events_total");
        reg.add(spans, core.flow);
    }
    // Per-access dTLB events are the hottest series the shard produces, so
    // they additionally export through the deterministic 1-in-N sampler
    // (rate in the labels; each shard samples at its own seeded phase). The
    // exact counter above stays — the sampled series exists so scrapers of
    // the live endpoint can verify the documented `value × rate` estimate.
    let sampled =
        reg.sampled_counter("sfi_shard_dtlb_events_total", &[], DTLB_SAMPLE_RATE, seed ^ u64::from(core.idx));
    reg.sample_trials(sampled, core.m.dtlb_misses);
    let resident = reg.gauge("sfi_shard_resident_slots");
    reg.set(resident, i64::from(core.resident));
    let peak = reg.gauge("sfi_shard_peak_resident_slots");
    reg.set(peak, i64::from(core.peak_resident));
    let core_label = core.idx.to_string();
    let per_core = reg.try_histogram("sfi_shard_request_latency_ns", &[("core", &core_label)])
        .expect("one registry per core");
    let merged = reg.histogram("sfi_shard_request_latency_ns");
    for (id, hist) in [(per_core, &core.lat), (merged, &core.lat)] {
        reg.merge_histogram(id, hist);
    }
    reg
}

/// Renders the per-class QoS counters and latency distributions as a
/// registry (`sfi_qos_*` namespace, every series labeled by SLO class).
/// Merged into the run-wide snapshot only when QoS is enabled.
fn qos_registry(rep: &QosReport, hists: &[CycleHistogram; 3]) -> Registry {
    let mut reg = Registry::new();
    for (i, class) in SloClass::ALL.iter().enumerate() {
        let labels: [(&'static str, &str); 1] = [("class", class.name())];
        let counters: [(&'static str, u64); 3] = [
            ("sfi_qos_offered_total", rep.per_class[i].offered),
            ("sfi_qos_completed_total", rep.per_class[i].completed),
            ("sfi_qos_shed_total", rep.per_class[i].shed),
        ];
        for (name, v) in counters {
            let id = reg.try_counter(name, &labels).expect("one qos registry per run");
            reg.add(id, v);
        }
        let h = reg
            .try_histogram("sfi_qos_request_latency_ns", &labels)
            .expect("one qos registry per run");
        reg.merge_histogram(h, &hists[i]);
    }
    reg
}

/// Sampling rate for the per-access dTLB event series (recorded in the
/// series' `sample_rate` label).
pub const DTLB_SAMPLE_RATE: u64 = 64;

fn mode_name(mode: ScalingMode) -> &'static str {
    match mode {
        ScalingMode::ColorGuard => "colorguard",
        ScalingMode::MultiProcess { .. } => "multiprocess",
    }
}

/// Runs the full sweep — `cores_list` × {multiprocess, ColorGuard} ×
/// {cold, warm-cache} — and renders it as deterministic JSON (fixed field
/// order, fixed float precision): the contents of `BENCH_multicore.json`.
/// Byte-identical for a given `(seed, duration_ms, cores_list)`.
pub fn multicore_sweep_json(seed: u64, duration_ms: u64, cores_list: &[u32]) -> String {
    let mut rows: Vec<(u32, &'static str, &'static str, MultiCoreReport)> = Vec::new();
    for &cores in cores_list {
        for mode in [ScalingMode::ColorGuard, ScalingMode::MultiProcess { processes: 15 }] {
            for cache in [CacheMode::Cold, CacheMode::Warm] {
                let mut cfg = MultiCoreConfig::paper_rig(
                    FaasWorkload::HashLoadBalance,
                    mode,
                    cache,
                    cores,
                );
                cfg.seed = seed;
                cfg.duration_ms = duration_ms;
                let r = simulate_multicore(&cfg);
                rows.push((cores, mode_name(mode), cache.name(), r));
            }
        }
    }

    let find = |cores: u32, mode: &str, cache: &str| -> Option<&MultiCoreReport> {
        rows.iter().find(|(c, m, ca, _)| *c == cores && *m == mode && *ca == cache).map(|r| &r.3)
    };
    let mean_spawn = |r: &MultiCoreReport| {
        r.totals.spawn_ns as f64 / (r.totals.cold_spawns + r.totals.warm_spawns).max(1) as f64
    };
    let scaling_1_to_4 = match (find(1, "colorguard", "warm"), find(4, "colorguard", "warm")) {
        (Some(a), Some(b)) if a.throughput_rps > 0.0 => b.throughput_rps / a.throughput_rps,
        _ => 0.0,
    };
    let spawn_ratio = match (find(1, "colorguard", "cold"), find(1, "colorguard", "warm")) {
        (Some(c), Some(w)) if mean_spawn(w) > 0.0 => mean_spawn(c) / mean_spawn(w),
        _ => 0.0,
    };

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"figX_multicore\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"duration_ms\": {duration_ms},\n"));
    out.push_str("  \"workload\": \"hash_load_balance\",\n");
    out.push_str("  \"rows\": [\n");
    for (i, (cores, mode, cache, r)) in rows.iter().enumerate() {
        let steals: Vec<String> = r.per_core.iter().map(|m| m.steals.to_string()).collect();
        out.push_str(&format!(
            "    {{\"cores\": {cores}, \"mode\": \"{mode}\", \"cache\": \"{cache}\", \
             \"offered\": {}, \"completed\": {}, \"throughput_rps\": {:.3}, \
             \"steals\": {}, \"ctx_switches\": {}, \"dtlb_misses\": {}, \
             \"cold_spawns\": {}, \"warm_spawns\": {}, \"recycles\": {}, \
             \"spawn_ns\": {}, \"busy_ns\": {}, \"overhead_ns\": {}, \
             \"mean_latency_ms\": {:.3}, \"p99_latency_ms\": {:.3}, \
             \"per_core_steals\": [{}]}}{}\n",
            r.offered,
            r.completed,
            r.throughput_rps,
            r.totals.steals,
            r.totals.ctx_switches,
            r.totals.dtlb_misses,
            r.totals.cold_spawns,
            r.totals.warm_spawns,
            r.totals.recycles,
            r.totals.spawn_ns,
            r.totals.busy_ns,
            r.totals.overhead_ns,
            r.mean_latency_ms,
            r.p99_latency_ms,
            steals.join(", "),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"derived\": {\n");
    out.push_str(&format!(
        "    \"warm_colorguard_scaling_1_to_4\": {scaling_1_to_4:.3},\n"
    ));
    out.push_str(&format!("    \"cold_over_warm_spawn_cost\": {spawn_ratio:.3}\n"));
    out.push_str("  },\n");
    // The merged registry snapshot for the headline configuration
    // (ColorGuard, warm cache, most cores) — already deterministic JSON,
    // embedded verbatim.
    let max_cores = cores_list.iter().copied().max().unwrap_or(1);
    let telemetry = find(max_cores, "colorguard", "warm")
        .map(|r| r.telemetry_json.clone())
        .unwrap_or_else(|| "{}".to_string());
    out.push_str("  \"telemetry\": ");
    for (i, line) in telemetry.trim_end().lines().enumerate() {
        if i > 0 {
            out.push_str("  ");
        }
        out.push_str(line);
        out.push('\n');
    }
    out.pop();
    out.push('\n');
    out.push_str("}\n");
    out
}

/// Runs the overload sweep — open-loop Poisson arrivals at each offered
/// rate in `rates_rps`, multi-tenant QoS and admission control on
/// ([`QosConfig::paper_rig`]), ColorGuard warm-cache on `cores` cores —
/// and renders it as deterministic JSON (fixed field order, fixed float
/// precision): the contents of `BENCH_overload.json`. Byte-identical for
/// a given `(seed, duration_ms, cores, rates_rps)`.
pub fn overload_sweep_json(seed: u64, duration_ms: u64, cores: u32, rates_rps: &[f64]) -> String {
    let run = |rate: f64| {
        let mut cfg = MultiCoreConfig::paper_rig(
            FaasWorkload::HashLoadBalance,
            ScalingMode::ColorGuard,
            CacheMode::Warm,
            cores,
        );
        cfg.seed = seed;
        cfg.duration_ms = duration_ms;
        cfg.arrivals = ArrivalModel::Poisson { rate_rps: rate };
        cfg.qos = Some(QosConfig::paper_rig());
        simulate_multicore(&cfg)
    };
    let rows: Vec<(f64, MultiCoreReport)> = rates_rps.iter().map(|&r| (r, run(r))).collect();

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"figX_overload\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"duration_ms\": {duration_ms},\n"));
    out.push_str(&format!("  \"cores\": {cores},\n"));
    out.push_str("  \"workload\": \"hash_load_balance\",\n");
    out.push_str("  \"rows\": [\n");
    for (i, (rate, r)) in rows.iter().enumerate() {
        let q = r.qos.as_ref().expect("qos enabled for every overload row");
        let classes: Vec<String> = SloClass::ALL
            .iter()
            .enumerate()
            .map(|(c, class)| {
                let pc = q.per_class[c];
                format!(
                    "{{\"class\": \"{}\", \"offered\": {}, \"completed\": {}, \
                     \"shed\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}",
                    class.name(),
                    pc.offered,
                    pc.completed,
                    pc.shed,
                    pc.p50_ms,
                    pc.p99_ms,
                )
            })
            .collect();
        out.push_str(&format!(
            "    {{\"offered_rps\": {rate:.0}, \"offered\": {}, \"completed\": {}, \
             \"goodput_rps\": {:.3}, \"shed_total\": {}, \"shed_rate\": {:.6}, \
             \"occupancy\": {:.6}, \"p99_latency_ms\": {:.3}, \
             \"classes\": [{}]}}{}\n",
            r.offered,
            r.completed,
            q.goodput_rps,
            q.shed_total,
            q.shed_rate,
            r.occupancy,
            r.p99_latency_ms,
            classes.join(", "),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");

    // Derived saturation indicators: how the latency-sensitive class holds
    // up as offered load runs past capacity, and who absorbs the shedding.
    let light = &rows.first().expect("nonempty rate sweep").1;
    let peak = &rows.last().expect("nonempty rate sweep").1;
    let lq = light.qos.as_ref().expect("qos on");
    let pq = peak.qos.as_ref().expect("qos on");
    let ls = SloClass::LatencySensitive.idx();
    let ls_p99_ratio = if lq.per_class[ls].p99_ms > 0.0 {
        pq.per_class[ls].p99_ms / lq.per_class[ls].p99_ms
    } else {
        0.0
    };
    // Shed *rates* (shed ÷ offered per class), not absolute shares: the
    // lowest-class-first contract is about how hard each class is hit
    // relative to its own traffic, independent of the tenant mix.
    let shed_rate = |c: SloClass| {
        let pc = pq.per_class[c.idx()];
        if pc.offered > 0 { pc.shed as f64 / pc.offered as f64 } else { 0.0 }
    };
    out.push_str("  \"derived\": {\n");
    out.push_str(&format!("    \"ls_p99_peak_over_light\": {ls_p99_ratio:.3},\n"));
    out.push_str(&format!(
        "    \"batch_shed_rate_at_peak\": {:.3},\n",
        shed_rate(SloClass::Batch)
    ));
    out.push_str(&format!(
        "    \"standard_shed_rate_at_peak\": {:.3},\n",
        shed_rate(SloClass::Standard)
    ));
    out.push_str(&format!(
        "    \"ls_shed_at_peak\": {},\n",
        pq.per_class[ls].shed
    ));
    out.push_str(&format!("    \"peak_goodput_rps\": {:.3}\n", pq.goodput_rps));
    out.push_str("  },\n");

    // The merged registry snapshot for the saturated headline run (highest
    // offered rate) — already deterministic JSON, embedded verbatim.
    out.push_str("  \"telemetry\": ");
    for (i, line) in peak.telemetry_json.trim_end().lines().enumerate() {
        if i > 0 {
            out.push_str("  ");
        }
        out.push_str(line);
        out.push('\n');
    }
    out.pop();
    out.push('\n');
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(mode: ScalingMode, cache: CacheMode, cores: u32) -> MultiCoreReport {
        let mut cfg = MultiCoreConfig::paper_rig(FaasWorkload::HashLoadBalance, mode, cache, cores);
        cfg.duration_ms = 120;
        simulate_multicore(&cfg)
    }

    #[test]
    fn determinism() {
        let a = quick(ScalingMode::ColorGuard, CacheMode::Warm, 4);
        let b = quick(ScalingMode::ColorGuard, CacheMode::Warm, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn warm_cache_beats_cold() {
        let cold = quick(ScalingMode::ColorGuard, CacheMode::Cold, 2);
        let warm = quick(ScalingMode::ColorGuard, CacheMode::Warm, 2);
        assert!(
            warm.throughput_rps > cold.throughput_rps,
            "warm {} vs cold {}",
            warm.throughput_rps,
            cold.throughput_rps
        );
        assert!(warm.totals.warm_spawns > 0);
        assert_eq!(cold.totals.warm_spawns, 0, "cold mode never hits the cache");
    }

    #[test]
    fn colorguard_shares_one_cache_processes_do_not() {
        let cg = quick(ScalingMode::ColorGuard, CacheMode::Warm, 4);
        assert_eq!(cg.totals.cold_spawns, 1, "one address space, one compile");
        let mp = quick(ScalingMode::MultiProcess { processes: 15 }, CacheMode::Warm, 4);
        assert!(
            mp.totals.cold_spawns > cg.totals.cold_spawns,
            "every worker process pays its own compile: {}",
            mp.totals.cold_spawns
        );
    }

    #[test]
    fn throughput_scales_with_cores() {
        let one = quick(ScalingMode::ColorGuard, CacheMode::Warm, 1);
        let four = quick(ScalingMode::ColorGuard, CacheMode::Warm, 4);
        let ratio = four.throughput_rps / one.throughput_rps;
        assert!(ratio >= 3.0, "1→4 core scaling {ratio:.2}× (need ≥ 3×)");
        assert_eq!(four.offered, one.offered * 4, "offered load scales per core");
    }

    #[test]
    fn stealing_fires_and_is_deterministic() {
        // Ring placement is uneven, so lighter cores steal from heavier
        // ones once their own queues drain.
        let a = quick(ScalingMode::ColorGuard, CacheMode::Warm, 8);
        let b = quick(ScalingMode::ColorGuard, CacheMode::Warm, 8);
        assert_eq!(a.per_core, b.per_core);
        assert!(a.totals.steals > 0, "8 uneven cores must steal");
    }

    #[test]
    fn residency_is_bounded_and_recycled() {
        let r = quick(ScalingMode::ColorGuard, CacheMode::Cold, 1);
        // Cold spawns are slow enough that the 15-color pool saturates and
        // queued requests are admitted via recycles.
        assert!(r.totals.recycles > 0, "overload must recycle slots");
    }

    #[test]
    fn sweep_json_is_byte_identical_across_runs() {
        let a = multicore_sweep_json(7, 60, &[1, 2]);
        let b = multicore_sweep_json(7, 60, &[1, 2]);
        assert_eq!(a, b);
        assert!(a.contains("\"cores\": 2"));
        assert!(a.contains("\"derived\""));
        assert!(a.contains("\"telemetry\""));
        assert!(a.contains("sfi_shard_completed_total"));
        assert!(sfi_telemetry::json_is_valid(&a), "sweep JSON must stay parseable");
    }

    #[test]
    fn traces_are_recorded_and_deterministic() {
        // Spawn events all land in the first milliseconds (before the color
        // pool saturates and admissions shift to recycles), so use a ring
        // deep enough that wraparound doesn't evict them.
        let deep = |_| {
            let mut cfg = MultiCoreConfig::paper_rig(
                FaasWorkload::HashLoadBalance,
                ScalingMode::ColorGuard,
                CacheMode::Warm,
                4,
            );
            cfg.duration_ms = 120;
            cfg.trace_capacity = 1 << 16;
            simulate_multicore(&cfg)
        };
        let a = deep(());
        let b = deep(());
        assert_eq!(a.traces, b.traces, "same seed, same traces");
        assert_eq!(a.telemetry_json, b.telemetry_json);
        assert_eq!(a.traces.len(), 4, "one trace ring per core");
        let all: Vec<&TraceEvent> = a.traces.iter().flatten().collect();
        assert!(!all.is_empty());
        for kind in [TraceKind::Spawn, TraceKind::Enter, TraceKind::Exit, TraceKind::Steal] {
            assert!(all.iter().any(|e| e.kind == kind), "missing {} events", kind.name());
        }
        // Every core's ring is in tick order (oldest first).
        for ring in &a.traces {
            assert!(ring.windows(2).all(|w| w[0].tick <= w[1].tick));
        }
        assert!(a.telemetry_json.contains("sfi_shard_steals_total"));
    }

    #[test]
    fn qos_sheds_batch_first_and_shields_latency_sensitive() {
        let overload = |_| {
            let mut cfg = MultiCoreConfig::paper_rig(
                FaasWorkload::HashLoadBalance,
                ScalingMode::ColorGuard,
                CacheMode::Warm,
                1,
            );
            cfg.duration_ms = 200;
            // 2× the closed-loop saturation load, open loop: queues build.
            cfg.arrivals = ArrivalModel::Poisson { rate_rps: 80_000.0 };
            cfg.qos = Some(QosConfig::paper_rig());
            simulate_multicore(&cfg)
        };
        let a = overload(());
        let b = overload(());
        assert_eq!(a, b, "QoS runs replay byte-identically");
        let q = a.qos.as_ref().expect("qos enabled");
        let [ls, std_, batch] = &q.per_class;
        assert!(batch.shed > 0, "overload must shed batch work");
        assert_eq!(ls.shed, 0, "latency-sensitive work is never watermark-shed");
        let rate = |c: &ClassReport| c.shed as f64 / c.offered.max(1) as f64;
        assert!(
            rate(batch) > rate(std_) && rate(std_) >= rate(ls),
            "shed ordering lowest class first: batch {} std {} ls {}",
            rate(batch),
            rate(std_),
            rate(ls)
        );
        assert!(ls.completed > 0);
        assert!(q.shed_total > 0 && q.shed_rate > 0.0 && q.goodput_rps > 0.0);
        assert!((a.occupancy - 1.0).abs() < 1e-9, "overload pins occupancy at 1.0");
        assert!(a.telemetry_json.contains("sfi_qos_shed_total"));
        assert!(a.traces.iter().flatten().any(|e| e.kind == TraceKind::Shed));
    }

    #[test]
    fn qos_off_leaves_stream_and_telemetry_untouched() {
        let run = |qos: Option<QosConfig>| {
            let mut cfg = MultiCoreConfig::paper_rig(
                FaasWorkload::HashLoadBalance,
                ScalingMode::ColorGuard,
                CacheMode::Warm,
                2,
            );
            cfg.duration_ms = 120;
            cfg.qos = qos;
            simulate_multicore(&cfg)
        };
        let off = run(None);
        let on = run(Some(QosConfig::paper_rig()));
        // Class assignment is a separate draw stream: same arrivals.
        assert_eq!(off.offered, on.offered);
        assert!(off.qos.is_none());
        assert!(
            !off.telemetry_json.contains("sfi_qos_"),
            "legacy configs must not grow new series"
        );
        // Under closed-loop saturation the QoS engine completes work too.
        assert!(on.qos.as_ref().unwrap().per_class.iter().any(|c| c.completed > 0));
    }

    #[test]
    fn occupancy_tracks_offered_load() {
        let at = |rate: f64| {
            let mut cfg = MultiCoreConfig::paper_rig(
                FaasWorkload::HashLoadBalance,
                ScalingMode::ColorGuard,
                CacheMode::Warm,
                2,
            );
            cfg.duration_ms = 150;
            cfg.arrivals = ArrivalModel::Poisson { rate_rps: rate };
            simulate_multicore(&cfg)
        };
        let light = at(2_000.0);
        let heavy = at(120_000.0);
        assert!(light.occupancy < heavy.occupancy, "{} vs {}", light.occupancy, heavy.occupancy);
        assert!(heavy.occupancy <= 1.0 + 1e-9);
    }

    #[test]
    fn spans_do_not_perturb_results_and_form_request_trees() {
        use sfi_telemetry::unpack_span;
        let run = |spans: bool| {
            let mut cfg = MultiCoreConfig::paper_rig(
                FaasWorkload::HashLoadBalance,
                ScalingMode::ColorGuard,
                CacheMode::Cold,
                2,
            );
            cfg.duration_ms = 120;
            cfg.trace_capacity = 1 << 16;
            cfg.spans = spans;
            simulate_multicore(&cfg)
        };
        let off = run(false);
        let on = run(true);
        // Zero observer effect: spans change no benchmark result field.
        assert_eq!(off.completed, on.completed);
        assert_eq!(off.totals, on.totals);
        assert_eq!(off.p99_latency_ms, on.p99_latency_ms);
        // Every modeled series is untouched; the span-edge counter is the
        // one series the profiler itself adds.
        let modeled = |json: &str| -> String {
            match json.find("\"sfi_shard_span_events_total\"") {
                None => json.to_owned(),
                Some(i) => {
                    let rest = &json[i..];
                    let end = i + rest.find(", ").map_or(rest.len(), |e| e + 2);
                    format!("{}{}", &json[..i], &json[end..])
                }
            }
        };
        assert_eq!(modeled(&off.telemetry_json), modeled(&on.telemetry_json));
        assert!(on.telemetry_json.contains("sfi_shard_span_events_total"));
        assert!(off.traces.iter().flatten().all(|e| e.kind != TraceKind::Flow));
        assert_eq!(off.exemplars, BucketExemplars::new(), "no exemplars without spans");

        // Same seed, same spans: the instrumented run replays exactly too.
        assert_eq!(on, run(true));

        let edges: Vec<(u64, sfi_telemetry::SpanEdge)> = on
            .traces
            .iter()
            .flatten()
            .filter(|e| e.kind == TraceKind::Flow)
            .map(|e| (e.sandbox, unpack_span(e.arg).expect("well-formed span arg")))
            .collect();
        assert!(!edges.is_empty(), "spans on must emit flow events");
        let count = |lvl: SpanLevel, start: bool, end: bool| {
            edges.iter().filter(|(_, s)| s.level == lvl && s.start == start && s.end == end).count()
                as u64
        };
        // Every completion closes its invoke span; opens can exceed closes
        // (requests still running at the horizon).
        assert_eq!(count(SpanLevel::Invoke, false, true), on.completed);
        assert!(count(SpanLevel::Invoke, true, false) >= on.completed);
        // Cold-cache saturation queues requests, so wait spans open, and
        // recycle admissions close them (paired with an admission instant).
        assert!(count(SpanLevel::QueueWait, true, false) > 0);
        assert!(count(SpanLevel::QueueWait, false, true) > 0);
        assert!(count(SpanLevel::Admission, true, true) > 0);

        // Exemplars chase back to real request trace ids.
        let ids: std::collections::BTreeSet<u64> = edges.iter().map(|(tid, _)| *tid).collect();
        let mut seen = 0;
        for i in 0..40 {
            if let Some((tid, _)) = on.exemplars.get(i) {
                seen += 1;
                assert!(ids.contains(&tid), "exemplar trace id {tid} has no span edge");
            }
        }
        assert!(seen > 0, "completions must leave exemplars");
    }

    #[test]
    fn trace_capacity_zero_disables_recording() {
        let mut cfg = MultiCoreConfig::paper_rig(
            FaasWorkload::HashLoadBalance,
            ScalingMode::ColorGuard,
            CacheMode::Warm,
            2,
        );
        cfg.duration_ms = 120;
        cfg.trace_capacity = 0;
        let off = simulate_multicore(&cfg);
        assert!(off.traces.iter().all(Vec::is_empty));
        // Tracing must not perturb the simulation itself.
        let on = quick(ScalingMode::ColorGuard, CacheMode::Warm, 2);
        assert_eq!(off.completed, on.completed);
        assert_eq!(off.totals, on.totals);
        assert_eq!(off.p99_latency_ms, on.p99_latency_ms);
    }
}
