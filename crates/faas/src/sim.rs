//! The discrete-event FaaS simulation (§6.4.3, Figures 6 and 7).
//!
//! Reproduces the paper's rig: a single core serving N new requests per
//! 1 ms epoch, each request alternating IO waits (Poisson, 5 ms mean) with
//! compute stages, preempted at epoch granularity. Two scaling strategies
//! handle identical request streams:
//!
//! - **ColorGuard**: one process, one address space; a cooperative
//!   (Tokio-style) scheduler runs ready tasks back to back. Per compute
//!   slice it pays two sandbox transitions (host→guest→host, with the
//!   `wrpkru` ColorGuard adds) plus a future-poll. Context switches are
//!   only the OS timer tick; the TLB stays warm.
//! - **Multi-process**: the same load spread round-robin over K processes.
//!   The OS round-robins runnable processes at quantum granularity; every
//!   process change pays a direct switch cost, a dTLB flush-and-refill,
//!   and a cache-warmup penalty that grows with the number of competing
//!   processes — the contention effects Figure 7 decomposes.
//!
//! Requests are pre-generated from the seed, so both strategies see *the
//! same* arrivals, IO delays and per-request compute (derived from real
//! executions of the regex/templating/hash engines in this crate).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::hashlb::HashRing;
use crate::regex::Regex;
use crate::stats::{exponential, poisson};
use crate::template::{render_counted, Context};

/// The three FaaS workloads of §6.4.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaasWorkload {
    /// Regular-expression filtering of URLs.
    RegexFilter,
    /// Hash-based load balancing.
    HashLoadBalance,
    /// HTML templating.
    HtmlTemplate,
}

impl FaasWorkload {
    /// All three, in the paper's order.
    pub const ALL: [FaasWorkload; 3] =
        [FaasWorkload::HashLoadBalance, FaasWorkload::RegexFilter, FaasWorkload::HtmlTemplate];

    /// Display name (matches the figures).
    pub fn name(self) -> &'static str {
        match self {
            FaasWorkload::RegexFilter => "Regex filtering",
            FaasWorkload::HashLoadBalance => "Hash load-balance",
            FaasWorkload::HtmlTemplate => "HTML templating",
        }
    }

    /// Executes one request's worth of real work and returns work units
    /// (converted to compute-ns by the calibration constants below).
    fn service_work(self, rng: &mut StdRng, rt: &WorkloadRt) -> u64 {
        match self {
            FaasWorkload::RegexFilter => {
                // One request filters a batch of URLs (an access-log chunk).
                let mut work = 0;
                for _ in 0..1 {
                    let depth = rng.gen_range(2..6);
                    let mut url = String::from("/api");
                    for _ in 0..depth {
                        url.push('/');
                        let seg_len = rng.gen_range(3..12);
                        for _ in 0..seg_len {
                            url.push((b'a' + rng.gen_range(0..26)) as char);
                        }
                    }
                    for f in &rt.filters {
                        let (_, w) = f.is_match_counted(&url);
                        work += w;
                    }
                }
                work
            }
            FaasWorkload::HashLoadBalance => {
                // One request routes a batch of keys across service tiers.
                let mut work = 0;
                for _ in 0..4 {
                    let key = format!(
                        "/tenant/{}/object/{}",
                        rng.gen_range(0..512u32),
                        rng.gen::<u32>()
                    );
                    let (_, w) = rt.ring.route_counted(&key);
                    work += w;
                }
                work
            }
            FaasWorkload::HtmlTemplate => {
                // One request renders a multi-section page.
                let mut work = 0;
                for section in 0..1 {
                    let mut ctx = Context::new();
                    let items: Vec<String> = (0..rng.gen_range(6..20))
                        .map(|i| format!("item-{section}-{i}"))
                        .collect();
                    ctx.insert("title".into(), "Edge page".into());
                    ctx.insert("rows".into(), items.join("|"));
                    ctx.insert("user".into(), "visitor <3".into());
                    let (_, w) = render_counted(
                        "<html><h1>{{title}}</h1><p>Hello {{user}}</p>\
                         <ul>{{#each rows}}<li class=\"row\">{{item}}</li>{{/each}}</ul></html>",
                        &ctx,
                    )
                    .expect("static template renders");
                    work += w;
                }
                work
            }
        }
    }

    /// Modeled ns of guest compute per work unit.
    fn ns_per_work_unit(self) -> f64 {
        match self {
            FaasWorkload::RegexFilter => 76.0,
            FaasWorkload::HashLoadBalance => 69.0,
            FaasWorkload::HtmlTemplate => 62.0,
        }
    }
}

/// Pre-built workload state shared by all requests.
struct WorkloadRt {
    filters: Vec<Regex>,
    ring: HashRing,
}

impl WorkloadRt {
    fn new() -> WorkloadRt {
        WorkloadRt {
            filters: vec![
                Regex::new("^/api/v[0-9]+/users/[0-9]+$").expect("static"),
                Regex::new("\\.(css|js|png|jpg)$").expect("static"),
                Regex::new("^/(admin|internal)/").expect("static"),
                Regex::new("/[a-z]+/[a-z0-9-]+$").expect("static"),
            ],
            ring: HashRing::new(
                (0..16).map(|i| format!("origin-{i}")).collect::<Vec<_>>(),
                64,
            ),
        }
    }
}

/// How request arrivals are generated.
///
/// The legacy rig is *closed-loop*: exactly `requests_per_epoch` arrivals
/// per 1 ms epoch, which can never overrun the server faster than the
/// configured constant. The open-loop variants model internet traffic that
/// does not wait for responses: a seeded Poisson process whose per-epoch
/// counts are drawn from the same RNG stream as the request bodies, so a
/// run stays a pure function of the seed. `ClosedLoop` consumes the RNG
/// exactly as the pre-arrival-model code did — same seed, byte-identical
/// stream — which is what keeps the PR-5 artifacts stable.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum ArrivalModel {
    /// Fixed `requests_per_epoch` arrivals every epoch (legacy default).
    #[default]
    ClosedLoop,
    /// Open-loop Poisson arrivals at `rate_rps` requests per second.
    Poisson {
        /// Mean offered load (requests per second).
        rate_rps: f64,
    },
    /// Open-loop Poisson arrivals modulated by a cyclic phase schedule —
    /// bursty or diurnal load shapes.
    Phases {
        /// Base offered load (requests per second) a multiplier of 1.0
        /// corresponds to.
        base_rps: f64,
        /// The schedule, applied in order and repeated. Must be non-empty
        /// with a positive total duration (enforced at stream generation).
        phases: Vec<ArrivalPhase>,
    },
}

/// One segment of an [`ArrivalModel::Phases`] schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalPhase {
    /// How long this phase lasts (ms of simulated time).
    pub duration_ms: u64,
    /// Rate multiplier applied to the base rate during the phase (0.0 is a
    /// legal idle phase).
    pub rate_multiplier: f64,
}

impl ArrivalModel {
    /// A flash-crowd shape: 80 ms at 60% of base load, then a 20 ms burst
    /// at 2.6×, repeating — mean ≈ base, peak ≈ 2.6× base.
    pub fn bursty(base_rps: f64) -> ArrivalModel {
        ArrivalModel::Phases {
            base_rps,
            phases: vec![
                ArrivalPhase { duration_ms: 80, rate_multiplier: 0.6 },
                ArrivalPhase { duration_ms: 20, rate_multiplier: 2.6 },
            ],
        }
    }

    /// A compressed diurnal cycle over `period_ms`: trough, shoulder, peak,
    /// shoulder (0.4× / 1.0× / 1.6× / 1.0×).
    pub fn diurnal(base_rps: f64, period_ms: u64) -> ArrivalModel {
        let q = (period_ms / 4).max(1);
        ArrivalModel::Phases {
            base_rps,
            phases: vec![
                ArrivalPhase { duration_ms: q, rate_multiplier: 0.4 },
                ArrivalPhase { duration_ms: q, rate_multiplier: 1.0 },
                ArrivalPhase { duration_ms: q, rate_multiplier: 1.6 },
                ArrivalPhase { duration_ms: q, rate_multiplier: 1.0 },
            ],
        }
    }

    /// Expected arrivals during epoch `epoch_ms` (requests per ms), or
    /// `None` in closed-loop mode.
    fn epoch_rate(&self, epoch_ms: u64) -> Option<f64> {
        match self {
            ArrivalModel::ClosedLoop => None,
            ArrivalModel::Poisson { rate_rps } => Some(rate_rps / 1_000.0),
            ArrivalModel::Phases { base_rps, phases } => {
                let total: u64 = phases.iter().map(|p| p.duration_ms).sum();
                assert!(
                    !phases.is_empty() && total > 0,
                    "a phase schedule needs a positive cycle length"
                );
                let mut pos = epoch_ms % total;
                for p in phases {
                    if pos < p.duration_ms {
                        return Some(base_rps / 1_000.0 * p.rate_multiplier);
                    }
                    pos -= p.duration_ms;
                }
                unreachable!("pos < total by construction");
            }
        }
    }
}

/// How the load is scaled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingMode {
    /// Single process, ColorGuard-packed instances.
    ColorGuard,
    /// K OS processes, each its own address space.
    MultiProcess {
        /// Number of processes.
        processes: u32,
    },
}

/// The chaos knobs: guest traps and infrastructure faults injected into the
/// simulation, plus the platform's retry policy. All decisions are
/// stateless hashes of `(seed, request, stage, attempt)`, so a run is fully
/// deterministic and the zero-rate model is bit-identical to no model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureModel {
    /// Probability that a compute stage traps its sandbox (per attempt).
    pub trap_prob: f64,
    /// Probability that replacing a faulted instance transiently fails
    /// (injected `ENOMEM`/map-count pressure), forcing a second teardown.
    pub infra_fault_prob: f64,
    /// Retries per request before it is dead-lettered.
    pub max_retries: u32,
    /// First retry backoff (ns); doubled on every subsequent attempt.
    pub backoff_base_ns: u64,
    /// Cost of recycling the poisoned instance and instantiating a
    /// replacement (quarantine scrub + re-color + write-in), charged as
    /// overhead on the faulting process's CPU.
    pub recycle_ns: u64,
}

impl Default for FailureModel {
    fn default() -> Self {
        FailureModel {
            trap_prob: 0.0,
            infra_fault_prob: 0.0,
            max_retries: 3,
            backoff_base_ns: 250_000, // 0.25 ms
            recycle_ns: 40_000,       // madvise + pkey_mprotect + write-in
        }
    }
}

impl FailureModel {
    /// A model injecting guest traps at `rate` with default retry policy.
    pub fn with_trap_rate(rate: f64) -> FailureModel {
        FailureModel { trap_prob: rate, infra_fault_prob: rate / 4.0, ..FailureModel::default() }
    }
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Which workload.
    pub workload: FaasWorkload,
    /// Scaling strategy.
    pub mode: ScalingMode,
    /// Simulated duration in milliseconds.
    pub duration_ms: u64,
    /// New requests injected per 1 ms epoch (closed-loop mode; open-loop
    /// models ignore it).
    pub requests_per_epoch: u32,
    /// Arrival generation — closed-loop by default (byte-compatible with
    /// the legacy rig), or an open-loop seeded process.
    pub arrivals: ArrivalModel,
    /// Mean IO delay (ms), Poisson-distributed (§6.4.3 uses 5 ms).
    pub io_mean_ms: f64,
    /// IO/compute stages per request.
    pub stages: u32,
    /// RNG seed (same seed ⇒ identical request stream in both modes).
    pub seed: u64,
    /// Cost constants.
    pub costs: SimCosts,
    /// Injected-failure model (zero rates by default).
    pub failures: FailureModel,
}

/// Cost constants for the scheduler models.
#[derive(Debug, Clone)]
pub struct SimCosts {
    /// OS scheduling quantum (ns).
    pub quantum_ns: u64,
    /// Direct cost of an OS process switch (ns).
    pub process_switch_ns: f64,
    /// dTLB entries refilled after a flush.
    pub tlb_refill_entries: u64,
    /// ns per dTLB refill miss.
    pub tlb_miss_ns: f64,
    /// Cache-warmup penalty after a process switch at full contention (ns).
    pub cache_warm_ns: f64,
    /// In-process task switch (future poll) cost (ns).
    pub task_switch_ns: f64,
    /// Sandbox transition pair per compute slice without ColorGuard (ns).
    pub transition_pair_ns: f64,
    /// Extra per transition pair with ColorGuard (2 × wrpkru, ns).
    pub colorguard_extra_ns: f64,
    /// Base dTLB misses per compute slice (warm working set).
    pub base_slice_tlb_misses: u64,
    /// OS timer tick rate (Hz) — the floor on context switches.
    pub timer_hz: u64,
}

impl Default for SimCosts {
    fn default() -> Self {
        SimCosts {
            quantum_ns: 1_000_000,
            process_switch_ns: 170.0,
            tlb_refill_entries: 64,
            tlb_miss_ns: 14.0,
            cache_warm_ns: 480.0,
            task_switch_ns: 120.0,
            transition_pair_ns: 2.0 * 30.34,
            colorguard_extra_ns: 2.0 * 21.2,
            base_slice_tlb_misses: 4,
            timer_hz: 100,
        }
    }
}

impl SimConfig {
    /// The paper's rig: 1 ms epochs, 5 ms Poisson IO, three-stage requests,
    /// 60 simulated seconds.
    pub fn paper_rig(workload: FaasWorkload, mode: ScalingMode) -> SimConfig {
        SimConfig {
            workload,
            mode,
            duration_ms: 10_000,
            requests_per_epoch: 40,
            arrivals: ArrivalModel::ClosedLoop,
            io_mean_ms: 5.0,
            stages: 3,
            seed: 0x5E65E9,
            costs: SimCosts::default(),
            failures: FailureModel::default(),
        }
    }
}

/// Results of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimReport {
    /// Requests offered (arrived).
    pub offered: u64,
    /// Requests completed within the window.
    pub completed: u64,
    /// Completions per second.
    pub throughput_rps: f64,
    /// OS context switches.
    pub context_switches: u64,
    /// dTLB misses.
    pub dtlb_misses: u64,
    /// CPU time spent on useful guest compute (ns).
    pub busy_ns: u64,
    /// CPU time burned on switching/transitions/refills (ns).
    pub overhead_ns: u64,
    /// Mean request latency (ms) over completed requests.
    pub mean_latency_ms: f64,
    /// Median request latency (ms).
    pub p50_latency_ms: f64,
    /// 99th-percentile request latency (ms) — the tail FaaS platforms care
    /// about.
    pub p99_latency_ms: f64,
    /// Injected guest traps (poisoned instances).
    pub faults: u64,
    /// Injected infrastructure faults during instance replacement.
    pub infra_faults: u64,
    /// Request attempts re-queued after a fault.
    pub retries: u64,
    /// Requests abandoned after exhausting the retry budget.
    pub dead_lettered: u64,
    /// Fraction of *resolved* requests (completed or dead-lettered) that
    /// completed. 1.0 when nothing was dead-lettered.
    pub availability: f64,
    /// Completions per second that needed no retry — throughput with the
    /// rework discounted.
    pub goodput_rps: f64,
}

/// Renders a single-core [`SimReport`] as a metrics registry, the same
/// series shapes the sharded engine exports (`sfi_sim_*` namespace), so the
/// fig6/fig7/§6.4.x bench binaries can embed a `"telemetry"` JSON section
/// exactly like `figX_multicore` does. `labels` are applied to every series
/// (e.g. `mode="colorguard"`), letting a bench merge several runs'
/// registries into one snapshot with each run's series kept distinct.
/// Gauges carry the float summary statistics scaled to integers (`_milli`
/// = value × 1000, rounded).
pub fn sim_registry(r: &SimReport, labels: &[(&'static str, &str)]) -> sfi_telemetry::Registry {
    let mut reg = sfi_telemetry::Registry::new();
    let counters: [(&'static str, u64); 9] = [
        ("sfi_sim_offered_total", r.offered),
        ("sfi_sim_completed_total", r.completed),
        ("sfi_sim_ctx_switches_total", r.context_switches),
        ("sfi_sim_dtlb_misses_total", r.dtlb_misses),
        ("sfi_sim_busy_ns_total", r.busy_ns),
        ("sfi_sim_overhead_ns_total", r.overhead_ns),
        ("sfi_sim_faults_total", r.faults + r.infra_faults),
        ("sfi_sim_retries_total", r.retries),
        ("sfi_sim_dead_lettered_total", r.dead_lettered),
    ];
    for (name, v) in counters {
        let id = reg.try_counter(name, labels).expect("one registry per run");
        reg.add(id, v);
    }
    let gauges: [(&'static str, f64); 4] = [
        ("sfi_sim_throughput_rps_milli", r.throughput_rps),
        ("sfi_sim_mean_latency_ms_milli", r.mean_latency_ms),
        ("sfi_sim_p99_latency_ms_milli", r.p99_latency_ms),
        ("sfi_sim_availability_milli", r.availability),
    ];
    for (name, v) in gauges {
        let id = reg.try_gauge(name, labels).expect("one registry per run");
        reg.set(id, (v * 1000.0).round() as i64);
    }
    reg
}

#[derive(Debug, Clone)]
pub(crate) struct Request {
    pub(crate) arrival_ns: u64,
    pub(crate) io_ns: Vec<u64>,
    pub(crate) compute_ns: Vec<u64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// Request becomes ready to compute (arrival IO or inter-stage IO done).
    Ready { rid: u32, stage: u32 },
    /// The CPU finishes the current slice.
    SliceDone,
}

/// Pre-generates a request stream for `duration_ms` 1 ms epochs, with
/// per-request compute derived from real executions of the workload
/// engines. Closed-loop mode injects exactly `requests_per_epoch` arrivals
/// per epoch and consumes the RNG exactly as the legacy generator did;
/// open-loop models draw the per-epoch count from the same RNG stream
/// first. Either way the stream is a pure function of its arguments, so any
/// two simulations given the same parameters see identical arrivals, IO
/// delays and compute (the shared basis for both the single-core and the
/// sharded multi-core schedulers).
pub(crate) fn generate_stream(
    workload: FaasWorkload,
    duration_ms: u64,
    requests_per_epoch: u32,
    io_mean_ms: f64,
    stages: u32,
    seed: u64,
    arrivals: &ArrivalModel,
) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    let rt = WorkloadRt::new();
    let mut reqs = Vec::new();
    for e in 0..duration_ms {
        let count = match arrivals.epoch_rate(e) {
            None => requests_per_epoch,
            Some(rate_per_ms) => crate::stats::poisson_count(&mut rng, rate_per_ms) as u32,
        };
        for _ in 0..count {
            let arrival_ns = e * 1_000_000 + rng.gen_range(0..1_000_000);
            let total_work = workload.service_work(&mut rng, &rt);
            let per_stage_ns = (total_work as f64 * workload.ns_per_work_unit() / f64::from(stages))
                .max(1_000.0) as u64;
            let io_ns = (0..stages)
                .map(|_| {
                    // Poisson in ms, jittered within the ms by an exponential.
                    let ms = poisson(&mut rng, io_mean_ms).max(1);
                    ms * 1_000_000 + (exponential(&mut rng, 0.2) * 1e6) as u64
                })
                .collect();
            let compute_ns = vec![per_stage_ns; stages as usize];
            reqs.push(Request { arrival_ns, io_ns, compute_ns });
        }
    }
    reqs
}

/// Pre-generates the request stream (identical across modes for a seed).
fn generate_requests(cfg: &SimConfig) -> Vec<Request> {
    generate_stream(
        cfg.workload,
        cfg.duration_ms,
        cfg.requests_per_epoch,
        cfg.io_mean_ms,
        cfg.stages,
        cfg.seed,
        &cfg.arrivals,
    )
}

/// Stateless fault draw: uniform in [0, 1) from (seed, stream, index) —
/// the same construction the vm chaos layer uses, so fault schedules are a
/// pure function of the seed.
pub(crate) fn fault_draw(seed: u64, stream: u64, index: u64) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(index.wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Runs the simulation.
pub fn simulate(cfg: &SimConfig) -> SimReport {
    let requests = generate_requests(cfg);
    let nproc = match cfg.mode {
        ScalingMode::ColorGuard => 1u32,
        ScalingMode::MultiProcess { processes } => processes.max(1),
    };
    let colorguard = cfg.mode == ScalingMode::ColorGuard;
    let costs = &cfg.costs;
    let horizon_ns = cfg.duration_ms * 1_000_000;

    // Per-process ready queues of (rid, stage, remaining_ns).
    let mut ready: Vec<VecDeque<(u32, u32, u64)>> = vec![VecDeque::new(); nproc as usize];
    let mut heap: BinaryHeap<Reverse<(u64, u64, Event)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let push = |heap: &mut BinaryHeap<Reverse<(u64, u64, Event)>>, seq: &mut u64, t: u64, e: Event| {
        *seq += 1;
        heap.push(Reverse((t, *seq, e)));
    };

    for (rid, r) in requests.iter().enumerate() {
        push(&mut heap, &mut seq, r.arrival_ns + r.io_ns[0], Event::Ready { rid: rid as u32, stage: 0 });
    }

    let mut cpu_busy = false;
    let mut current_proc: u32 = u32::MAX;
    let mut proc_run_since_switch: u64 = 0;
    let mut rr_cursor: u32 = 0;
    // The slice the CPU is executing: (proc, rid, stage, slice_ns, remaining_after).
    let mut running: Option<(u32, u32, u32, u64, u64)> = None;

    let mut completed = 0u64;
    let mut ctx_switches = 0u64;
    let mut dtlb = 0u64;
    let mut busy_ns = 0u64;
    let mut overhead_ns = 0u64;
    let mut latencies = Vec::new();

    // Failure-model state.
    let fm = cfg.failures;
    let mut attempts: Vec<u32> = vec![0; requests.len()];
    let mut faults = 0u64;
    let mut infra_faults = 0u64;
    let mut retries = 0u64;
    let mut dead_lettered = 0u64;
    let mut clean_completed = 0u64;

    let epoch_ns = 1_000_000u64;
    let contention = f64::from(nproc.min(15)) / 15.0;

    // Dispatch: choose the next (proc, task) and start a slice at `now`.
    // Returns the SliceDone time.
    let dispatch = |now: u64,
                        ready: &mut Vec<VecDeque<(u32, u32, u64)>>,
                        current_proc: &mut u32,
                        proc_run: &mut u64,
                        rr_cursor: &mut u32,
                        ctx_switches: &mut u64,
                        dtlb: &mut u64,
                        busy_ns: &mut u64,
                        overhead_ns: &mut u64,
                        running: &mut Option<(u32, u32, u32, u64, u64)>|
     -> Option<u64> {
        // Fair round-robin at slice granularity: tasks yield at each epoch
        // and the kernel picks the next runnable process. (Wakeup
        // preemption makes CFS behave this way under massive IO-bound
        // concurrency.)
        let proc = {
            let mut chosen = None;
            for k in 0..nproc {
                let cand = (*rr_cursor + 1 + k) % nproc;
                if !ready[cand as usize].is_empty() {
                    chosen = Some(cand);
                    break;
                }
            }
            chosen?
        };
        let mut start_overhead = 0.0f64;
        if proc != *current_proc {
            if *current_proc != u32::MAX {
                // A real OS process switch (multi-process only; nproc == 1
                // never reaches here). The refill and warm-up grow with
                // contention: more competing processes leave colder state.
                *ctx_switches += 1;
                let refill = (costs.tlb_refill_entries as f64 * contention).round() as u64;
                *dtlb += refill;
                start_overhead += costs.process_switch_ns
                    + refill as f64 * costs.tlb_miss_ns
                    + costs.cache_warm_ns * contention;
            }
            *current_proc = proc;
            *rr_cursor = proc;
            *proc_run = 0;
        }
        let (rid, stage, remaining) = ready[proc as usize].pop_front().expect("picked nonempty");
        // In-process scheduling costs per slice.
        start_overhead += costs.task_switch_ns + costs.transition_pair_ns;
        if colorguard {
            start_overhead += costs.colorguard_extra_ns;
        }
        *dtlb += costs.base_slice_tlb_misses;
        let slice = remaining.min(epoch_ns);
        *proc_run += slice;
        *busy_ns += slice;
        *overhead_ns += start_overhead as u64;
        *running = Some((proc, rid, stage, slice, remaining - slice));
        Some(now + start_overhead as u64 + slice)
    };

    while let Some(Reverse((t, _, ev))) = heap.pop() {
        if t > horizon_ns {
            break;
        }
        match ev {
            Event::Ready { rid, stage } => {
                let proc = rid % nproc;
                let remaining = requests[rid as usize].compute_ns[stage as usize];
                ready[proc as usize].push_back((rid, stage, remaining));
                if !cpu_busy {
                    if let Some(done) = dispatch(
                        t,
                        &mut ready,
                        &mut current_proc,
                        &mut proc_run_since_switch,
                        &mut rr_cursor,
                        &mut ctx_switches,
                        &mut dtlb,
                        &mut busy_ns,
                        &mut overhead_ns,
                        &mut running,
                    ) {
                        cpu_busy = true;
                        push(&mut heap, &mut seq, done, Event::SliceDone);
                    }
                }
            }
            Event::SliceDone => {
                let (proc, rid, stage, _slice, remaining) =
                    running.take().expect("SliceDone implies a running slice");
                if remaining > 0 {
                    // Epoch-preempted: yield to the back of the queue.
                    ready[proc as usize].push_back((rid, stage, remaining));
                } else {
                    let req = &requests[rid as usize];
                    let attempt = attempts[rid as usize];
                    let trapped = fm.trap_prob > 0.0
                        && fault_draw(
                            cfg.seed ^ 0xC4A05,
                            u64::from(rid) << 8 | u64::from(stage),
                            u64::from(attempt),
                        ) < fm.trap_prob;
                    if trapped {
                        // The sandbox trapped: poison, recycle the slot and
                        // instantiate a replacement — all charged as
                        // overhead. A transient infra fault during
                        // replacement forces a second teardown.
                        faults += 1;
                        let mut repl_ns = fm.recycle_ns;
                        if fm.infra_fault_prob > 0.0
                            && fault_draw(
                                cfg.seed ^ 0x1F4A,
                                u64::from(rid) << 8 | u64::from(stage),
                                u64::from(attempt),
                            ) < fm.infra_fault_prob
                        {
                            infra_faults += 1;
                            repl_ns += 2 * fm.recycle_ns;
                        }
                        overhead_ns += repl_ns;
                        attempts[rid as usize] = attempt + 1;
                        if attempt + 1 > fm.max_retries {
                            dead_lettered += 1;
                        } else {
                            // Exponential backoff, then re-run this stage on
                            // the replacement instance.
                            retries += 1;
                            let backoff = fm.backoff_base_ns << attempt.min(16);
                            push(
                                &mut heap,
                                &mut seq,
                                t + repl_ns + backoff,
                                Event::Ready { rid, stage },
                            );
                        }
                    } else {
                        let next = stage + 1;
                        if (next as usize) < req.compute_ns.len() {
                            push(
                                &mut heap,
                                &mut seq,
                                t + req.io_ns[next as usize],
                                Event::Ready { rid, stage: next },
                            );
                        } else {
                            completed += 1;
                            if attempt == 0 {
                                clean_completed += 1;
                            }
                            latencies.push((t - req.arrival_ns) as f64 / 1e6);
                        }
                    }
                }
                cpu_busy = false;
                if let Some(done) = dispatch(
                    t,
                    &mut ready,
                    &mut current_proc,
                    &mut proc_run_since_switch,
                    &mut rr_cursor,
                    &mut ctx_switches,
                    &mut dtlb,
                    &mut busy_ns,
                    &mut overhead_ns,
                    &mut running,
                ) {
                    cpu_busy = true;
                    push(&mut heap, &mut seq, done, Event::SliceDone);
                }
            }
        }
    }

    // The OS timer tick floor (both modes).
    ctx_switches += cfg.duration_ms / 1000 * costs.timer_hz;

    let mut sorted = latencies.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let (p50, p99) = (
        crate::stats::percentile_sorted(&sorted, 0.50),
        crate::stats::percentile_sorted(&sorted, 0.99),
    );

    SimReport {
        offered: requests.len() as u64,
        completed,
        throughput_rps: completed as f64 / (cfg.duration_ms as f64 / 1000.0),
        context_switches: ctx_switches,
        dtlb_misses: dtlb,
        busy_ns,
        overhead_ns,
        mean_latency_ms: crate::stats::mean(&latencies),
        p50_latency_ms: p50,
        p99_latency_ms: p99,
        faults,
        infra_faults,
        retries,
        dead_lettered,
        availability: if completed + dead_lettered == 0 {
            1.0
        } else {
            completed as f64 / (completed + dead_lettered) as f64
        },
        goodput_rps: clean_completed as f64 / (cfg.duration_ms as f64 / 1000.0),
    }
}

/// Convenience: ColorGuard throughput gain (%) over `processes`-process
/// scaling for one workload — one point of Figure 6.
pub fn throughput_gain_percent(workload: FaasWorkload, processes: u32) -> f64 {
    let cg = simulate(&SimConfig::paper_rig(workload, ScalingMode::ColorGuard));
    let mp = simulate(&SimConfig::paper_rig(
        workload,
        ScalingMode::MultiProcess { processes },
    ));
    (cg.throughput_rps - mp.throughput_rps) / mp.throughput_rps * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(workload: FaasWorkload, mode: ScalingMode) -> SimReport {
        let mut cfg = SimConfig::paper_rig(workload, mode);
        cfg.duration_ms = 800;
        simulate(&cfg)
    }

    #[test]
    fn determinism() {
        let a = quick(FaasWorkload::RegexFilter, ScalingMode::ColorGuard);
        let b = quick(FaasWorkload::RegexFilter, ScalingMode::ColorGuard);
        assert_eq!(a, b);
    }

    #[test]
    fn same_offered_load_across_modes() {
        let cg = quick(FaasWorkload::HtmlTemplate, ScalingMode::ColorGuard);
        let mp = quick(FaasWorkload::HtmlTemplate, ScalingMode::MultiProcess { processes: 8 });
        assert_eq!(cg.offered, mp.offered, "identical request streams");
    }

    #[test]
    fn colorguard_completes_more_under_pressure() {
        let cg = quick(FaasWorkload::RegexFilter, ScalingMode::ColorGuard);
        let mp15 = quick(FaasWorkload::RegexFilter, ScalingMode::MultiProcess { processes: 15 });
        assert!(
            cg.throughput_rps > mp15.throughput_rps,
            "cg {} vs mp15 {}",
            cg.throughput_rps,
            mp15.throughput_rps
        );
    }

    #[test]
    fn context_switches_grow_with_processes() {
        let mut prev = 0u64;
        for k in [1u32, 4, 8, 15] {
            let r = quick(FaasWorkload::HashLoadBalance, ScalingMode::MultiProcess { processes: k });
            // Counts saturate once nearly every slice changes process; allow
            // small wobble but no real shrinkage.
            assert!(
                r.context_switches * 10 >= prev * 9,
                "switches must not really shrink: k={k} {} vs {prev}",
                r.context_switches
            );
            prev = prev.max(r.context_switches);
        }
        let cg = quick(FaasWorkload::HashLoadBalance, ScalingMode::ColorGuard);
        let mp15 = quick(FaasWorkload::HashLoadBalance, ScalingMode::MultiProcess { processes: 15 });
        assert!(cg.context_switches * 5 < mp15.context_switches, "ColorGuard stays flat");
    }

    #[test]
    fn dtlb_misses_grow_with_processes() {
        let cg = quick(FaasWorkload::HtmlTemplate, ScalingMode::ColorGuard);
        let mp2 = quick(FaasWorkload::HtmlTemplate, ScalingMode::MultiProcess { processes: 2 });
        let mp15 = quick(FaasWorkload::HtmlTemplate, ScalingMode::MultiProcess { processes: 15 });
        assert!(mp15.dtlb_misses > mp2.dtlb_misses);
        assert!(cg.dtlb_misses < mp15.dtlb_misses / 2, "the warm-TLB advantage");
    }

    #[test]
    fn gain_grows_with_process_count() {
        // A compressed version of Figure 6's shape.
        let g2 = {
            let mut c = SimConfig::paper_rig(FaasWorkload::RegexFilter, ScalingMode::ColorGuard);
            c.duration_ms = 1_200;
            let cg = simulate(&c);
            c.mode = ScalingMode::MultiProcess { processes: 2 };
            let mp = simulate(&c);
            (cg.throughput_rps - mp.throughput_rps) / mp.throughput_rps * 100.0
        };
        let g15 = {
            let mut c = SimConfig::paper_rig(FaasWorkload::RegexFilter, ScalingMode::ColorGuard);
            c.duration_ms = 1_200;
            let cg = simulate(&c);
            c.mode = ScalingMode::MultiProcess { processes: 15 };
            let mp = simulate(&c);
            (cg.throughput_rps - mp.throughput_rps) / mp.throughput_rps * 100.0
        };
        assert!(g15 > g2, "gain at 15 procs ({g15:.1}%) must exceed gain at 2 ({g2:.1}%)");
        assert!((5.0..=45.0).contains(&g15), "paper reports up to ≈29%: got {g15:.1}%");
    }

    #[test]
    fn latency_reported() {
        let r = quick(FaasWorkload::RegexFilter, ScalingMode::ColorGuard);
        assert!(r.mean_latency_ms > 0.0);
        assert!(r.completed > 0);
        assert!(r.busy_ns > 0);
        assert!(r.p50_latency_ms <= r.p99_latency_ms);
        assert!(r.p50_latency_ms > 0.0);
    }

    #[test]
    fn zero_rate_failure_model_changes_nothing() {
        let clean = quick(FaasWorkload::RegexFilter, ScalingMode::ColorGuard);
        assert_eq!(clean.faults, 0);
        assert_eq!(clean.retries, 0);
        assert_eq!(clean.dead_lettered, 0);
        assert_eq!(clean.availability, 1.0);
        assert_eq!(clean.goodput_rps, clean.throughput_rps, "no rework ⇒ goodput = throughput");
    }

    #[test]
    fn failure_runs_are_deterministic() {
        let run = |_: ()| {
            let mut cfg = SimConfig::paper_rig(FaasWorkload::RegexFilter, ScalingMode::ColorGuard);
            cfg.duration_ms = 600;
            cfg.failures = FailureModel::with_trap_rate(0.15);
            simulate(&cfg)
        };
        let a = run(());
        let b = run(());
        assert_eq!(a, b);
        assert!(a.faults > 0, "a 15% rate over hundreds of stages must fire");
        assert!(a.retries > 0);
    }

    #[test]
    fn degradation_is_graceful_and_monotone() {
        let at = |rate: f64| {
            let mut cfg = SimConfig::paper_rig(FaasWorkload::HashLoadBalance, ScalingMode::ColorGuard);
            cfg.duration_ms = 600;
            cfg.failures = FailureModel::with_trap_rate(rate);
            simulate(&cfg)
        };
        let clean = at(0.0);
        let light = at(0.1);
        let heavy = at(0.4);
        assert!(light.throughput_rps <= clean.throughput_rps);
        assert!(heavy.throughput_rps < light.throughput_rps);
        // Graceful: even at a 40% per-stage trap rate the platform keeps
        // completing a meaningful share of the load — no cliff to zero.
        assert!(
            heavy.throughput_rps > 0.25 * clean.throughput_rps,
            "collapse: {} vs clean {}",
            heavy.throughput_rps,
            clean.throughput_rps
        );
        assert!(heavy.faults > light.faults);
        assert!(heavy.goodput_rps < heavy.throughput_rps || heavy.retries == 0);
        assert!(heavy.availability > 0.5, "retries keep most requests alive");
    }

    #[test]
    fn retry_cap_dead_letters() {
        let mut cfg = SimConfig::paper_rig(FaasWorkload::HtmlTemplate, ScalingMode::ColorGuard);
        cfg.duration_ms = 400;
        cfg.failures = FailureModel {
            trap_prob: 0.9,
            max_retries: 1,
            ..FailureModel::default()
        };
        let r = simulate(&cfg);
        assert!(r.dead_lettered > 0, "a 90% trap rate with 1 retry must dead-letter");
        assert!(r.availability < 1.0);
        // Accounting sanity: every dead-letter burned its retry budget.
        assert!(r.faults >= r.dead_lettered * u64::from(cfg.failures.max_retries + 1));
    }

    #[test]
    fn dead_letter_saturation_floors_availability_without_nan() {
        // The pathological edge: every attempt traps and there is no retry
        // budget, so *every* resolved request dead-letters. Availability
        // must hit its 0.0 floor exactly — a finite number, not NaN or a
        // panic — because /healthz serves this value verbatim.
        let mut cfg = SimConfig::paper_rig(FaasWorkload::HashLoadBalance, ScalingMode::ColorGuard);
        cfg.duration_ms = 400;
        cfg.failures = FailureModel { trap_prob: 1.0, max_retries: 0, ..FailureModel::default() };
        let r = simulate(&cfg);
        assert_eq!(r.completed, 0, "a 100% trap rate with no retries completes nothing");
        assert!(r.dead_lettered > 0, "offered load must resolve to dead letters");
        assert_eq!(r.availability, 0.0, "availability must floor at exactly 0.0");
        assert!(r.availability.is_finite());
        assert!(r.goodput_rps == 0.0 && r.goodput_rps.is_finite());
        assert!(r.mean_latency_ms.is_finite(), "empty latency set must not yield NaN");
        assert!(r.p99_latency_ms.is_finite());
        // The degenerate-but-different edge: nothing resolved at all (zero
        // duration) reports availability 1.0 by convention, not 0/0.
        let mut empty = cfg.clone();
        empty.duration_ms = 0;
        let e = simulate(&empty);
        assert_eq!((e.completed, e.dead_lettered), (0, 0));
        assert_eq!(e.availability, 1.0, "no resolved requests ⇒ vacuous availability");
    }

    #[test]
    fn open_loop_arrivals_are_deterministic_and_scale_with_rate() {
        let at = |rate: f64| {
            let mut cfg = SimConfig::paper_rig(FaasWorkload::HashLoadBalance, ScalingMode::ColorGuard);
            cfg.duration_ms = 600;
            cfg.arrivals = ArrivalModel::Poisson { rate_rps: rate };
            simulate(&cfg)
        };
        let a = at(20_000.0);
        let b = at(20_000.0);
        assert_eq!(a, b, "open-loop runs replay byte-identically");
        let heavy = at(60_000.0);
        // Poisson(λ) over 600 epochs: mean within a few percent of λ·T.
        let expect = |rate: f64| rate / 1000.0 * 600.0;
        assert!((a.offered as f64 - expect(20_000.0)).abs() < 0.1 * expect(20_000.0));
        assert!((heavy.offered as f64 - expect(60_000.0)).abs() < 0.1 * expect(60_000.0));
        assert!(heavy.offered > 2 * a.offered, "offered load follows the rate");
    }

    #[test]
    fn closed_loop_flag_is_byte_compatible_with_legacy_stream() {
        // The explicit flag and the default must generate the *same* stream
        // — the byte-compat contract the PR-5 artifacts rest on. Both paths
        // must also match a stream generated with a different (ignored)
        // open-loop-only knob untouched.
        let base = generate_stream(
            FaasWorkload::RegexFilter, 50, 7, 5.0, 3, 0xA5A5, &ArrivalModel::ClosedLoop,
        );
        let dflt = generate_stream(
            FaasWorkload::RegexFilter, 50, 7, 5.0, 3, 0xA5A5, &ArrivalModel::default(),
        );
        assert_eq!(base.len(), dflt.len());
        for (a, b) in base.iter().zip(&dflt) {
            assert_eq!((a.arrival_ns, &a.io_ns, &a.compute_ns), (b.arrival_ns, &b.io_ns, &b.compute_ns));
        }
        assert_eq!(base.len(), 50 * 7, "closed loop injects exactly N per epoch");
    }

    #[test]
    fn phase_schedules_cycle_and_shape_the_load() {
        // Bursty: same mean neighborhood as flat Poisson, but per-epoch
        // counts must swing between trough and burst phases.
        let burst = ArrivalModel::bursty(40_000.0);
        let s = generate_stream(
            FaasWorkload::HashLoadBalance, 200, 0, 1.0, 1, 0x7777, &burst,
        );
        assert!(!s.is_empty());
        let mut per_epoch = vec![0u64; 200];
        for r in &s {
            per_epoch[(r.arrival_ns / 1_000_000) as usize] += 1;
        }
        // Phase boundaries at 80/100 per the bursty schedule: compare mean
        // arrivals inside trough epochs vs burst epochs across both cycles.
        let trough: u64 = (0..80).chain(100..180).map(|e| per_epoch[e]).sum();
        let burst_n: u64 = (80..100).chain(180..200).map(|e| per_epoch[e]).sum();
        // 160 trough epochs at 24/ms vs 40 burst epochs at 104/ms.
        assert!(
            burst_n * 160 > 2 * trough * 40,
            "burst epochs must run far hotter: burst {burst_n} vs trough {trough}"
        );
        // Diurnal constructor produces a positive-length 4-phase cycle.
        match ArrivalModel::diurnal(10_000.0, 400) {
            ArrivalModel::Phases { phases, .. } => {
                assert_eq!(phases.len(), 4);
                assert_eq!(phases.iter().map(|p| p.duration_ms).sum::<u64>(), 400);
            }
            other => panic!("diurnal must be a phase schedule, got {other:?}"),
        }
    }

    #[test]
    fn multiprocess_overload_shows_up_in_tail_latency() {
        let cg = quick(FaasWorkload::RegexFilter, ScalingMode::ColorGuard);
        let mp = quick(FaasWorkload::RegexFilter, ScalingMode::MultiProcess { processes: 15 });
        assert!(
            mp.p99_latency_ms > cg.p99_latency_ms,
            "switch overhead must surface in the tail: cg {} vs mp {}",
            cg.p99_latency_ms,
            mp.p99_latency_ms
        );
    }
}
