//! # sfi-faas: the FaaS-edge scaling simulation
//!
//! Reproduces §6.4.3 of the paper — ColorGuard's single-address-space
//! scaling versus multi-process scaling, on a deterministic discrete-event
//! model of the paper's single-core rig (Tokio-style scheduling, 1 ms
//! epochs, Poisson IO at 5 ms).
//!
//! The three FaaS workloads are implemented for real, from scratch (the
//! offline crate policy excludes `regex` et al.):
//!
//! - [`regex::Regex`] — a linear-time Thompson-NFA engine for URL filtering;
//! - [`template`] — an HTML templating engine with escaping, loops and
//!   conditionals;
//! - [`hashlb`] — FNV-1a + a consistent-hash ring for load balancing.
//!
//! Per-request compute in the simulation is derived from *actual* runs of
//! these engines, so workload differences in Figures 6/7 come from real
//! work, not made-up constants.
//!
//! ```
//! use sfi_faas::{simulate, FaasWorkload, ScalingMode, SimConfig};
//! let mut cfg = SimConfig::paper_rig(FaasWorkload::HashLoadBalance, ScalingMode::ColorGuard);
//! cfg.duration_ms = 1_000; // 1 simulated second
//! let report = simulate(&cfg);
//! assert!(report.completed > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hashlb;
pub mod qos;
pub mod regex;
pub mod stats;
pub mod template;

mod fleet;
mod serve;
mod shard;
mod sim;

pub use fleet::{
    fleet_serve_blocking, AutoscalePolicy, FleetAlertPolicy, FleetConfig, FleetSupervisor,
    MemberState, MemberStatus, RetireReason, FLEET_BURN_RULE, MEMBER_AVAILABILITY_RULE,
};
pub use qos::{ClassReport, QosConfig, QosReport, SloClass};
pub use serve::{
    default_qos_rules, flatten_traces, render_query, round_seed, serve_blocking, ServeConfig,
    ServeEngine, ALERT_LOG_CAPACITY, BURN_ALERT_THRESHOLD, NS_PER_TICK, SHED_ALERT_THRESHOLD,
    TSDB_MAX_SERIES, TSDB_WINDOW,
};
pub use shard::{
    multicore_sweep_json, overload_sweep_json, simulate_multicore, trace_id, CacheMode,
    CoreMetrics, MultiCoreConfig, MultiCoreReport, SpawnModel, DTLB_SAMPLE_RATE,
};
pub use sim::{
    sim_registry, simulate, throughput_gain_percent, ArrivalModel, ArrivalPhase, FaasWorkload,
    FailureModel, ScalingMode, SimConfig, SimCosts, SimReport,
};
