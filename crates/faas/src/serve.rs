//! Live telemetry serving: the sharded engine driven in rounds behind the
//! std-only HTTP loop from `sfi-telemetry`.
//!
//! Post-mortem artifacts (`BENCH_*.json`, TRACE dumps) answer "what
//! happened"; operators also need "what is happening" — a Prometheus scrape
//! of `/metrics`, a trace viewer tailing `/trace`. This module is the
//! engine-side half of that: a [`ServeEngine`] that runs the multi-core
//! simulation in back-to-back **rounds** (each a full
//! [`simulate_multicore`] pass with a per-round seed), folds every round's
//! registry into one cumulative modeled registry, and appends the round's
//! flight-recorder events — restamped onto one continuous virtual
//! timeline — into a single cumulative stream recorder that scrapers drain
//! with cursors.
//!
//! The determinism contract survives serving (DESIGN.md §8):
//!
//! - Everything *modeled* — the `/snapshot` registry, the trace stream —
//!   is a pure function of `(config, rounds run)`. A second engine given
//!   the same config replays byte-identical bytes; `faas_serve --check`
//!   gates exactly that (server on vs off).
//! - Scrape bookkeeping (`sfi_serve_scrapes_total`) lives in a separate
//!   meta registry that appears in `/metrics` only, so observing the
//!   engine never changes `/snapshot` — zero observer effect.
//! - Wall time appears in exactly one place: the `/healthz` uptime field.
//!
//! `/healthz` reports availability and quarantine counts from a
//! [`FailureModel`](crate::FailureModel)-bearing single-core probe
//! simulation run alongside each round.

use std::net::TcpListener;
use std::sync::Mutex;
use std::time::Instant;

use sfi_telemetry::{
    chrome_trace, chrome_trace_gap_line, chrome_trace_lines, json_snapshot, pack_span,
    prometheus_text, AlertEngine, AlertRule, BucketExemplars, CompareOp, CounterId, Cursor,
    FlightRecorder, FoldedStacks, GaugeId, HttpRequest, HttpResponse, RecordingRule, Registry,
    Retention, RuleSource, SpanLevel, TraceEvent, TraceKind, Tsdb,
};

use crate::qos::SloClass;
use crate::shard::{simulate_multicore, trace_id, CacheMode, MultiCoreConfig, MultiCoreReport};
use crate::sim::{simulate, FailureModel, ScalingMode, SimConfig};
use crate::FaasWorkload;

/// The faas rig's virtual ticks are simulated nanoseconds.
pub const NS_PER_TICK: f64 = 1.0;

/// Rounds of history the in-memory tsdb retains per series (the ceiling on
/// query windows; older samples age out per series, keeping the store
/// bounded regardless of how long the engine serves).
pub const TSDB_WINDOW: u64 = 64;

/// Series-count admission bound of the tsdb. Excess series are dropped
/// (counted honestly in `dropped_writes`) rather than growing without
/// bound — cardinality explosions degrade queries, never the engine.
pub const TSDB_MAX_SERIES: usize = 4096;

/// Entries the bounded alert log retains (drops are reported in the
/// `/alerts` cursor bookkeeping, mirroring the flight recorder).
pub const ALERT_LOG_CAPACITY: usize = 1024;

/// Burn-rate threshold (permille of the SLO target) both alert windows
/// must breach: 1000 = observed p99.9 exactly at target.
pub const BURN_ALERT_THRESHOLD: f64 = 1000.0;

/// Shed-rate threshold in requests per round: sustained admission-control
/// shedding at or above this rate alerts.
pub const SHED_ALERT_THRESHOLD: f64 = 1.0;

/// The default QoS rule set installed when the engine config enables QoS:
/// per-class goodput recording rules (permille of offered requests
/// completed over the trailing 8 rounds) plus the two paper-rig burn
/// alerts — multi-window SLO burn on the latency-sensitive class and a
/// per-class sustained shed-rate alert. Both alerts pair a 2-round fast
/// window with an 8-round slow window and require one extra sustained
/// evaluation (`for_rounds: 1`) so single-round blips stay silent.
pub fn default_qos_rules(alerts: &mut AlertEngine) {
    for class in SloClass::ALL {
        alerts.add_recording(RecordingRule {
            record: "sfi_qos_goodput_permille",
            labels: vec![("class", class.name().to_owned())],
            source: RuleSource::RatioPermille {
                num: format!("increase(sfi_qos_completed_total{{class=\"{}\"}}[8r])", class.name()),
                den: format!("increase(sfi_qos_offered_total{{class=\"{}\"}}[8r])", class.name()),
            },
        });
    }
    alerts.add_alert(AlertRule {
        name: "slo_burn_ls",
        fast: "avg_over_time(sfi_qos_slo_burn_permille{class=\"latency_sensitive\"}[2r])"
            .to_owned(),
        slow: "avg_over_time(sfi_qos_slo_burn_permille{class=\"latency_sensitive\"}[8r])"
            .to_owned(),
        op: CompareOp::Ge,
        threshold: BURN_ALERT_THRESHOLD,
        for_rounds: 1,
    });
    alerts.add_alert(AlertRule {
        name: "shed_rate",
        fast: "rate(sfi_qos_shed_total[2r])".to_owned(),
        slow: "rate(sfi_qos_shed_total[8r])".to_owned(),
        op: CompareOp::Ge,
        threshold: SHED_ALERT_THRESHOLD,
        for_rounds: 1,
    });
}

/// Configuration for a serving engine.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The multi-core engine config run every round. `engine.seed` is the
    /// *base* seed; round `r` runs with [`round_seed`]`(seed, r)`.
    pub engine: MultiCoreConfig,
    /// The single-core probe simulation behind `/healthz` (carries the
    /// [`FailureModel`]; its seed advances per round like the engine's).
    pub probe: SimConfig,
    /// Capacity of the cumulative stream recorder scraped via `/trace`
    /// (events beyond it age out and are reported as `dropped`).
    pub stream_capacity: usize,
}

impl ServeConfig {
    /// A serving rig sized for interactive scraping: short engine rounds
    /// (50 ms), a short fault-injecting health probe, and a stream deep
    /// enough that a scraper polling once per round never drops events.
    pub fn paper_rig(cores: u32) -> ServeConfig {
        let mut engine = MultiCoreConfig::paper_rig(
            FaasWorkload::HashLoadBalance,
            ScalingMode::ColorGuard,
            CacheMode::Warm,
            cores,
        );
        engine.duration_ms = 50;
        let mut probe = SimConfig::paper_rig(FaasWorkload::HashLoadBalance, ScalingMode::ColorGuard);
        probe.duration_ms = 25;
        probe.failures = FailureModel::with_trap_rate(0.02);
        ServeConfig { engine, probe, stream_capacity: 65_536 }
    }
}

/// The seed round `r` runs with: a splitmix-style mix of the base seed and
/// the round index, so rounds are decorrelated but the whole serving
/// session stays a pure function of the base seed.
pub fn round_seed(base: u64, round: u64) -> u64 {
    let mut z = base ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

/// Renders one `/query` evaluation as deterministic JSON — shared by the
/// per-engine and fleet scrape surfaces.
pub fn render_query(expr: &str, round: u64, rows: &[(String, f64)]) -> String {
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut body = format!("{{\"expr\": \"{}\", \"round\": {round}, \"results\": [", esc(expr));
    for (i, (key, value)) in rows.iter().enumerate() {
        if i > 0 {
            body.push_str(", ");
        }
        body.push_str(&format!("{{\"series\": \"{}\", \"value\": {:.6}}}", esc(key), value));
    }
    body.push_str("]}\n");
    body
}

/// Flattens per-core flight-recorder dumps onto one timeline: cores are
/// chained in index order, then stably sorted by tick — ties keep core
/// order, so the result is deterministic.
pub fn flatten_traces(traces: &[Vec<TraceEvent>]) -> Vec<TraceEvent> {
    let mut all: Vec<TraceEvent> = traces.iter().flatten().copied().collect();
    all.sort_by_key(|e| e.tick);
    all
}

/// The live serving engine: cumulative modeled state plus scrape
/// bookkeeping. Drive it with [`ServeEngine::run_round`]; read it through
/// the endpoint renderers (all `&self` — scraping mutates nothing modeled).
#[derive(Debug)]
pub struct ServeEngine {
    cfg: ServeConfig,
    rounds: u64,
    /// Cumulative modeled registry (merge of every round's report
    /// registry). This — and nothing else — backs `/snapshot`.
    registry: Registry,
    /// Cumulative event stream on the continuous timeline.
    stream: FlightRecorder,
    /// Poisoned instances quarantined+recycled by the health probe so far.
    quarantined: u64,
    /// Probe requests dead-lettered so far.
    dead_lettered: u64,
    /// The most recent probe's availability (1.0 before the first round).
    availability: f64,
    /// The most recent engine round's occupancy (0.0 before the first
    /// round). Modeled state: a pure function of `(config, rounds)`, which
    /// is what lets autoscale decisions replay byte-identically.
    occupancy: f64,
    /// Scrape bookkeeping: merged into `/metrics` output only, never into
    /// `/snapshot`, so serving has zero observer effect on modeled series.
    meta: Registry,
    scrapes: [CounterId; 7],
    /// Cumulative per-bucket latency exemplars (populated only when the
    /// engine config enables spans), served via `/profile`.
    exemplars: BucketExemplars,
    /// SLO burn gauges (`sfi_qos_slo_burn_permille{class=…}`), present iff
    /// the engine config enables QoS. Kept in their own registry and
    /// `set()` after every round: gauges *add* under [`Registry::merge_from`],
    /// so folding them into the cumulative modeled registry would
    /// accumulate across rounds instead of tracking the current burn.
    burn: Registry,
    burn_ids: Option<[GaugeId; 3]>,
    /// Bounded in-memory time-series store over the modeled and burn
    /// registries, ingested once per round. Backs `/query` and the rule
    /// engine; a pure function of `(config, rounds)` like everything else
    /// modeled, so crash recovery replays it byte-identically.
    tsdb: Tsdb,
    /// Recording + alert rules evaluated once per round over the tsdb.
    /// Its derived registry rides `/metrics` only, never `/snapshot`.
    alerts: AlertEngine,
}

impl ServeEngine {
    /// A fresh engine; no rounds run yet. The stream recorder pins fault
    /// events ([`Retention::PinFaults`]): a long-serving engine ages out
    /// enter/exit chatter, never the traps and quarantine recycles a
    /// post-mortem needs.
    pub fn new(cfg: ServeConfig) -> ServeEngine {
        let stream = FlightRecorder::with_retention(cfg.stream_capacity, Retention::PinFaults);
        let mut meta = Registry::new();
        let scrapes = ["metrics", "snapshot", "trace", "healthz", "profile", "alerts", "query"]
            .map(|ep| meta.counter_with("sfi_serve_scrapes_total", &[("endpoint", ep)]));
        let mut alerts = AlertEngine::new(ALERT_LOG_CAPACITY);
        if cfg.engine.qos.is_some() {
            default_qos_rules(&mut alerts);
        }
        let mut burn = Registry::new();
        let burn_ids = cfg.engine.qos.as_ref().map(|_| {
            SloClass::ALL.map(|c| {
                burn.try_gauge("sfi_qos_slo_burn_permille", &[("class", c.name())])
                    .expect("one burn registry per engine")
            })
        });
        ServeEngine {
            cfg,
            rounds: 0,
            registry: Registry::new(),
            stream,
            quarantined: 0,
            dead_lettered: 0,
            availability: 1.0,
            occupancy: 0.0,
            meta,
            scrapes,
            exemplars: BucketExemplars::new(),
            burn,
            burn_ids,
            tsdb: Tsdb::new(TSDB_WINDOW, TSDB_MAX_SERIES),
            alerts,
        }
    }

    /// Runs one engine round plus one health-probe round, folds both into
    /// the cumulative state, and returns the round's report.
    pub fn run_round(&mut self) -> MultiCoreReport {
        let mut engine = self.cfg.engine.clone();
        engine.seed = round_seed(self.cfg.engine.seed, self.rounds);
        let report = simulate_multicore(&engine);
        self.registry.merge_from(&report.registry);
        self.exemplars.merge_from(&report.exemplars);
        // Each round models [0, duration) ns; restamp onto the session
        // timeline so the stream's ticks are monotone across rounds.
        let offset = self.rounds * self.cfg.engine.duration_ms * 1_000_000;
        // With spans on, the round itself is a level-1 span bracketing its
        // requests' queue-wait/admission/invoke edges on the timeline.
        let round_tid = trace_id(self.cfg.engine.seed ^ 0x0E11_6120, self.rounds);
        if self.cfg.engine.spans {
            self.stream.record(TraceEvent {
                tick: offset,
                core: 0,
                sandbox: round_tid,
                kind: TraceKind::Flow,
                arg: pack_span(SpanLevel::EngineRound, true, false, self.rounds),
            });
        }
        for ev in flatten_traces(&report.traces) {
            self.stream.record(TraceEvent { tick: ev.tick + offset, ..ev });
        }
        if self.cfg.engine.spans {
            self.stream.record(TraceEvent {
                tick: offset + self.cfg.engine.duration_ms * 1_000_000,
                core: 0,
                sandbox: round_tid,
                kind: TraceKind::Flow,
                arg: pack_span(SpanLevel::EngineRound, false, true, self.rounds),
            });
        }
        let mut probe = self.cfg.probe.clone();
        probe.seed = round_seed(self.cfg.probe.seed, self.rounds);
        let health = simulate(&probe);
        self.quarantined += health.faults + health.infra_faults;
        self.dead_lettered += health.dead_lettered;
        self.availability = health.availability;
        self.occupancy = report.occupancy;
        self.rounds += 1;
        self.update_burn();
        // Ingest this round's cumulative levels, then evaluate the rules.
        // Each transition is mirrored into the stream as a `TraceKind::Alert`
        // event at the round's closing tick (sandbox = rule index, arg =
        // transition code) so alert history shows up on the trace timeline.
        self.tsdb.ingest(self.rounds, &self.registry);
        self.tsdb.ingest(self.rounds, &self.burn);
        let end_tick = self.rounds * self.cfg.engine.duration_ms * 1_000_000;
        for t in self.alerts.evaluate(self.rounds, &mut self.tsdb) {
            self.stream.record(TraceEvent {
                tick: end_tick,
                core: 0,
                sandbox: t.rule_idx as u64,
                kind: TraceKind::Alert,
                arg: t.transition.code(),
            });
        }
        report
    }

    /// Re-derives the SLO burn gauges from the cumulative per-class latency
    /// histograms: `1000 × observed p99.9 ÷ target` (1000 = exactly at
    /// target). `set()` each round, never merged cumulatively.
    fn update_burn(&mut self) {
        let (Some(ids), Some(q)) = (self.burn_ids, self.cfg.engine.qos.as_ref()) else {
            return;
        };
        for (i, class) in SloClass::ALL.iter().enumerate() {
            let key = format!("sfi_qos_request_latency_ns{{class=\"{}\"}}", class.name());
            let p999_ms = self
                .registry
                .histogram_values(&key)
                .map_or(0.0, |h| h.p999() as f64 / 1e6);
            let target = q.slo_p999_ms[i].max(f64::MIN_POSITIVE);
            self.burn.set(ids[i], (1000.0 * p999_ms / target).round() as i64);
        }
    }

    /// Rounds completed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The most recent round's engine occupancy (the autoscale signal);
    /// 0.0 before any round has run.
    pub fn occupancy(&self) -> f64 {
        self.occupancy
    }

    /// Probe requests dead-lettered so far (cumulative).
    pub fn dead_lettered(&self) -> u64 {
        self.dead_lettered
    }

    /// The cumulative modeled registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The cumulative event stream.
    pub fn stream(&self) -> &FlightRecorder {
        &self.stream
    }

    /// The cumulative per-bucket latency exemplars (empty unless the engine
    /// config enables spans).
    pub fn exemplars(&self) -> &BucketExemplars {
        &self.exemplars
    }

    /// `/metrics`: Prometheus text of the modeled registry plus the serve
    /// meta registry (scrape counters).
    pub fn metrics_text(&self) -> String {
        let mut merged = self.registry.clone();
        merged.merge_from(&self.meta);
        merged.merge_from(&self.burn);
        merged.merge_from(self.alerts.derived());
        prometheus_text(&merged)
    }

    /// The in-memory time-series store behind `/query` and the rule engine.
    pub fn tsdb(&self) -> &Tsdb {
        &self.tsdb
    }

    /// The rule engine behind `/alerts`.
    pub fn alerts(&self) -> &AlertEngine {
        &self.alerts
    }

    /// `/alerts?since=<cursor>`: active alert states plus the logged
    /// transitions at or after `since` — deterministic JSON, byte-identical
    /// across replays of the same `(config, rounds)`.
    pub fn alerts_body(&self, since: u64) -> String {
        let mut body = self.alerts.alerts_json(since);
        body.push('\n');
        body
    }

    /// `/query?expr=<urlencoded>`: evaluates one tsdb query expression
    /// (`sel`, `rate(sel[Nr])`, `increase(sel[Nr])`, `avg_over_time`,
    /// `max_over_time`) against the retained window. `Err` carries the
    /// parse error for the 400 body.
    pub fn query_body(&self, expr: &str) -> Result<String, String> {
        let rows = self.tsdb.query(expr)?;
        Ok(render_query(expr, self.tsdb.last_round(), &rows))
    }

    /// The per-class SLO burn gauge registry (empty without QoS). Exposed
    /// so the fleet supervisor can fold member burn levels into its own
    /// federated tsdb under `engine="<id>"` labels.
    pub fn burn_registry(&self) -> &Registry {
        &self.burn
    }

    /// The host-side cycle-attribution flamegraph of the cumulative run:
    /// where engine time went (guest compute vs. spawn vs. scheduling), in
    /// the `flamegraph.pl` collapse format. Pure function of the modeled
    /// registry.
    pub fn profile_folded(&self) -> FoldedStacks {
        let mut f = FoldedStacks::new();
        let c = |key: &str| self.registry.counter_value(key).unwrap_or(0);
        let busy = c("sfi_shard_busy_ns_total");
        let spawn = c("sfi_shard_spawn_ns_total");
        let overhead = c("sfi_shard_overhead_ns_total");
        f.add(&["engine", "guest_compute"], busy);
        f.add(&["engine", "overhead", "spawn"], spawn);
        f.add(&["engine", "overhead", "sched"], overhead.saturating_sub(spawn));
        f
    }

    /// `/profile`: the folded-stack flamegraph (one collapse line per array
    /// element), the per-bucket latency exemplars keyed by bucket upper
    /// bound, and — when QoS is on — the per-class SLO burn gauges.
    /// Deterministic: a pure function of `(config, rounds run)`.
    pub fn profile_body(&self) -> String {
        let folded = self.profile_folded();
        let lines: Vec<String> = folded
            .render()
            .lines()
            .map(|l| format!("\"{}\"", l.replace('\\', "\\\\").replace('"', "\\\"")))
            .collect();
        let mut body = format!(
            "{{\"rounds\": {}, \"folded\": [{}], \"exemplars\": {}",
            self.rounds,
            lines.join(", "),
            self.exemplars.render_json(),
        );
        if let (Some(_), Some(q)) = (self.burn_ids, self.cfg.engine.qos.as_ref()) {
            body.push_str(", \"slo_burn_permille\": {");
            for (i, class) in SloClass::ALL.iter().enumerate() {
                if i > 0 {
                    body.push_str(", ");
                }
                let key = format!("sfi_qos_slo_burn_permille{{class=\"{}\"}}", class.name());
                body.push_str(&format!(
                    "\"{}\": {{\"burn\": {}, \"target_p999_ms\": {:.3}}}",
                    class.name(),
                    self.burn.gauge_value(&key).unwrap_or(0),
                    q.slo_p999_ms[i],
                ));
            }
            body.push('}');
        }
        body.push_str("}\n");
        body
    }

    /// `/snapshot`: the modeled registry as JSON — byte-identical to what
    /// an offline replay of the same config and round count exports.
    pub fn snapshot_json(&self) -> String {
        json_snapshot(&self.registry)
    }

    /// `/trace?since=<cursor>`: a metadata line (`next` cursor, events
    /// `dropped` before the cursor, line count) followed by one
    /// chrome-trace event line per `\n`. A client that concatenates the
    /// lines from successive drains and wraps them with
    /// [`sfi_telemetry::chrome_trace_wrap`] reproduces
    /// [`ServeEngine::trace_batch`] byte-for-byte. A drain that observed
    /// `dropped > 0` leads with a `trace_gap` marker line
    /// ([`chrome_trace_gap_line`]) so the re-wrapped document both stays
    /// valid JSON and shows the gap on the timeline.
    pub fn trace_body(&self, since: u64) -> String {
        let d = self.stream.events_since(since);
        let mut lines = Vec::with_capacity(d.events.len() + 1);
        if d.dropped > 0 {
            let next_tick = d.events.first().map_or(0, |e| e.tick);
            lines.push(chrome_trace_gap_line(d.dropped, next_tick, NS_PER_TICK));
        }
        lines.extend(chrome_trace_lines(&d.events, NS_PER_TICK));
        let mut body = format!(
            "{{\"next\": {}, \"dropped\": {}, \"lines\": {}}}\n",
            d.next,
            d.dropped,
            lines.len()
        );
        for l in &lines {
            body.push_str(l);
            body.push('\n');
        }
        body
    }

    /// The post-mortem batch export of the full retained stream — the
    /// byte-identity reference for incremental `/trace` drains.
    pub fn trace_batch(&self) -> String {
        chrome_trace(&self.stream.events(), NS_PER_TICK)
    }

    /// `/healthz`: availability and quarantine state from the failure-model
    /// probe. `uptime_seconds` is the one place wall time is allowed.
    pub fn healthz_body(&self, uptime_seconds: f64) -> String {
        let status = if self.availability >= 0.9 { "ok" } else { "degraded" };
        format!(
            "{{\"status\": \"{}\", \"rounds\": {}, \"availability\": {:.6}, \
             \"quarantined_instances\": {}, \"dead_lettered\": {}, \"uptime_seconds\": {:.3}}}\n",
            status, self.rounds, self.availability, self.quarantined, self.dead_lettered,
            uptime_seconds
        )
    }

    /// Dispatches one request. Returns the response plus the stop flag
    /// (`/quit` answers then stops the accept loop — the clean shutdown
    /// path CI exercises). GET only.
    pub fn route(&mut self, req: &HttpRequest, uptime_seconds: f64) -> (HttpResponse, bool) {
        if req.method != "GET" {
            return (HttpResponse::method_not_allowed(), false);
        }
        match req.path.as_str() {
            "/metrics" => {
                self.meta.inc(self.scrapes[0]);
                (HttpResponse::prometheus(self.metrics_text()), false)
            }
            "/snapshot" => {
                self.meta.inc(self.scrapes[1]);
                (HttpResponse::json(self.snapshot_json()), false)
            }
            "/trace" => {
                self.meta.inc(self.scrapes[2]);
                match req.cursor("since") {
                    Cursor::Absent => (HttpResponse::json(self.trace_body(0)), false),
                    Cursor::At(since) => (HttpResponse::json(self.trace_body(since)), false),
                    Cursor::Malformed => (HttpResponse::bad_request("malformed since cursor"), false),
                }
            }
            "/healthz" => {
                self.meta.inc(self.scrapes[3]);
                (HttpResponse::json(self.healthz_body(uptime_seconds)), false)
            }
            "/profile" => {
                self.meta.inc(self.scrapes[4]);
                (HttpResponse::json(self.profile_body()), false)
            }
            "/alerts" => {
                self.meta.inc(self.scrapes[5]);
                match req.cursor("since") {
                    Cursor::Absent => (HttpResponse::json(self.alerts_body(0)), false),
                    Cursor::At(since) => (HttpResponse::json(self.alerts_body(since)), false),
                    Cursor::Malformed => (HttpResponse::bad_request("malformed since cursor"), false),
                }
            }
            "/query" => {
                self.meta.inc(self.scrapes[6]);
                let Some(raw) = req.query_str("expr") else {
                    return (HttpResponse::bad_request("missing expr parameter"), false);
                };
                let Some(expr) = sfi_telemetry::percent_decode(raw) else {
                    return (HttpResponse::bad_request("malformed percent-encoding"), false);
                };
                match self.query_body(&expr) {
                    Ok(body) => (HttpResponse::json(body), false),
                    Err(e) => (HttpResponse::bad_request(&e), false),
                }
            }
            "/quit" => (HttpResponse::ok("text/plain", "bye\n".to_owned()), true),
            _ => (HttpResponse::not_found(), false),
        }
    }
}

/// Runs the blocking accept loop for a shared engine: each request locks
/// the engine, routes, answers. Returns when `/quit` is served. `started`
/// anchors the `/healthz` uptime (the only wall-clock reading).
pub fn serve_blocking(
    listener: &TcpListener,
    engine: &Mutex<ServeEngine>,
    started: Instant,
) -> std::io::Result<()> {
    sfi_telemetry::serve(listener, |req| {
        let mut eng = engine.lock().expect("engine lock");
        eng.route(req, started.elapsed().as_secs_f64())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfi_telemetry::chrome_trace_wrap;

    fn small_cfg() -> ServeConfig {
        let mut cfg = ServeConfig::paper_rig(2);
        cfg.engine.duration_ms = 20;
        cfg.probe.duration_ms = 10;
        cfg
    }

    #[test]
    fn replay_reproduces_modeled_state_byte_for_byte() {
        let run = |scrapes: u32| {
            let mut eng = ServeEngine::new(small_cfg());
            for _ in 0..3 {
                eng.run_round();
                // Scraping between rounds must not perturb anything modeled.
                for _ in 0..scrapes {
                    let _ = eng.metrics_text();
                    let _ = eng.trace_body(0);
                }
            }
            (eng.snapshot_json(), eng.trace_batch())
        };
        let (snap_quiet, trace_quiet) = run(0);
        let (snap_scraped, trace_scraped) = run(5);
        assert_eq!(snap_quiet, snap_scraped, "scraping changed the modeled snapshot");
        assert_eq!(trace_quiet, trace_scraped, "scraping changed the trace stream");
        assert!(snap_quiet.contains("sfi_shard_completed_total"));
        assert!(snap_quiet.contains("sfi_shard_request_latency_ns"));
    }

    #[test]
    fn incremental_drains_concatenate_to_the_batch_export() {
        let mut eng = ServeEngine::new(small_cfg());
        let mut cursor = 0u64;
        let mut lines: Vec<String> = Vec::new();
        for _ in 0..3 {
            eng.run_round();
            let body = eng.trace_body(cursor);
            let mut it = body.lines();
            let head = it.next().unwrap();
            assert!(head.contains("\"dropped\": 0"), "{head}");
            let next_str =
                head.split("\"next\": ").nth(1).unwrap().split(',').next().unwrap();
            cursor = next_str.parse().unwrap();
            lines.extend(it.map(str::to_owned));
        }
        assert_eq!(cursor, eng.stream().total_recorded());
        assert_eq!(chrome_trace_wrap(&lines), eng.trace_batch());
        // A fully drained cursor yields an empty incremental body.
        let empty = eng.trace_body(cursor);
        assert!(empty.contains("\"lines\": 0"), "{empty}");
    }

    #[test]
    fn rounds_restamp_onto_a_monotone_timeline() {
        let mut eng = ServeEngine::new(small_cfg());
        eng.run_round();
        eng.run_round();
        let events = eng.stream().events();
        assert!(!events.is_empty());
        assert!(events.windows(2).all(|w| w[0].tick <= w[1].tick), "ticks regressed");
        let round_ns = 20 * 1_000_000;
        assert!(events.last().unwrap().tick >= round_ns, "round 2 not offset");
    }

    #[test]
    fn profile_endpoint_serves_flamegraph_exemplars_and_burn() {
        use crate::qos::QosConfig;
        use sfi_telemetry::{json_is_valid, unpack_span};
        let mut cfg = small_cfg();
        cfg.engine.spans = true;
        cfg.engine.qos = Some(QosConfig::paper_rig());
        let mut eng = ServeEngine::new(cfg);
        eng.run_round();
        eng.run_round();

        let req = HttpRequest::parse("GET /profile HTTP/1.1").unwrap();
        let (resp, stop) = eng.route(&req, 0.0);
        assert!(!stop);
        assert_eq!(resp.status, 200);
        assert!(json_is_valid(&resp.body), "{}", resp.body);
        assert!(resp.body.contains("engine;guest_compute"), "{}", resp.body);
        assert!(resp.body.contains("engine;overhead;spawn"));
        assert!(resp.body.contains("\"exemplars\""));
        assert!(resp.body.contains("\"trace_id\""), "completions must leave exemplars");
        assert!(resp.body.contains("\"slo_burn_permille\""));
        assert!(resp.body.contains("\"latency_sensitive\""));

        // The burn gauges ride /metrics but never the modeled snapshot.
        assert!(eng.metrics_text().contains("sfi_qos_slo_burn_permille"));
        assert!(!eng.snapshot_json().contains("sfi_qos_slo_burn_permille"));

        // Each round brackets its requests with a level-1 engine-round span.
        let rounds: Vec<_> = eng
            .stream()
            .events()
            .iter()
            .filter(|e| e.kind == TraceKind::Flow)
            .filter_map(|e| unpack_span(e.arg))
            .filter(|s| s.level == SpanLevel::EngineRound)
            .collect();
        assert_eq!(rounds.len(), 4, "2 rounds × (start + end)");
        assert!(eng.stream().events().iter().any(|e| {
            e.kind == TraceKind::Flow
                && unpack_span(e.arg).is_some_and(|s| s.level == SpanLevel::Invoke)
        }));

        // Profile scraping is replay-invariant like every other endpoint.
        let rebuild = |scrapes: u32| {
            let mut cfg = small_cfg();
            cfg.engine.spans = true;
            cfg.engine.qos = Some(QosConfig::paper_rig());
            let mut eng = ServeEngine::new(cfg);
            for _ in 0..2 {
                eng.run_round();
                for _ in 0..scrapes {
                    let _ = eng.profile_body();
                }
            }
            (eng.profile_body(), eng.snapshot_json())
        };
        assert_eq!(rebuild(0), rebuild(3), "profile scrapes must not perturb modeled state");
    }

    #[test]
    fn alerts_and_query_endpoints_serve_the_tsdb() {
        use crate::qos::QosConfig;
        use sfi_telemetry::json_is_valid;
        let mk = || {
            let mut cfg = small_cfg();
            cfg.engine.qos = Some(QosConfig::paper_rig());
            cfg
        };
        let mut eng = ServeEngine::new(mk());
        for _ in 0..3 {
            eng.run_round();
        }

        // The store saw the modeled registry: counters, burn gauges, and
        // the goodput recording-rule outputs are all queryable.
        assert!(eng.tsdb().series_count() > 0);
        let burn = eng.query_body("sfi_qos_slo_burn_permille").unwrap();
        assert!(burn.contains("latency_sensitive"), "{burn}");
        let good = eng.query_body("sfi_qos_goodput_permille").unwrap();
        assert!(good.contains("\"results\": [{"), "{good}");

        let (resp, _) = eng.route(&HttpRequest::parse("GET /alerts HTTP/1.1").unwrap(), 0.0);
        assert_eq!((resp.status, resp.content_type), (200, "application/json"));
        assert!(json_is_valid(resp.body.trim_end()), "{}", resp.body);
        assert!(resp.body.contains("\"states\""), "{}", resp.body);
        let (resp, _) = eng
            .route(&HttpRequest::parse("GET /query?expr=rate(sfi_shard_completed_total[4r]) HTTP/1.1").unwrap(), 0.0);
        assert_eq!(resp.status, 200);
        assert!(json_is_valid(resp.body.trim_end()), "{}", resp.body);
        assert!(resp.body.contains("\"value\""), "{}", resp.body);

        // Hygiene: malformed cursors and expressions answer 400, not 200.
        for path in [
            "/alerts?since=abc",
            "/trace?since=-1",
            "/query?expr=%ZZ",
            "/query",
            "/query?expr=rate(sfi_shard_completed_total[0r)",
        ] {
            let req = HttpRequest::parse(&format!("GET {path} HTTP/1.1")).unwrap();
            let (resp, _) = eng.route(&req, 0.0);
            assert_eq!(resp.status, 400, "{path} must 400: {}", resp.body);
        }

        // Derived goodput gauges ride /metrics, never the modeled snapshot.
        assert!(eng.metrics_text().contains("sfi_qos_goodput_permille"));
        assert!(!eng.snapshot_json().contains("sfi_qos_goodput_permille"));

        // Alert/query scraping is observer-effect-free and the alert state
        // replays byte-identically from (config, rounds).
        let rebuild = |scrapes: u32| {
            let mut eng = ServeEngine::new(mk());
            for _ in 0..3 {
                eng.run_round();
                for _ in 0..scrapes {
                    let _ = eng.alerts_body(0);
                    let _ = eng.query_body("sfi_qos_slo_burn_permille").unwrap();
                }
            }
            (eng.alerts_body(0), eng.snapshot_json(), eng.trace_batch())
        };
        assert_eq!(rebuild(0), rebuild(4), "alert scrapes perturbed modeled state");
    }

    #[test]
    fn meta_counters_show_in_metrics_but_not_snapshot() {
        let mut eng = ServeEngine::new(small_cfg());
        eng.run_round();
        let req = HttpRequest::parse("GET /metrics HTTP/1.1").unwrap();
        let (resp, stop) = eng.route(&req, 0.0);
        assert!(!stop);
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("sfi_serve_scrapes_total{endpoint=\"metrics\"} 1"));
        assert!(!eng.snapshot_json().contains("sfi_serve_scrapes_total"));

        let (health, _) = eng.route(&HttpRequest::parse("GET /healthz HTTP/1.1").unwrap(), 1.5);
        assert!(health.body.contains("\"status\""), "{}", health.body);
        assert!(health.body.contains("\"uptime_seconds\": 1.500"));
        let (resp, stop) = eng.route(&HttpRequest::parse("GET /quit HTTP/1.1").unwrap(), 0.0);
        assert_eq!((resp.status, stop), (200, true));
        let (resp, _) = eng.route(&HttpRequest::parse("GET /nope HTTP/1.1").unwrap(), 0.0);
        assert_eq!(resp.status, 404);
    }
}
