//! Hash-based load balancing (the paper's third FaaS workload, §6.4.3):
//! a from-scratch 64-bit hash plus a consistent-hash ring with virtual
//! nodes, as an edge load balancer would use to pick an origin.

/// FNV-1a, 64-bit.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A final avalanche (xxhash-style) for ring positions.
fn avalanche(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    h ^= h >> 33;
    h
}

/// A consistent-hash ring over named backends.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted (position, backend index).
    points: Vec<(u64, u32)>,
    backends: Vec<String>,
}

impl HashRing {
    /// Builds a ring with `vnodes` virtual nodes per backend.
    ///
    /// # Panics
    ///
    /// Panics if `backends` is empty or `vnodes` is zero.
    pub fn new<S: Into<String>>(backends: Vec<S>, vnodes: u32) -> HashRing {
        assert!(vnodes > 0, "need at least one virtual node");
        let backends: Vec<String> = backends.into_iter().map(Into::into).collect();
        assert!(!backends.is_empty(), "need at least one backend");
        let mut points = Vec::with_capacity(backends.len() * vnodes as usize);
        for (i, b) in backends.iter().enumerate() {
            for v in 0..vnodes {
                let key = format!("{b}#{v}");
                points.push((avalanche(fnv1a(key.as_bytes())), i as u32));
            }
        }
        points.sort_unstable();
        points.dedup_by_key(|p| p.0);
        HashRing { points, backends }
    }

    /// Picks the backend for `key`; also returns the hash-work units
    /// (bytes hashed + probe steps) for cost accounting.
    pub fn route_counted(&self, key: &str) -> (&str, u64) {
        let h = avalanche(fnv1a(key.as_bytes()));
        let idx = self.points.partition_point(|&(p, _)| p < h);
        let (_, backend) = self.points[idx % self.points.len()];
        let work = key.len() as u64 + 64;
        (&self.backends[backend as usize], work)
    }

    /// Picks the backend for `key`.
    pub fn route(&self, key: &str) -> &str {
        self.route_counted(key).0
    }

    /// Number of backends.
    pub fn backend_count(&self) -> usize {
        self.backends.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn fnv_vectors() {
        // Known FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn routing_is_deterministic() {
        let ring = HashRing::new(vec!["origin-a", "origin-b", "origin-c"], 64);
        let a = ring.route("/api/users/1");
        for _ in 0..10 {
            assert_eq!(ring.route("/api/users/1"), a);
        }
    }

    #[test]
    fn distribution_is_roughly_even() {
        let ring = HashRing::new(vec!["a", "b", "c", "d"], 128);
        let mut counts: BTreeMap<&str, u32> = BTreeMap::new();
        for i in 0..8000 {
            *counts.entry(ring.route(&format!("/path/{i}"))).or_default() += 1;
        }
        for (&b, &c) in &counts {
            assert!(
                (1200..=2800).contains(&c),
                "backend {b} got {c} of 8000 — too skewed"
            );
        }
    }

    #[test]
    fn consistency_under_backend_removal() {
        // Removing one backend should only remap ~1/n of the keys.
        let ring4 = HashRing::new(vec!["a", "b", "c", "d"], 128);
        let ring3 = HashRing::new(vec!["a", "b", "c"], 128);
        let mut moved = 0;
        let total = 4000;
        for i in 0..total {
            let key = format!("/k/{i}");
            let before = ring4.route(&key);
            let after = ring3.route(&key);
            if before != "d" && before != after {
                moved += 1;
            }
        }
        assert!(
            moved < total / 6,
            "consistent hashing should move few keys: {moved}/{total}"
        );
    }

    #[test]
    fn work_scales_with_key_length() {
        let ring = HashRing::new(vec!["a", "b"], 16);
        let (_, short) = ring.route_counted("/a");
        let (_, long) = ring.route_counted(&"/a".repeat(100));
        assert!(long > short);
    }
}
