//! A small HTML templating engine (the paper's "HTML templating" FaaS
//! workload, §6.4.3).
//!
//! Supports the constructs edge templates use: `{{var}}` substitution with
//! HTML escaping, `{{{var}}}` raw substitution, `{{#each var}}...{{/each}}`
//! repetition over `|`-separated list values, and `{{#if var}}...{{/if}}`
//! conditionals (empty value = false).

use std::collections::BTreeMap;

/// A render failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateError {
    /// Byte offset of the problem in the template.
    pub pos: usize,
    /// Description.
    pub msg: String,
}

impl core::fmt::Display for TemplateError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "template error at {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for TemplateError {}

/// Template context: variable name → value.
pub type Context = BTreeMap<String, String>;

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            other => out.push(other),
        }
    }
}

/// Renders `template` with `ctx`; returns the output and the number of
/// work units (bytes emitted + directives evaluated) for cost accounting.
pub fn render_counted(template: &str, ctx: &Context) -> Result<(String, u64), TemplateError> {
    let mut out = String::with_capacity(template.len() * 2);
    let mut work = 0u64;
    render_section(template, 0, ctx, &mut out, &mut work, None)?;
    work += out.len() as u64;
    Ok((out, work))
}

/// Renders `template` with `ctx`.
pub fn render(template: &str, ctx: &Context) -> Result<String, TemplateError> {
    render_counted(template, ctx).map(|(s, _)| s)
}

/// Renders from `start`; stops at `stop_tag` (e.g. `{{/each}}`) if given.
/// Returns the position just after the stop tag.
fn render_section(
    t: &str,
    start: usize,
    ctx: &Context,
    out: &mut String,
    work: &mut u64,
    stop_tag: Option<&str>,
) -> Result<usize, TemplateError> {
    let bytes = t.as_bytes();
    let mut i = start;
    while i < bytes.len() {
        if let Some(open) = t[i..].find("{{").map(|o| i + o) {
            out.push_str(&t[i..open]);
            let close = t[open..]
                .find("}}")
                .map(|c| open + c)
                .ok_or(TemplateError { pos: open, msg: "unclosed {{".into() })?;
            let raw = t[open + 2..close].starts_with('{');
            let (tag, after) = if raw {
                // {{{var}}} — the closing is one brace longer.
                let c3 = t[open..]
                    .find("}}}")
                    .map(|c| open + c)
                    .ok_or(TemplateError { pos: open, msg: "unclosed {{{".into() })?;
                (t[open + 3..c3].trim().to_owned(), c3 + 3)
            } else {
                (t[open + 2..close].trim().to_owned(), close + 2)
            };
            *work += 1;

            if let Some(stop) = stop_tag {
                if tag == stop {
                    return Ok(after);
                }
            }
            if let Some(var) = tag.strip_prefix("#each ") {
                let items = ctx.get(var.trim()).cloned().unwrap_or_default();
                let body_start = after;
                let mut end = body_start;
                if items.is_empty() {
                    // Still need to skip the body.
                    let mut sink = String::new();
                    let mut w = 0;
                    let mut empty = Context::new();
                    empty.insert("item".into(), String::new());
                    end = render_section(t, body_start, &empty, &mut sink, &mut w, Some("/each"))?;
                } else {
                    for item in items.split('|') {
                        let mut sub = ctx.clone();
                        sub.insert("item".into(), item.to_owned());
                        end = render_section(t, body_start, &sub, out, work, Some("/each"))?;
                    }
                }
                i = end;
            } else if let Some(var) = tag.strip_prefix("#if ") {
                let truthy = ctx.get(var.trim()).is_some_and(|v| !v.is_empty());
                if truthy {
                    i = render_section(t, after, ctx, out, work, Some("/if"))?;
                } else {
                    let mut sink = String::new();
                    let mut w = 0;
                    i = render_section(t, after, ctx, &mut sink, &mut w, Some("/if"))?;
                }
            } else if tag.starts_with('/') {
                return Err(TemplateError { pos: open, msg: format!("unexpected {{{{{tag}}}}}") });
            } else {
                let val = ctx.get(&tag).map(String::as_str).unwrap_or("");
                if raw {
                    out.push_str(val);
                } else {
                    escape_into(val, out);
                }
                i = after;
            }
        } else {
            out.push_str(&t[i..]);
            i = bytes.len();
        }
    }
    if let Some(stop) = stop_tag {
        return Err(TemplateError { pos: t.len(), msg: format!("missing {{{{{stop}}}}}") });
    }
    Ok(i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(pairs: &[(&str, &str)]) -> Context {
        pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
    }

    #[test]
    fn substitution_and_escaping() {
        let c = ctx(&[("name", "Ada <script>")]);
        let out = render("<h1>Hello {{name}}!</h1>", &c).unwrap();
        assert_eq!(out, "<h1>Hello Ada &lt;script&gt;!</h1>");
        let raw = render("{{{name}}}", &c).unwrap();
        assert_eq!(raw, "Ada <script>");
    }

    #[test]
    fn missing_vars_render_empty() {
        assert_eq!(render("[{{nope}}]", &Context::new()).unwrap(), "[]");
    }

    #[test]
    fn each_loops() {
        let c = ctx(&[("users", "ann|bob|cal")]);
        let out = render("<ul>{{#each users}}<li>{{item}}</li>{{/each}}</ul>", &c).unwrap();
        assert_eq!(out, "<ul><li>ann</li><li>bob</li><li>cal</li></ul>");
        // Empty list renders nothing but still consumes the body.
        let out = render("a{{#each nope}}X{{/each}}b", &Context::new()).unwrap();
        assert_eq!(out, "ab");
    }

    #[test]
    fn conditionals() {
        let c = ctx(&[("admin", "yes")]);
        assert_eq!(render("{{#if admin}}root{{/if}}", &c).unwrap(), "root");
        assert_eq!(render("{{#if other}}root{{/if}}-", &c).unwrap(), "-");
    }

    #[test]
    fn nesting() {
        let c = ctx(&[("rows", "a|b"), ("on", "1")]);
        let out = render(
            "{{#each rows}}[{{#if on}}{{item}}{{/if}}]{{/each}}",
            &c,
        )
        .unwrap();
        assert_eq!(out, "[a][b]");
    }

    #[test]
    fn errors() {
        assert!(render("{{oops", &Context::new()).is_err());
        assert!(render("{{#each x}}no end", &Context::new()).is_err());
        assert!(render("{{/each}}", &Context::new()).is_err());
    }

    #[test]
    fn work_scales_with_output() {
        let c = ctx(&[("users", &"u|".repeat(100))]);
        let (_, small) = render_counted("{{#each x}}{{item}}{{/each}}", &c).unwrap();
        let (_, big) =
            render_counted("{{#each users}}<li>{{item}}</li>{{/each}}", &c).unwrap();
        assert!(big > small);
    }
}
