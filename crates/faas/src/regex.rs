//! A small regular-expression engine (Thompson NFA construction, breadth-
//! first simulation — no backtracking, linear time).
//!
//! The paper's "regular expression filtering of URLs" FaaS workload (§6.4.3)
//! needs a real matcher; the offline crate policy excludes the `regex`
//! crate, so this is a from-scratch engine supporting the subset URL
//! filters use: literals, `.`, `*`, `+`, `?`, character classes
//! (`[a-z0-9-]`, negated `[^/]`), alternation `|`, grouping `(...)` and
//! anchors `^`/`$`.

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    prog: Vec<Inst>,
    anchored_start: bool,
}

/// Compilation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError {
    /// Byte position in the pattern.
    pub pos: usize,
    /// Description.
    pub msg: String,
}

impl core::fmt::Display for RegexError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "regex error at {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for RegexError {}

#[derive(Debug, Clone)]
enum Inst {
    /// Match one byte against a class.
    Byte(ByteClass),
    /// Unconditional jump.
    Jmp(usize),
    /// Fork execution (both targets).
    Split(usize, usize),
    /// Accept.
    Match,
    /// End-of-input anchor.
    EndAnchor,
}

#[derive(Debug, Clone)]
enum ByteClass {
    Literal(u8),
    Any,
    /// Sorted inclusive ranges; `negated` flips the sense.
    Ranges { ranges: Vec<(u8, u8)>, negated: bool },
}

impl ByteClass {
    fn matches(&self, b: u8) -> bool {
        match self {
            ByteClass::Literal(l) => b == *l,
            ByteClass::Any => true,
            ByteClass::Ranges { ranges, negated } => {
                let inside = ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&b));
                inside != *negated
            }
        }
    }
}

// ---- parser: pattern → AST ----

#[derive(Debug, Clone)]
enum Ast {
    Empty,
    Class(ByteClass),
    Concat(Vec<Ast>),
    Alt(Box<Ast>, Box<Ast>),
    Star(Box<Ast>),
    Plus(Box<Ast>),
    Quest(Box<Ast>),
    EndAnchor,
}

struct Parser<'a> {
    pat: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> RegexError {
        RegexError { pos: self.pos, msg: msg.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.pat.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn parse_alt(&mut self) -> Result<Ast, RegexError> {
        let mut lhs = self.parse_concat()?;
        while self.peek() == Some(b'|') {
            self.bump();
            let rhs = self.parse_concat()?;
            lhs = Ast::Alt(lhs.into(), rhs.into());
        }
        Ok(lhs)
    }

    fn parse_concat(&mut self) -> Result<Ast, RegexError> {
        let mut items = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            items.push(self.parse_repeat()?);
        }
        Ok(match items.len() {
            0 => Ast::Empty,
            1 => items.pop().expect("len checked"),
            _ => Ast::Concat(items),
        })
    }

    fn parse_repeat(&mut self) -> Result<Ast, RegexError> {
        let atom = self.parse_atom()?;
        Ok(match self.peek() {
            Some(b'*') => {
                self.bump();
                Ast::Star(atom.into())
            }
            Some(b'+') => {
                self.bump();
                Ast::Plus(atom.into())
            }
            Some(b'?') => {
                self.bump();
                Ast::Quest(atom.into())
            }
            _ => atom,
        })
    }

    fn parse_atom(&mut self) -> Result<Ast, RegexError> {
        match self.bump().ok_or_else(|| self.err("unexpected end of pattern"))? {
            b'(' => {
                let inner = self.parse_alt()?;
                if self.bump() != Some(b')') {
                    return Err(self.err("unclosed group"));
                }
                Ok(inner)
            }
            b'[' => self.parse_class(),
            b'.' => Ok(Ast::Class(ByteClass::Any)),
            b'$' => Ok(Ast::EndAnchor),
            b'\\' => {
                let c = self.bump().ok_or_else(|| self.err("dangling escape"))?;
                Ok(Ast::Class(match c {
                    b'd' => ByteClass::Ranges { ranges: vec![(b'0', b'9')], negated: false },
                    b'w' => ByteClass::Ranges {
                        ranges: vec![(b'a', b'z'), (b'A', b'Z'), (b'0', b'9'), (b'_', b'_')],
                        negated: false,
                    },
                    other => ByteClass::Literal(other),
                }))
            }
            b'*' | b'+' | b'?' => Err(self.err("repetition with nothing to repeat")),
            lit => Ok(Ast::Class(ByteClass::Literal(lit))),
        }
    }

    fn parse_class(&mut self) -> Result<Ast, RegexError> {
        let negated = if self.peek() == Some(b'^') {
            self.bump();
            true
        } else {
            false
        };
        let mut ranges = Vec::new();
        loop {
            let b = self.bump().ok_or_else(|| self.err("unclosed character class"))?;
            if b == b']' {
                break;
            }
            let lo = if b == b'\\' {
                self.bump().ok_or_else(|| self.err("dangling escape in class"))?
            } else {
                b
            };
            if self.peek() == Some(b'-') && self.pat.get(self.pos + 1) != Some(&b']') {
                self.bump();
                let hi = self.bump().ok_or_else(|| self.err("unclosed range"))?;
                if hi < lo {
                    return Err(self.err("inverted range"));
                }
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        Ok(Ast::Class(ByteClass::Ranges { ranges, negated }))
    }
}

// ---- compiler: AST → NFA program ----

fn emit(ast: &Ast, prog: &mut Vec<Inst>) {
    match ast {
        Ast::Empty => {}
        Ast::Class(c) => prog.push(Inst::Byte(c.clone())),
        Ast::Concat(items) => {
            for i in items {
                emit(i, prog);
            }
        }
        Ast::Alt(a, b) => {
            let split = prog.len();
            prog.push(Inst::Jmp(0)); // placeholder → Split
            emit(a, prog);
            let jmp = prog.len();
            prog.push(Inst::Jmp(0)); // placeholder → end
            let b_start = prog.len();
            emit(b, prog);
            let end = prog.len();
            prog[split] = Inst::Split(split + 1, b_start);
            prog[jmp] = Inst::Jmp(end);
        }
        Ast::Star(a) => {
            let split = prog.len();
            prog.push(Inst::Jmp(0));
            emit(a, prog);
            prog.push(Inst::Jmp(split));
            let end = prog.len();
            prog[split] = Inst::Split(split + 1, end);
        }
        Ast::Plus(a) => {
            let start = prog.len();
            emit(a, prog);
            let split = prog.len();
            prog.push(Inst::Split(start, split + 1));
        }
        Ast::Quest(a) => {
            let split = prog.len();
            prog.push(Inst::Jmp(0));
            emit(a, prog);
            let end = prog.len();
            prog[split] = Inst::Split(split + 1, end);
        }
        Ast::EndAnchor => prog.push(Inst::EndAnchor),
    }
}

impl Regex {
    /// Compiles `pattern`.
    pub fn new(pattern: &str) -> Result<Regex, RegexError> {
        let anchored_start = pattern.starts_with('^');
        let body = if anchored_start { &pattern[1..] } else { pattern };
        let mut p = Parser { pat: body.as_bytes(), pos: 0 };
        let ast = p.parse_alt()?;
        if p.pos != body.len() {
            return Err(p.err("unbalanced ')'"));
        }
        let mut prog = Vec::new();
        emit(&ast, &mut prog);
        prog.push(Inst::Match);
        Ok(Regex { prog, anchored_start })
    }

    /// Whether the pattern matches anywhere in `input` (or from the start
    /// if `^`-anchored). Also returns the number of NFA state-steps
    /// executed — the work metric the FaaS simulation converts to cycles.
    ///
    /// Unanchored search is single-pass: the start state is re-injected at
    /// every position (an implicit leading `.*`), so matching is linear in
    /// `input.len() × pattern states` with no restarts.
    pub fn is_match_counted(&self, input: &str) -> (bool, u64) {
        let bytes = input.as_bytes();
        let n = self.prog.len();
        let mut cur = vec![false; n];
        let mut next = vec![false; n];
        let mut stack = Vec::new();
        let mut work = 0u64;
        add_state(&self.prog, &mut cur, &mut stack, 0, bytes.is_empty(), &mut work);
        for (i, &b) in bytes.iter().enumerate() {
            if cur[n - 1] {
                return (true, work);
            }
            next.iter_mut().for_each(|s| *s = false);
            let at_end_after = i + 1 == bytes.len();
            for (pc, live) in cur.iter().enumerate() {
                if !live {
                    continue;
                }
                work += 1;
                if let Inst::Byte(c) = &self.prog[pc] {
                    if c.matches(b) {
                        add_state(&self.prog, &mut next, &mut stack, pc + 1, at_end_after, &mut work);
                    }
                }
            }
            if !self.anchored_start {
                // Implicit `.*` prefix: a match may start at the next byte.
                add_state(&self.prog, &mut next, &mut stack, 0, at_end_after, &mut work);
            }
            std::mem::swap(&mut cur, &mut next);
        }
        (cur[n - 1], work)
    }

    /// Whether the pattern matches.
    pub fn is_match(&self, input: &str) -> bool {
        self.is_match_counted(input).0
    }
}

/// ε-closure insertion.
fn add_state(
    prog: &[Inst],
    set: &mut [bool],
    stack: &mut Vec<usize>,
    pc: usize,
    at_end: bool,
    work: &mut u64,
) {
    stack.push(pc);
    while let Some(pc) = stack.pop() {
        if pc >= prog.len() || set[pc] {
            continue;
        }
        *work += 1;
        match &prog[pc] {
            Inst::Jmp(t) => stack.push(*t),
            Inst::Split(a, b) => {
                stack.push(*a);
                stack.push(*b);
            }
            Inst::EndAnchor => {
                if at_end {
                    stack.push(pc + 1);
                }
            }
            Inst::Byte(_) | Inst::Match => set[pc] = true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, s: &str) -> bool {
        Regex::new(pat).unwrap().is_match(s)
    }

    #[test]
    fn literals_and_any() {
        assert!(m("abc", "xxabcxx"));
        assert!(!m("abc", "ab"));
        assert!(m("a.c", "abc"));
        assert!(m("a.c", "axc"));
        assert!(!m("a.c", "ac"));
    }

    #[test]
    fn anchors() {
        assert!(m("^abc", "abcdef"));
        assert!(!m("^abc", "xabc"));
        assert!(m("abc$", "xxabc"));
        assert!(!m("abc$", "abcx"));
        assert!(m("^abc$", "abc"));
        assert!(!m("^abc$", "abcd"));
    }

    #[test]
    fn repetition() {
        assert!(m("ab*c", "ac"));
        assert!(m("ab*c", "abbbc"));
        assert!(m("ab+c", "abc"));
        assert!(!m("ab+c", "ac"));
        assert!(m("ab?c", "ac"));
        assert!(m("ab?c", "abc"));
        assert!(!m("ab?c", "abbc"));
    }

    #[test]
    fn classes() {
        assert!(m("[a-z]+", "hello"));
        assert!(!m("^[a-z]+$", "Hello"));
        assert!(m("[^/]+", "segment"));
        assert!(!m("^[^/]+$", "a/b"));
        assert!(m("[a-z0-9-]+", "my-url-9"));
        assert!(m("\\d+", "route66"));
        assert!(m("\\w+", "under_score"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("cat|dog", "hotdog"));
        assert!(m("^(cat|dog)$", "cat"));
        assert!(!m("^(cat|dog)$", "cow"));
        assert!(m("^a(b|c)*d$", "abcbcd"));
        assert!(m("(ab)+", "ababab"));
    }

    #[test]
    fn url_filters() {
        // The kind of patterns an edge URL filter uses.
        let api = Regex::new("^/api/v[0-9]+/users/[0-9]+$").unwrap();
        assert!(api.is_match("/api/v2/users/12345"));
        assert!(!api.is_match("/api/v2/users/12345/edit"));
        assert!(!api.is_match("/apiv2/users/1"));

        let stat = Regex::new("\\.(css|js|png|jpg)$").unwrap();
        assert!(stat.is_match("/assets/app.js"));
        assert!(stat.is_match("/img/logo.png"));
        assert!(!stat.is_match("/assets/app.js.map"));
    }

    #[test]
    fn pathological_patterns_stay_linear() {
        // (a*)* style blowups are linear in a Thompson engine.
        let r = Regex::new("a*a*a*a*a*a*b").unwrap();
        let input = "a".repeat(200);
        let (matched, work) = r.is_match_counted(&input);
        assert!(!matched);
        assert!(work < 3_000_000, "NFA simulation must stay linear-ish: {work}");
    }

    #[test]
    fn errors() {
        assert!(Regex::new("(ab").is_err());
        assert!(Regex::new("[ab").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new("[z-a]").is_err());
    }

    #[test]
    fn work_counter_grows_with_input() {
        let r = Regex::new("[a-z]+@[a-z]+").unwrap();
        let (_, small) = r.is_match_counted("xx");
        let (_, big) = r.is_match_counted(&"x".repeat(500));
        assert!(big > small);
    }
}
